//! Integration-test crate: the tests live in `tests/tests/*.rs` and span the
//! whole workspace, from SQL text and git-log text down to the study's
//! figures.
