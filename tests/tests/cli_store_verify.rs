//! CLI-layer corruption handling: `coevo store verify` on a store with a
//! bit-flipped entry must exit nonzero and name the quarantined entry.

use coevo_cli::{args::StoreAction, run, Command};
use coevo_corpus::{generate_corpus, CorpusSpec, ProjectArtifacts};
use coevo_engine::{Source, StudyConfig, StudyRunner};
use std::path::{Path, PathBuf};

fn populated_store(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("coevo_cli_verify_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let projects: Vec<ProjectArtifacts> =
        generate_corpus(&CorpusSpec::paper().with_per_taxon(1))
            .iter()
            .map(ProjectArtifacts::from_generated)
            .collect();
    let report = StudyRunner::new(StudyConfig::default())
        .with_store(&dir)
        .run(Source::InMemory(projects))
        .expect("populating study run");
    assert!(!report.projects.is_empty());
    dir
}

fn entry_files(store: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(store.join("entries"))
        .expect("entries dir exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "entry"))
        .collect();
    files.sort();
    files
}

#[test]
fn store_verify_exits_nonzero_and_names_the_quarantined_entry() {
    let dir = populated_store("bitflip");
    let files = entry_files(&dir);
    assert!(!files.is_empty(), "study must have published entries");

    // Flip one payload bit in the first entry.
    let victim = &files[0];
    let mut bytes = std::fs::read(victim).expect("read entry");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(victim, bytes).expect("write corrupted entry");

    let mut out = Vec::new();
    let code = run(Command::Store { action: StoreAction::Verify, dir: dir.clone() }, &mut out);
    let text = String::from_utf8(out).expect("utf-8 CLI output");
    assert_eq!(code, 1, "verify must fail on a corrupt store:\n{text}");
    let stem = victim.file_stem().expect("entry stem").to_string_lossy();
    assert!(text.contains("quarantined"), "{text}");
    assert!(text.contains(stem.as_ref()), "output must name the quarantined entry:\n{text}");
    // The corrupt file was moved aside into quarantine/.
    assert!(!victim.exists());
    assert!(std::fs::read_dir(dir.join("quarantine")).expect("quarantine dir").count() > 0);

    // A second verify pass is clean and exits 0.
    let mut out = Vec::new();
    let code = run(Command::Store { action: StoreAction::Verify, dir: dir.clone() }, &mut out);
    assert_eq!(code, 0, "{}", String::from_utf8_lossy(&out));

    let _ = std::fs::remove_dir_all(&dir);
}
