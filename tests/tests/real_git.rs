//! Integration against *real git*: build an actual repository with the git
//! binary, extract history with the paper's exact command, and run the
//! pipeline on its output. Skipped silently when git is unavailable.

use coevo_corpus::pipeline::project_from_texts;
use coevo_ddl::Dialect;
use coevo_heartbeat::DateTime;
use std::path::Path;
use std::process::Command;

fn git(dir: &Path, args: &[&str], env_date: Option<&str>) -> bool {
    let mut cmd = Command::new("git");
    cmd.current_dir(dir).args(args);
    cmd.env("GIT_AUTHOR_NAME", "Tester")
        .env("GIT_AUTHOR_EMAIL", "t@example.org")
        .env("GIT_COMMITTER_NAME", "Tester")
        .env("GIT_COMMITTER_EMAIL", "t@example.org");
    if let Some(d) = env_date {
        cmd.env("GIT_AUTHOR_DATE", d).env("GIT_COMMITTER_DATE", d);
    }
    cmd.output().map(|o| o.status.success()).unwrap_or(false)
}

fn git_available() -> bool {
    Command::new("git").arg("--version").output().map(|o| o.status.success()).unwrap_or(false)
}

#[test]
fn pipeline_accepts_real_git_log_output() {
    if !git_available() {
        eprintln!("git not available; skipping");
        return;
    }
    let dir = std::env::temp_dir().join(format!("coevo_real_git_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    assert!(git(&dir, &["init", "-q"], None));

    // Commit 1: schema + source, January.
    let v1 = "CREATE TABLE users (id INT PRIMARY KEY, name TEXT);\n";
    std::fs::write(dir.join("schema.sql"), v1).unwrap();
    std::fs::write(dir.join("app.py"), "print('hi')\n").unwrap();
    assert!(git(&dir, &["add", "."], None));
    assert!(git(&dir, &["commit", "-qm", "initial import"], Some("2021-01-10 10:00:00 +0000")));

    // Commit 2: source only, February.
    std::fs::write(dir.join("app.py"), "print('hello')\n").unwrap();
    assert!(git(&dir, &["add", "."], None));
    assert!(git(&dir, &["commit", "-qm", "tweak app"], Some("2021-02-10 10:00:00 +0000")));

    // Commit 3: schema change, April.
    let v2 = "CREATE TABLE users (id INT PRIMARY KEY, name TEXT, email TEXT);\n";
    std::fs::write(dir.join("schema.sql"), v2).unwrap();
    assert!(git(&dir, &["add", "."], None));
    assert!(git(&dir, &["commit", "-qm", "add email"], Some("2021-04-10 10:00:00 +0000")));

    // The paper's extraction command.
    let out = Command::new("git")
        .current_dir(&dir)
        .args(["log", "--name-status", "--no-merges", "--date=iso"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let log = String::from_utf8(out.stdout).unwrap();

    let versions = vec![
        (DateTime::parse("2021-01-10 10:00:00 +0000").unwrap(), v1.to_string()),
        (DateTime::parse("2021-04-10 10:00:00 +0000").unwrap(), v2.to_string()),
    ];
    let data = project_from_texts("real/git", &log, &versions, Dialect::Generic).unwrap();

    // Jan..Apr = 4 months; files updated: Jan 2, Feb 1, Mar 0, Apr 1.
    assert_eq!(data.project.activity(), &[2, 1, 0, 1]);
    // Schema: 2 births + 1 injection.
    assert_eq!(data.schema.activity(), &[2, 0, 0, 1]);
    assert_eq!(data.birth_activity, 2);

    let _ = std::fs::remove_dir_all(&dir);
}
