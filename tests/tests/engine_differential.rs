//! Determinism of the execution engine: the parallel study must be
//! byte-identical to the sequential one, both must match the free-function
//! pipeline mapped sequentially, and the fingerprinted incremental diff core must
//! reproduce the pre-refactor accounting exactly — all over the full
//! 195-project corpus.

use coevo_core::Study;
use coevo_engine::{Source, StudyConfig, StudyRunner};

#[test]
fn parallel_study_is_byte_identical_to_sequential() {
    let sequential = StudyRunner::new(StudyConfig::default())
        .with_workers(1)
        .run(Source::paper())
        .expect("sequential run");
    let parallel = StudyRunner::new(StudyConfig::default())
        .with_workers(8)
        .run(Source::paper())
        .expect("parallel run");

    assert!(sequential.failures.is_empty());
    assert!(parallel.failures.is_empty());
    assert_eq!(sequential.projects.len(), 195);
    assert_eq!(sequential.projects, parallel.projects);
    assert_eq!(sequential.results, parallel.results);

    // Structural equality could in principle hide float formatting
    // differences downstream; the serialized artifacts must match byte for
    // byte too.
    let seq_json = serde_json::to_string(&sequential.results).unwrap();
    let par_json = serde_json::to_string(&parallel.results).unwrap();
    assert_eq!(seq_json, par_json);
}

#[test]
fn engine_matches_free_function_pipeline_on_full_corpus() {
    let corpus = coevo_corpus::generate_corpus(&coevo_corpus::CorpusSpec::paper());
    let reference_projects: Vec<_> = corpus
        .iter()
        .map(|p| coevo_engine::pipeline::project_from_generated(p).expect("pipeline"))
        .collect();
    let reference = Study::new(reference_projects.clone()).run();

    let report =
        StudyRunner::new(StudyConfig::default()).run(Source::paper()).expect("engine run");

    assert_eq!(report.projects, reference_projects);
    assert_eq!(report.results, reference);
    assert_eq!(
        serde_json::to_string(&report.results).unwrap(),
        serde_json::to_string(&reference).unwrap()
    );
}

#[test]
fn incremental_diff_matches_legacy_accounting_on_full_corpus() {
    use coevo_ddl::ParseCache;
    use coevo_diff::{DiffMode, MatchPolicy, SchemaHistory, SchemaVersion};
    use std::sync::Arc;

    let corpus = coevo_corpus::generate_corpus(&coevo_corpus::CorpusSpec::paper());
    assert_eq!(corpus.len(), 195);

    let mut elided_total = 0u64;
    for p in &corpus {
        // Oracle: every version parsed into its own allocation (no sharing,
        // no seals reused across versions), diffed with the pre-refactor
        // algorithm.
        let oracle_versions: Vec<SchemaVersion> = p
            .raw
            .ddl_versions
            .iter()
            .map(|(date, text)| SchemaVersion {
                date: *date,
                schema: Arc::new(coevo_ddl::parse_schema(text, p.raw.dialect).expect("parse")),
            })
            .collect();
        let oracle = SchemaHistory::from_schemas_mode(
            oracle_versions,
            MatchPolicy::ByName,
            DiffMode::Legacy,
        )
        .expect("non-empty history");

        // Fingerprinted path: shared-Arc parse cache + incremental diff.
        let mut cache = ParseCache::new();
        let incremental = SchemaHistory::from_ddl_texts_cached(
            p.raw.ddl_versions.iter().map(|(d, t)| (*d, t.as_str())),
            p.raw.dialect,
            &mut cache,
        )
        .expect("parse")
        .expect("non-empty history");

        // Byte-identical accounting: deltas, heartbeats, and the serialized
        // wire form all match the oracle exactly.
        assert_eq!(incremental, oracle, "{}", p.raw.name);
        assert_eq!(incremental.heartbeat(), oracle.heartbeat(), "{}", p.raw.name);
        assert_eq!(incremental.active_commits(), oracle.active_commits(), "{}", p.raw.name);
        assert_eq!(
            serde_json::to_string(&incremental).unwrap(),
            serde_json::to_string(&oracle).unwrap(),
            "{}",
            p.raw.name
        );

        // Sanity of the instrumentation: every version was either skipped or
        // produced by real diff work, and the legacy oracle counted nothing.
        let stats = incremental.diff_stats();
        assert_eq!(stats.schema_diffs, incremental.versions().len() as u64, "{}", p.raw.name);
        assert_eq!(oracle.diff_stats(), coevo_diff::DiffStats::default());
        elided_total += stats.elided();
    }
    // The generated corpus contains inactive commits and unchanged tables;
    // the incremental core must actually elide work somewhere, or the whole
    // refactor is dead code.
    assert!(elided_total > 0, "incremental core elided no work across the corpus");
}
