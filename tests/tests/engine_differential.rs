//! Determinism of the execution engine: the parallel study must be
//! byte-identical to the sequential one, and both must match the legacy
//! free-function pipeline, over the full 195-project corpus.

use coevo_core::Study;
use coevo_engine::{Source, StudyConfig, StudyRunner};

#[test]
fn parallel_study_is_byte_identical_to_sequential() {
    let sequential = StudyRunner::new(StudyConfig::default())
        .with_workers(1)
        .run(Source::paper())
        .expect("sequential run");
    let parallel = StudyRunner::new(StudyConfig::default())
        .with_workers(8)
        .run(Source::paper())
        .expect("parallel run");

    assert!(sequential.failures.is_empty());
    assert!(parallel.failures.is_empty());
    assert_eq!(sequential.projects.len(), 195);
    assert_eq!(sequential.projects, parallel.projects);
    assert_eq!(sequential.results, parallel.results);

    // Structural equality could in principle hide float formatting
    // differences downstream; the serialized artifacts must match byte for
    // byte too.
    let seq_json = serde_json::to_string(&sequential.results).unwrap();
    let par_json = serde_json::to_string(&parallel.results).unwrap();
    assert_eq!(seq_json, par_json);
}

#[test]
#[allow(deprecated)] // differential oracle: the legacy pipeline entry
fn engine_matches_legacy_pipeline_on_full_corpus() {
    let corpus = coevo_corpus::generate_corpus(&coevo_corpus::CorpusSpec::paper());
    let legacy_projects =
        coevo_corpus::projects_from_generated_parallel(&corpus).expect("legacy pipeline");
    let legacy = Study::new(legacy_projects.clone()).run();

    let report = StudyRunner::new(StudyConfig::default())
        .run(Source::paper())
        .expect("engine run");

    assert_eq!(report.projects, legacy_projects);
    assert_eq!(report.results, legacy);
    assert_eq!(
        serde_json::to_string(&report.results).unwrap(),
        serde_json::to_string(&legacy).unwrap()
    );
}
