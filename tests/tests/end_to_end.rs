//! End-to-end integration: handcrafted SQL + git-log text through the whole
//! measurement pipeline, checked against hand-computed values.

use coevo_core::synchronicity::theta_synchronicity;
use coevo_corpus::pipeline::project_from_texts;
use coevo_ddl::Dialect;
use coevo_heartbeat::DateTime;
use coevo_taxa::{Taxon, TaxonomyConfig};

fn dt(s: &str) -> DateTime {
    DateTime::parse(s).unwrap()
}

/// A 6-month project: 2 files/month of source work, schema born with 4
/// attributes and gaining 2 in month 3 and 2 in month 5.
fn fixture() -> (String, Vec<(DateTime, String)>) {
    let mut log = String::new();
    // git prints newest first.
    let entries = [
        ("2020-06-15 10:00:00 +0000", vec!["src/f5.js", "src/g5.js"]),
        ("2020-05-15 10:00:00 +0000", vec!["db/schema.sql", "src/f4.js"]),
        ("2020-04-15 10:00:00 +0000", vec!["src/f3.js", "src/g3.js"]),
        ("2020-03-15 10:00:00 +0000", vec!["db/schema.sql", "src/f2.js"]),
        ("2020-02-15 10:00:00 +0000", vec!["src/f1.js", "src/g1.js"]),
        ("2020-01-15 10:00:00 +0000", vec!["db/schema.sql", "src/f0.js"]),
    ];
    for (i, (date, files)) in entries.iter().enumerate() {
        log.push_str(&format!(
            "commit {:040x}\nAuthor: T <t@x.io>\nDate:   {date}\n\n    c{i}\n\n",
            1000 + i
        ));
        for f in files {
            let letter = if *date == "2020-01-15 10:00:00 +0000" { "A" } else { "M" };
            log.push_str(&format!("{letter}\t{f}\n"));
        }
        log.push('\n');
    }

    let versions = vec![
        (
            dt("2020-01-15 10:00:00 +0000"),
            "CREATE TABLE t (a INT, b INT, c INT, d INT);".to_string(),
        ),
        (
            dt("2020-03-15 10:00:00 +0000"),
            "CREATE TABLE t (a INT, b INT, c INT, d INT, e INT, f INT);".to_string(),
        ),
        (
            dt("2020-05-15 10:00:00 +0000"),
            "CREATE TABLE t (a INT, b INT, c INT, d INT, e INT, f INT, g INT, h INT);"
                .to_string(),
        ),
    ];
    (log, versions)
}

#[test]
fn hand_computed_pipeline() {
    let (log, versions) = fixture();
    let data = project_from_texts("fix/ture", &log, &versions, Dialect::Generic).unwrap();

    // Project: 2 files updated every month for 6 months.
    assert_eq!(data.project.activity(), &[2, 2, 2, 2, 2, 2]);
    // Schema: 4 births, then +2 injections twice; the raw heartbeat ends at
    // the last schema event (May) — alignment pads the June tail.
    assert_eq!(data.schema.activity(), &[4, 0, 2, 0, 2]);
    assert_eq!(data.birth_activity, 4);

    let jp = data.joint_progress();
    // Cumulative series, hand-computed.
    let expect_project = [2.0 / 12.0, 4.0 / 12.0, 0.5, 8.0 / 12.0, 10.0 / 12.0, 1.0];
    let expect_schema = [0.5, 0.5, 0.75, 0.75, 1.0, 1.0];
    let expect_time = [1.0 / 6.0, 2.0 / 6.0, 0.5, 4.0 / 6.0, 5.0 / 6.0, 1.0];
    for i in 0..6 {
        assert!((jp.project[i] - expect_project[i]).abs() < 1e-12, "project[{i}]");
        assert!((jp.schema[i] - expect_schema[i]).abs() < 1e-12, "schema[{i}]");
        assert!((jp.time[i] - expect_time[i]).abs() < 1e-12, "time[{i}]");
    }

    // Synchronicity: |p−s| per month = .333, .167, .25, .083, .167, 0
    // → within 10%: months 3 and 5 → 2/6.
    let sync = theta_synchronicity(&jp.project, &jp.schema, 0.10);
    assert!((sync - 2.0 / 6.0).abs() < 1e-12, "sync {sync}");

    let m = data.measures(&TaxonomyConfig::default());
    // Schema ≥ source and ≥ time every month after creation.
    assert_eq!(m.advance.over_source, Some(1.0));
    assert_eq!(m.advance.over_time, Some(1.0));
    assert!(m.advance.always_over_both);

    // Attainment: cum schema = [.5,.5,.75,.75,1,1]; duration 5.
    assert_eq!(m.attainment.at_50, Some(0.0));
    assert!((m.attainment.at_75.unwrap() - 2.0 / 5.0).abs() < 1e-12);
    assert!((m.attainment.at_80.unwrap() - 4.0 / 5.0).abs() < 1e-12);
    assert!((m.attainment.at_100.unwrap() - 4.0 / 5.0).abs() < 1e-12);

    // 4 post-birth activity units, no spike dominance → ALMOST FROZEN.
    assert_eq!(m.taxon, Taxon::AlmostFrozen);
}

#[test]
fn inactive_versions_do_not_create_activity() {
    let (log, mut versions) = fixture();
    // Re-commit the last version unchanged (formatting-only commit).
    let last = versions.last().unwrap().1.clone();
    versions.push((dt("2020-06-01 10:00:00 +0000"), last));
    let data = project_from_texts("fix/ture", &log, &versions, Dialect::Generic).unwrap();
    assert_eq!(data.schema.total(), 8);
    assert_eq!(data.schema.activity(), &[4, 0, 2, 0, 2, 0]); // June version is inactive
}

#[test]
fn dialect_mismatch_still_measures_logical_content() {
    // The generic dialect parses both vendors' files.
    let (log, versions) = fixture();
    for dialect in [Dialect::MySql, Dialect::Postgres, Dialect::Generic] {
        let data = project_from_texts("fix/ture", &log, &versions, dialect).unwrap();
        assert_eq!(data.schema.total(), 8, "{dialect:?}");
    }
}

#[test]
fn study_results_serde_round_trip() {
    let (log, versions) = fixture();
    let data = project_from_texts("fix/ture", &log, &versions, Dialect::Generic).unwrap();
    let results = coevo_core::Study::new(vec![data]).run();
    let json = serde_json::to_string(&results).expect("serialize");
    let back: coevo_core::StudyResults = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(results, back);
}

#[test]
fn figures_render_from_pipeline_output() {
    let (log, versions) = fixture();
    let data = project_from_texts("fix/ture", &log, &versions, Dialect::Generic).unwrap();
    let results = coevo_core::Study::new(vec![data]).run();
    let report = coevo_report::render_all_figures(&results);
    assert!(report.contains("Figure 4"));
    assert!(report.contains("Figure 8"));
    assert!(report.contains("ALMOST FROZEN"));
}
