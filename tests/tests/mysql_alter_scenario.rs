//! An ALTER-heavy MySQL history: maintainers of hand-kept schema files often
//! append `ALTER TABLE` statements instead of rewriting the CREATEs. The
//! pipeline must measure these histories identically to rewritten ones.

use coevo_ddl::{parse_schema, Dialect};
use coevo_diff::SchemaHistory;
use coevo_heartbeat::DateTime;

fn dt(s: &str) -> DateTime {
    DateTime::parse(&format!("{s} 09:00:00 +0000")).unwrap()
}

const V1: &str = "
CREATE TABLE `users` (
  `id` int(11) NOT NULL AUTO_INCREMENT,
  `login` varchar(60) NOT NULL,
  `pass` varchar(64) NOT NULL,
  PRIMARY KEY (`id`)
) ENGINE=InnoDB;
";

/// v2 appends ALTERs: inject two columns, widen one.
const V2: &str = "
CREATE TABLE `users` (
  `id` int(11) NOT NULL AUTO_INCREMENT,
  `login` varchar(60) NOT NULL,
  `pass` varchar(64) NOT NULL,
  PRIMARY KEY (`id`)
) ENGINE=InnoDB;

ALTER TABLE `users` ADD COLUMN `email` varchar(100) NOT NULL AFTER `login`;
ALTER TABLE `users` ADD COLUMN `created_at` datetime DEFAULT NULL;
ALTER TABLE `users` MODIFY COLUMN `pass` varchar(255) NOT NULL;
";

/// v3: CHANGE renames login → username (eject + inject under the paper's
/// name-based matching), plus a new sessions table via plain CREATE.
const V3: &str = "
CREATE TABLE `users` (
  `id` int(11) NOT NULL AUTO_INCREMENT,
  `login` varchar(60) NOT NULL,
  `pass` varchar(64) NOT NULL,
  PRIMARY KEY (`id`)
) ENGINE=InnoDB;

ALTER TABLE `users` ADD COLUMN `email` varchar(100) NOT NULL AFTER `login`;
ALTER TABLE `users` ADD COLUMN `created_at` datetime DEFAULT NULL;
ALTER TABLE `users` MODIFY COLUMN `pass` varchar(255) NOT NULL;
ALTER TABLE `users` CHANGE `login` `username` varchar(60) NOT NULL;

CREATE TABLE `sessions` (
  `sid` varchar(64) NOT NULL,
  `user_id` int(11) NOT NULL,
  `expires` datetime NOT NULL,
  PRIMARY KEY (`sid`),
  CONSTRAINT `fk_sess_user` FOREIGN KEY (`user_id`) REFERENCES `users` (`id`) ON DELETE CASCADE
) ENGINE=InnoDB;
";

/// v4: RENAME TABLE + DROP/ADD churn expressed as statements.
const V4: &str = "
CREATE TABLE `users` (
  `id` int(11) NOT NULL AUTO_INCREMENT,
  `username` varchar(60) NOT NULL,
  `email` varchar(100) NOT NULL,
  `pass` varchar(255) NOT NULL,
  `created_at` datetime DEFAULT NULL,
  PRIMARY KEY (`id`)
) ENGINE=InnoDB;

CREATE TABLE `sessions` (
  `sid` varchar(64) NOT NULL,
  `user_id` int(11) NOT NULL,
  `expires` datetime NOT NULL,
  PRIMARY KEY (`sid`)
) ENGINE=InnoDB;

RENAME TABLE `sessions` TO `user_sessions`;
ALTER TABLE `user_sessions` DROP COLUMN `expires`;
ALTER TABLE `user_sessions` ADD COLUMN `expires_at` timestamp NULL DEFAULT NULL;
";

#[test]
fn alter_statements_produce_correct_final_schemas() {
    let v2 = parse_schema(V2, Dialect::MySql).unwrap();
    let users = v2.table("users").unwrap();
    assert_eq!(users.columns.len(), 5);
    // AFTER positioning is accepted (order not modeled, presence is).
    assert!(users.column("email").is_some());
    assert_eq!(
        users.column("pass").unwrap().sql_type,
        coevo_ddl::SqlType::with_params("VARCHAR", &["255"])
    );

    let v3 = parse_schema(V3, Dialect::MySql).unwrap();
    assert!(v3.table("users").unwrap().column("username").is_some());
    assert!(v3.table("users").unwrap().column("login").is_none());
    assert_eq!(v3.table("sessions").unwrap().foreign_keys().count(), 1);

    let v4 = parse_schema(V4, Dialect::MySql).unwrap();
    assert!(v4.table("sessions").is_none());
    let sess = v4.table("user_sessions").unwrap();
    assert!(sess.column("expires").is_none());
    assert!(sess.column("expires_at").is_some());
}

#[test]
fn history_activity_is_hand_computable() {
    let h = SchemaHistory::from_ddl_texts(
        [
            (dt("2016-03-01"), V1),
            (dt("2016-06-15"), V2),
            (dt("2016-11-02"), V3),
            (dt("2017-04-20"), V4),
        ],
        Dialect::MySql,
    )
    .unwrap()
    .unwrap();

    let totals: Vec<u64> = h.deltas().iter().map(|d| d.breakdown.total()).collect();
    // v1: 3 births.
    // v2: +email +created_at (2 injections) + pass type change = 3.
    // v3: login→username (eject+inject = 2) + sessions born (3 attrs) = 5.
    // v4: sessions → user_sessions is a table rename = drop(3) + create(3)
    //     under name-based matching, and within the renamed table expires →
    //     expires_at rides along inside the attribute count: final
    //     user_sessions has 3 attrs (sid, user_id, expires_at) → 3 born;
    //     sessions had 3 attrs → 3 died. Total 6.
    assert_eq!(totals, vec![3, 3, 5, 6]);
    assert_eq!(h.total_activity(), 17);

    let b = h.total_breakdown();
    assert_eq!(b.attrs_born_with_table, 3 + 3 + 3);
    assert_eq!(b.attrs_deleted_with_table, 3);
    assert_eq!(b.attrs_injected, 2 + 1);
    assert_eq!(b.attrs_ejected, 1);
    assert_eq!(b.attrs_type_changed, 1);
    assert_eq!(b.attrs_key_changed, 0);

    // Heartbeat: Mar 2016 .. Apr 2017 = 14 months.
    let hb = h.heartbeat();
    assert_eq!(hb.months(), 14);
    assert_eq!(hb.activity()[0], 3);
    assert_eq!(hb.activity()[3], 3); // June
    assert_eq!(hb.activity()[8], 5); // November
    assert_eq!(hb.activity()[13], 6); // April 2017
}

#[test]
fn constraint_churn_is_informational() {
    let v3 = parse_schema(V3, Dialect::MySql).unwrap();
    let v4 = parse_schema(V4, Dialect::MySql).unwrap();
    // The FK disappeared along with the renamed table; surviving tables
    // (users) kept their constraints → constraint delta over survivors is
    // empty, and activity is untouched by the FK's disappearance.
    let cd = coevo_diff::diff_constraints(&v3, &v4);
    assert!(cd.is_empty(), "{cd:?}");
}
