//! Cross-crate validation: queries synthesized from a schema's own elements
//! must validate against it; queries must break exactly when the diff engine
//! says their elements were removed or retyped away.

use coevo_corpus::{generate_corpus, CorpusSpec};
use coevo_ddl::{parse_schema, Schema};
use coevo_query::{breaking_queries, parse_query, validate, IssueKind};

/// Synthesize simple queries from every table of a schema.
fn queries_for(schema: &Schema) -> Vec<String> {
    let mut out = Vec::new();
    for t in &schema.tables {
        out.push(format!("SELECT * FROM {}", t.name));
        if let Some(col) = t.columns.iter().find(|c| !c.inline_primary_key) {
            out.push(format!(
                "SELECT {} FROM {} WHERE {} IS NOT NULL",
                col.name, t.name, col.name
            ));
            out.push(format!("UPDATE {} SET {} = ? WHERE id = ?", t.name, col.name));
        }
        out.push(format!("DELETE FROM {} WHERE id = ?", t.name));
    }
    out
}

#[test]
fn self_synthesized_queries_always_validate() {
    // Over generated corpus schemas (first and final versions).
    let mut spec = CorpusSpec::paper();
    for t in &mut spec.taxa {
        t.count = 2;
    }
    for p in generate_corpus(&spec) {
        for (_, text) in
            [p.raw.ddl_versions.first(), p.raw.ddl_versions.last()].into_iter().flatten()
        {
            let schema = parse_schema(text, p.raw.dialect).unwrap();
            for sql in queries_for(&schema) {
                let q =
                    parse_query(&sql).unwrap_or_else(|e| panic!("{}: {sql}: {e}", p.raw.name));
                let issues = validate(&q, &schema);
                assert!(issues.is_empty(), "{}: {sql}: {issues:?}", p.raw.name);
            }
        }
    }
}

#[test]
fn version_transitions_break_queries_consistently() {
    // For each consecutive version pair in a handful of histories: a query
    // on an ejected column must appear in breaking_queries; queries on
    // surviving columns must not.
    let mut spec = CorpusSpec::paper();
    for t in &mut spec.taxa {
        t.count = 3;
    }
    let mut checked_breaks = 0;
    for p in generate_corpus(&spec) {
        for w in p.raw.ddl_versions.windows(2) {
            let old = parse_schema(&w[0].1, p.raw.dialect).unwrap();
            let new = parse_schema(&w[1].1, p.raw.dialect).unwrap();
            let delta = coevo_diff::diff_schemas(&old, &new);
            for td in &delta.tables {
                if td.fate != coevo_diff::TableFate::Survived {
                    continue;
                }
                for ch in &td.changes {
                    if let coevo_diff::AttributeChange::Ejected { name, .. } = ch {
                        let sql = format!("SELECT {} FROM {}", name, td.table);
                        // Only meaningful when valid against the old schema
                        // (a same-named column in another table could blur it,
                        // but table-qualified FROM pins the scope).
                        let broken = breaking_queries(&old, &new, &[sql.as_str()]);
                        assert_eq!(broken.len(), 1, "{}: expected {sql} to break", p.raw.name);
                        assert!(broken[0]
                            .issues
                            .iter()
                            .all(|i| i.kind == IssueKind::UnknownColumn));
                        checked_breaks += 1;
                    }
                }
            }
        }
    }
    assert!(checked_breaks > 0, "corpus produced no ejections to check");
}

#[test]
fn dropped_tables_break_star_queries() {
    let mut spec = CorpusSpec::paper();
    for t in &mut spec.taxa {
        t.count = 4;
    }
    let mut checked = 0;
    for p in generate_corpus(&spec) {
        for w in p.raw.ddl_versions.windows(2) {
            let old = parse_schema(&w[0].1, p.raw.dialect).unwrap();
            let new = parse_schema(&w[1].1, p.raw.dialect).unwrap();
            let delta = coevo_diff::diff_schemas(&old, &new);
            for td in &delta.tables {
                if td.fate == coevo_diff::TableFate::Dropped {
                    let sql = format!("SELECT * FROM {}", td.table);
                    let broken = breaking_queries(&old, &new, &[sql.as_str()]);
                    assert_eq!(broken.len(), 1, "{}: {sql}", p.raw.name);
                    assert_eq!(broken[0].issues[0].kind, IssueKind::UnknownTable);
                    checked += 1;
                }
            }
        }
    }
    assert!(checked > 0, "corpus produced no table drops to check");
}
