//! Streamed-vs-eager study differentials over sharded corpora: the
//! streaming engine (`StudyRunner::run_streamed`) must be bit-for-bit
//! indistinguishable from the in-memory path — on the full 195-project
//! paper corpus, under mid-shard corruption with `CollectAndContinue`, and
//! under arbitrary permutations of the manifest's shard order.

use coevo_corpus::shard::save_manifest;
use coevo_corpus::{generate_sharded, CorpusSpec};
use coevo_engine::{FailurePolicy, Source, StudyConfig, StudyRunner};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("coevo_streamed_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The acceptance differential: the paper's full 195-project corpus,
/// sharded on disk, studied three ways — eager over the generated corpus,
/// eager over the shards, and streamed over the shards — must agree on
/// every result struct AND on the serialized JSON bytes.
#[test]
fn full_paper_corpus_streamed_equals_in_memory_bit_for_bit() {
    let dir = tmpdir("full195");
    let spec = CorpusSpec::paper();
    let manifest = generate_sharded(&dir, &spec, 32).expect("generate sharded corpus");
    assert_eq!(manifest.total_projects, 195);
    assert_eq!(manifest.shards.len(), 7); // ceil(195 / 32)

    let runner = StudyRunner::new(StudyConfig::default());
    let generated = runner.run(Source::Spec(spec)).expect("eager generated");
    let eager = runner.run(Source::Sharded(dir.clone())).expect("eager sharded");
    let streamed = runner
        .with_max_resident(32)
        .run_streamed(Source::Sharded(dir.clone()))
        .expect("streamed sharded");

    assert_eq!(generated.results, eager.results);
    assert_eq!(streamed.results, eager.results);
    assert!(streamed.failures.is_empty());
    assert_eq!(streamed.results.measures.len(), 195);

    let eager_json = serde_json::to_string(&eager.results).expect("serialize");
    let streamed_json = serde_json::to_string(&streamed.results).expect("serialize");
    assert_eq!(eager_json, streamed_json, "serialized results must be byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mid-shard corruption under `CollectAndContinue`: both paths must demote
/// exactly the corrupted record to the same structured failure and compute
/// identical results from the survivors; `FailFast` must surface it as a
/// hard error on both paths.
#[test]
fn mid_shard_corruption_is_demoted_identically_in_both_paths() {
    let dir = tmpdir("corrupt");
    let spec = CorpusSpec::paper().with_per_taxon(2); // 12 projects
    let manifest = generate_sharded(&dir, &spec, 4).expect("generate sharded corpus");
    assert_eq!(manifest.shards.len(), 3);

    // Corrupt the first record of the middle shard: flip the first payload
    // byte (magic 8 + count 4 + record length 4 = offset 16).
    let victim = dir.join(&manifest.shards[1].file);
    let mut bytes = std::fs::read(&victim).expect("read shard");
    bytes[16] = b'!';
    std::fs::write(&victim, &bytes).expect("rewrite shard");

    let runner = StudyRunner::new(StudyConfig::default());
    let eager = runner.run(Source::Sharded(dir.clone())).expect("eager completes");
    let streamed =
        runner.run_streamed(Source::Sharded(dir.clone())).expect("streamed completes");

    assert_eq!(eager.failures.len(), 1, "{:?}", eager.failures);
    assert!(
        eager.failures[0].project.contains("[record 0]"),
        "failure names the record: {:?}",
        eager.failures
    );
    assert_eq!(streamed.failures, eager.failures);
    assert_eq!(streamed.results, eager.results);
    assert_eq!(streamed.results.measures.len(), 11);

    let failfast =
        StudyRunner::new(StudyConfig::default()).with_failure_policy(FailurePolicy::FailFast);
    failfast.run(Source::Sharded(dir.clone())).expect_err("eager fail-fast");
    failfast.run_streamed(Source::Sharded(dir.clone())).expect_err("streamed fail-fast");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A shard file that vanishes after the manifest was written (operator
/// error, partial rsync) demotes that shard's projects to one failure per
/// shard in both paths, identically.
#[test]
fn missing_shard_file_fails_identically_in_both_paths() {
    let dir = tmpdir("missing");
    let spec = CorpusSpec::paper().with_per_taxon(1); // 6 projects
    let manifest = generate_sharded(&dir, &spec, 2).expect("generate sharded corpus");
    std::fs::remove_file(dir.join(&manifest.shards[2].file)).expect("remove shard");

    let runner = StudyRunner::new(StudyConfig::default());
    let eager = runner.run(Source::Sharded(dir.clone())).expect("eager completes");
    let streamed =
        runner.run_streamed(Source::Sharded(dir.clone())).expect("streamed completes");
    assert_eq!(eager.failures.len(), 1, "{:?}", eager.failures);
    assert_eq!(eager.failures[0].project, manifest.shards[2].file);
    assert_eq!(streamed.failures, eager.failures);
    assert_eq!(streamed.results, eager.results);
    assert_eq!(streamed.results.measures.len(), 4);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Shard order in the manifest is presentation, not semantics: each
    /// entry carries its global start offset, so any permutation of the
    /// manifest's shard list yields byte-identical study results from both
    /// the eager and the streamed path.
    #[test]
    fn shard_order_permutations_yield_identical_results(
        swaps in proptest::collection::vec((any::<usize>(), any::<usize>()), 0..16)
    ) {
        let dir = tmpdir(&format!("perm{}", std::thread::current().name().map(|n| n.len()).unwrap_or(0)));
        let spec = CorpusSpec::paper().with_per_taxon(2); // 12 projects
        let mut manifest = generate_sharded(&dir, &spec, 3).expect("generate sharded corpus");
        prop_assert_eq!(manifest.shards.len(), 4);

        let runner = StudyRunner::new(StudyConfig::default());
        let baseline = runner.run(Source::Sharded(dir.clone())).expect("baseline");

        // Apply the permutation script to the manifest's shard order and
        // rewrite it (entries keep their start offsets — only list position
        // changes).
        let n = manifest.shards.len();
        for (a, b) in swaps {
            manifest.shards.swap(a % n, b % n);
        }
        save_manifest(&dir, &manifest).expect("rewrite manifest");

        let eager = runner.run(Source::Sharded(dir.clone())).expect("permuted eager");
        let streamed = runner
            .with_max_resident(5)
            .run_streamed(Source::Sharded(dir.clone()))
            .expect("permuted streamed");
        prop_assert_eq!(&eager.results, &baseline.results);
        prop_assert_eq!(&streamed.results, &baseline.results);
        prop_assert!(streamed.failures.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
