//! Failure injection: malformed inputs at every pipeline stage must produce
//! structured errors (never panics, never silent garbage).

use coevo_corpus::loader::load_project;
use coevo_corpus::pipeline::{project_from_texts, PipelineError};
use coevo_ddl::Dialect;
use coevo_heartbeat::DateTime;
use coevo_vcs::parse_log;
use std::fs;

fn dt(s: &str) -> DateTime {
    DateTime::parse(s).unwrap()
}

const GOOD_LOG: &str =
    "commit abc\nAuthor: A <a@b.c>\nDate:   2020-01-01 00:00:00 +0000\n\n    m\n\nM\tf\n";

#[test]
fn truncated_git_log_mid_commit() {
    // Header without a Date line: structured error, not a panic.
    let truncated = "commit abcdef\nAuthor: A <a@b.c>\n";
    let err = parse_log(truncated).unwrap_err();
    assert!(err.message.contains("no Date"), "{err}");
}

#[test]
fn git_log_with_garbage_line() {
    let log = "commit abc\nAuthor: A <a@b.c>\nDate:   2020-01-01 00:00:00 +0000\n\n    m\n\n???garbage without tab\n";
    let err = parse_log(log).unwrap_err();
    assert!(err.message.contains("unrecognized"), "{err}");
}

#[test]
fn binary_junk_inputs_do_not_panic() {
    let junk: String = (0u8..=255).map(|b| (b % 94 + 32) as char).collect();
    let _ = parse_log(&junk);
    let _ = coevo_ddl::parse_schema(&junk, Dialect::Generic);
    let _ = coevo_ddl::parse_schema(&junk, Dialect::MySql);
    let _ = coevo_ddl::parse_schema(&junk, Dialect::Postgres);
}

#[test]
fn broken_ddl_version_fails_with_position() {
    let versions = vec![
        (dt("2020-01-01 00:00:00 +0000"), "CREATE TABLE t (a INT);".to_string()),
        (dt("2020-02-01 00:00:00 +0000"), "CREATE TABLE t (a INT".to_string()), // truncated
    ];
    let err = project_from_texts("x/y", GOOD_LOG, &versions, Dialect::Generic).unwrap_err();
    match err {
        PipelineError::Ddl(msg) => assert!(msg.contains("line"), "{msg}"),
        other => panic!("expected Ddl error, got {other:?}"),
    }
}

#[test]
fn bad_git_log_fails_pipeline() {
    let versions =
        vec![(dt("2020-01-01 00:00:00 +0000"), "CREATE TABLE t (a INT);".to_string())];
    let err =
        project_from_texts("x/y", "M\tfile-before-any-commit\n", &versions, Dialect::Generic)
            .unwrap_err();
    assert!(matches!(err, PipelineError::GitLog(_)));
}

#[test]
fn merge_only_repository_is_empty() {
    let log = "commit abc\nMerge: 1 2\nAuthor: A <a@b.c>\nDate:   2020-01-01 00:00:00 +0000\n\n    Merge\n\n";
    let versions =
        vec![(dt("2020-01-01 00:00:00 +0000"), "CREATE TABLE t (a INT);".to_string())];
    let err = project_from_texts("x/y", log, &versions, Dialect::Generic).unwrap_err();
    assert!(matches!(err, PipelineError::Empty("repository")));
}

#[test]
fn no_versions_is_empty_history() {
    let err = project_from_texts("x/y", GOOD_LOG, &[], Dialect::Generic).unwrap_err();
    assert!(matches!(err, PipelineError::Empty("schema history")));
}

fn loader_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("coevo_fail_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("versions")).unwrap();
    dir
}

#[test]
fn loader_corrupt_manifest() {
    let dir = loader_dir("manifest");
    fs::write(dir.join("manifest.json"), "{not json").unwrap();
    fs::write(dir.join("git.log"), GOOD_LOG).unwrap();
    let err = load_project(&dir).unwrap_err();
    assert!(err.to_string().contains("manifest"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn loader_missing_version_file() {
    let dir = loader_dir("missingver");
    fs::write(
        dir.join("manifest.json"),
        r#"{"name":"x","dialect":"mysql","versions":[{"file":"0001.sql","date":"2020-01-01 00:00:00 +0000"}]}"#,
    )
    .unwrap();
    fs::write(dir.join("git.log"), GOOD_LOG).unwrap();
    let err = load_project(&dir).unwrap_err();
    assert!(err.to_string().contains("io"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn loader_bad_version_date() {
    let dir = loader_dir("baddate");
    fs::write(
        dir.join("manifest.json"),
        r#"{"name":"x","dialect":"mysql","versions":[{"file":"0001.sql","date":"tomorrow"}]}"#,
    )
    .unwrap();
    fs::write(dir.join("versions/0001.sql"), "CREATE TABLE t (a INT);").unwrap();
    fs::write(dir.join("git.log"), GOOD_LOG).unwrap();
    let err = load_project(&dir).unwrap_err();
    assert!(err.to_string().contains("bad date"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn loader_unknown_taxon_is_ignored_not_fatal() {
    let dir = loader_dir("unknowntaxon");
    fs::write(
        dir.join("manifest.json"),
        r#"{"name":"x","dialect":"mysql","taxon":"weird","versions":[{"file":"0001.sql","date":"2020-01-01 00:00:00 +0000"}]}"#,
    )
    .unwrap();
    fs::write(dir.join("versions/0001.sql"), "CREATE TABLE t (a INT);").unwrap();
    fs::write(dir.join("git.log"), GOOD_LOG).unwrap();
    let data = load_project(&dir).unwrap();
    assert_eq!(data.taxon, None); // unknown label → classifier will decide
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn ddl_error_positions_are_plausible() {
    let sql = "CREATE TABLE ok (a INT);\nCREATE TABLE broken (a INT,,);";
    let err = coevo_ddl::parse_schema(sql, Dialect::Generic).unwrap_err();
    assert_eq!(err.line, 2, "{err}");
    assert!(err.column > 0);
}

#[test]
fn deeply_nested_parens_survive() {
    // Pathological CHECK expression: deep nesting must not overflow.
    let mut expr = String::new();
    for _ in 0..1_000 {
        expr.push('(');
    }
    expr.push('1');
    for _ in 0..1_000 {
        expr.push(')');
    }
    let sql = format!("CREATE TABLE t (a INT, CHECK ({expr}));");
    let schema = coevo_ddl::parse_schema(&sql, Dialect::Generic).unwrap();
    assert_eq!(schema.tables.len(), 1);
}

#[test]
fn enormous_identifier_is_fine() {
    let name = "c".repeat(100_000);
    let sql = format!("CREATE TABLE t ({name} INT);");
    let schema = coevo_ddl::parse_schema(&sql, Dialect::Generic).unwrap();
    assert_eq!(schema.table("t").unwrap().columns[0].name.len(), 100_000);
}
