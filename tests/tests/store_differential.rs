//! Differential guarantees of the result store over the full 195-project
//! corpus: a store-backed run — cold or warm — must be byte-identical to a
//! store-less run, the cold run publishes every project, the warm run
//! serves every project from the store, and the store itself stays
//! verifiably clean throughout.

use coevo_engine::{Source, StudyConfig, StudyRunner};
use coevo_store::ResultStore;
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("coevo_store_diff_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_store_run_is_byte_identical_to_store_less_run() {
    let dir = tmp("full");

    // Oracle: the plain, store-less engine run.
    let baseline =
        StudyRunner::new(StudyConfig::default()).run(Source::paper()).expect("store-less run");
    assert!(baseline.failures.is_empty());
    assert_eq!(baseline.projects.len(), 195);
    assert!(baseline.metrics.store.is_none(), "store-less run must report no store metrics");

    // Cold store-backed run: every project misses, computes, publishes.
    let runner = StudyRunner::new(StudyConfig::default()).with_store(&dir);
    let cold = runner.run(Source::paper()).expect("cold run");
    let s = cold.metrics.store.as_ref().expect("store metrics");
    assert_eq!(
        (s.hits, s.misses, s.invalidated, s.quarantined, s.published, s.publish_failures),
        (0, 195, 0, 0, 195, 0)
    );

    // Warm run: every project is served from a verified entry; nothing is
    // recomputed or republished.
    let warm = runner.run(Source::paper()).expect("warm run");
    let s = warm.metrics.store.as_ref().expect("store metrics");
    assert_eq!(
        (s.hits, s.misses, s.invalidated, s.quarantined, s.published, s.publish_failures),
        (195, 0, 0, 0, 0, 0)
    );

    // Structural equality across all three runs.
    assert_eq!(baseline.projects, cold.projects);
    assert_eq!(baseline.projects, warm.projects);
    assert_eq!(baseline.results, cold.results);
    assert_eq!(baseline.results, warm.results);

    // Structural equality could in principle hide float-formatting drift in
    // anything serialized downstream; the wire form must match byte for
    // byte too.
    let base_json = serde_json::to_string(&baseline.results).unwrap();
    assert_eq!(base_json, serde_json::to_string(&cold.results).unwrap());
    assert_eq!(base_json, serde_json::to_string(&warm.results).unwrap());

    // The store holds exactly one entry per project and verifies clean.
    let store = ResultStore::open(&dir).expect("open store");
    let stats = store.stats().expect("stats");
    assert_eq!(stats.entries, 195);
    assert_eq!(stats.quarantined, 0);
    let report = store.verify().expect("verify");
    assert!(report.is_clean());
    assert_eq!(report.checked, 195);
    assert_eq!(report.ok, 195);

    let _ = std::fs::remove_dir_all(&dir);
}
