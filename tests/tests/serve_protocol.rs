//! Wire-level test of `coevo serve`: requests are raw JSON lines over TCP,
//! written by hand the way an external client following the README would —
//! no shared request structs. The daemon's answers must match the batch
//! pipeline for the same history, and must survive a daemon restart.

use coevo_serve::{Response, ServeConfig, Server};
use coevo_taxa::TaxonomyConfig;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

struct RawClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl RawClient {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Self { reader, writer: stream }
    }

    fn send(&mut self, line: &str) -> Response {
        writeln!(self.writer, "{line}").expect("write");
        self.writer.flush().expect("flush");
        let mut answer = String::new();
        self.reader.read_line(&mut answer).expect("read");
        serde_json::from_str(&answer).expect("response is one JSON object per line")
    }
}

fn spawn(store_dir: Option<std::path::PathBuf>) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir,
        taxonomy: TaxonomyConfig::default(),
    };
    let server = Server::bind(&config).expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    (addr, handle)
}

#[test]
fn served_measures_match_the_batch_pipeline() {
    use coevo_engine::{StudyConfig, StudyRunner};

    // One real generated project, streamed over the wire.
    let corpus =
        coevo_corpus::generate_corpus(&coevo_corpus::CorpusSpec::paper().with_per_taxon(1));
    let p = coevo_corpus::ProjectArtifacts::from_generated(&corpus[0]);
    let (_, batch) =
        StudyRunner::new(StudyConfig::default()).run_project(&p).expect("batch pipeline");

    let (addr, handle) = spawn(None);
    let mut client = RawClient::connect(addr);
    assert!(client.send(r#"{"cmd":"ping"}"#).ok);

    // Events rendered by hand into the documented wire shape.
    let events: Vec<String> = coevo_engine::artifacts_to_events(&p)
        .expect("events")
        .into_iter()
        .map(|e| match e {
            coevo_engine::ProjectEvent::Commit { date, files_updated } => {
                format!(r#"{{"kind":"commit","date":"{date}","files":{files_updated}}}"#)
            }
            coevo_engine::ProjectEvent::DdlVersion { date, ddl } => format!(
                r#"{{"kind":"ddl","date":"{date}","ddl":{}}}"#,
                serde_json::to_string(&ddl).unwrap()
            ),
        })
        .collect();
    let taxon = p.taxon.expect("generated projects are labeled");
    let ingest = format!(
        r#"{{"cmd":"ingest","project":{},"dialect":"{}","taxon":"{}","events":[{}]}}"#,
        serde_json::to_string(&p.name).unwrap(),
        p.dialect.name(),
        taxon.slug(),
        events.join(",")
    );
    let resp = client.send(&ingest);
    assert!(resp.ok, "{:?}", resp.error);
    assert_eq!(resp.applied, Some(events.len() as u64));

    let project_req =
        format!(r#"{{"cmd":"project","project":{}}}"#, serde_json::to_string(&p.name).unwrap());
    let resp = client.send(&project_req);
    assert!(resp.ok, "{:?}", resp.error);
    let served = resp.measures.expect("measures");
    assert_eq!(served, batch, "served measures must equal the batch pipeline's");

    // The summary renders the same figures the batch reporter does.
    let resp = client.send(r#"{"cmd":"summary"}"#);
    assert_eq!(resp.projects, Some(1));
    let report = resp.report.expect("report text");
    assert!(report.contains("Figure 4"), "summary must render the figures");

    let resp = client.send(r#"{"cmd":"taxa"}"#);
    let taxa = resp.taxa.expect("taxa counts");
    assert_eq!(taxa.iter().map(|t| t.count).sum::<u64>(), 1);
    assert!(taxa.iter().any(|t| t.taxon == taxon.slug() && t.count == 1));

    // Unknown commands and unknown projects answer errors, not hangups.
    assert!(!client.send(r#"{"cmd":"no-such-command"}"#).ok);
    assert!(!client.send(r#"{"cmd":"project","project":"never/ingested"}"#).ok);

    assert!(client.send(r#"{"cmd":"shutdown"}"#).ok);
    handle.join().expect("server thread");
}

#[test]
fn compat_answers_from_warm_state_over_the_wire() {
    let (addr, handle) = spawn(None);
    let mut client = RawClient::connect(addr);
    let ingest = concat!(
        r#"{"cmd":"ingest","project":"pay/ledger","dialect":"mysql","events":["#,
        r#"{"kind":"commit","date":"2019-06-03 10:00:00 +0000","files":2},"#,
        r#"{"kind":"ddl","date":"2019-06-04 09:00:00 +0000","ddl":"CREATE TABLE r (id INT, label VARCHAR(9));"},"#,
        r#"{"kind":"ddl","date":"2019-07-04 09:00:00 +0000","ddl":"CREATE TABLE r (id INT, label VARCHAR(9), note TEXT);"},"#,
        r#"{"kind":"commit","date":"2019-07-11 10:00:00 +0000","files":1}]}"#
    );
    let resp = client.send(ingest);
    assert!(resp.ok, "{:?}", resp.error);

    // "Is this DDL safe to ship?" — dropping `label` is BREAKING.
    let resp = client.send(
        r#"{"cmd":"compat","project":"pay/ledger","ddl":"CREATE TABLE r (id INT, note TEXT);"}"#,
    );
    assert!(resp.ok, "{:?}", resp.error);
    let answer = resp.compat.expect("compat answer");
    assert_eq!(answer.level, "BREAKING");
    assert!(answer.rules.iter().any(|r| r == "attr-ejected"), "{:?}", answer.rules);
    assert_eq!(answer.breaking_steps, 1);

    // A nullable add against the same warm head is BACKWARD.
    let resp = client.send(
        r#"{"cmd":"compat","project":"pay/ledger","ddl":"CREATE TABLE r (id INT, label VARCHAR(9), note TEXT, extra INT);"}"#,
    );
    let answer = resp.compat.expect("compat answer");
    assert_eq!(answer.level, "BACKWARD");
    assert_eq!(answer.breaking_steps, 0);

    // Without a candidate the daemon profiles the warm history: the one
    // evolution step added a nullable column.
    let resp = client.send(r#"{"cmd":"compat","project":"pay/ledger"}"#);
    let answer = resp.compat.expect("compat answer");
    assert_eq!(answer.level, "BACKWARD");
    assert_eq!(answer.steps, 1);
    assert_eq!(answer.breaking_steps, 0);
    assert!(answer.rules.iter().any(|r| r == "attr-add-optional"));

    // Errors answer on the same connection, not hangups.
    assert!(!client.send(r#"{"cmd":"compat"}"#).ok);
    assert!(!client.send(r#"{"cmd":"compat","project":"never/seen"}"#).ok);

    assert!(client.send(r#"{"cmd":"shutdown"}"#).ok);
    handle.join().expect("server thread");
}

#[test]
fn daemon_restart_resumes_from_snapshots() {
    let dir = std::env::temp_dir().join(format!(
        "coevo_serve_proto_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let (addr, handle) = spawn(Some(dir.clone()));
    let mut client = RawClient::connect(addr);
    let ingest = concat!(
        r#"{"cmd":"ingest","project":"ops/relay","dialect":"mysql","events":["#,
        r#"{"kind":"commit","date":"2019-06-03 10:00:00 +0000","files":2},"#,
        r#"{"kind":"ddl","date":"2019-06-04 09:00:00 +0000","ddl":"CREATE TABLE r (id INT, t VARCHAR(9));"},"#,
        r#"{"kind":"commit","date":"2019-07-11 10:00:00 +0000","files":1}]}"#
    );
    let resp = client.send(ingest);
    assert!(resp.ok, "{:?}", resp.error);
    assert!(client.send(r#"{"cmd":"shutdown"}"#).ok);
    handle.join().expect("server thread");

    // Same store, new daemon: the project answers without re-ingestion,
    // and keeps accepting further events.
    let (addr, handle) = spawn(Some(dir.clone()));
    let mut client = RawClient::connect(addr);
    let resp = client.send(r#"{"cmd":"project","project":"ops/relay"}"#);
    assert!(resp.ok, "{:?}", resp.error);
    assert_eq!(resp.measures.expect("measures").months, 2);
    let resp = client.send(
        r#"{"cmd":"ingest","project":"ops/relay","dialect":"mysql","events":[{"kind":"commit","date":"2019-08-02 10:00:00 +0000","files":3}]}"#,
    );
    assert!(resp.ok, "{:?}", resp.error);
    let resp = client.send(r#"{"cmd":"project","project":"ops/relay"}"#);
    assert_eq!(resp.measures.expect("measures").months, 3);

    assert!(client.send(r#"{"cmd":"shutdown"}"#).ok);
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}
