//! Corpus-wide invariants: every generated project, pushed through the full
//! text pipeline, satisfies the structural properties the study relies on.

use coevo_corpus::{generate_corpus, CorpusSpec};
use coevo_engine::pipeline::project_from_generated;
use coevo_taxa::{Taxon, TaxonomyConfig};

fn corpus_data() -> Vec<(coevo_core::ProjectData, Taxon)> {
    let corpus = generate_corpus(&CorpusSpec::paper());
    corpus.iter().map(|p| (project_from_generated(p).expect("pipeline"), p.raw.taxon)).collect()
}

#[test]
fn corpus_has_195_measurable_projects() {
    let data = corpus_data();
    assert_eq!(data.len(), 195);
    let names: std::collections::HashSet<&str> =
        data.iter().map(|(d, _)| d.name.as_str()).collect();
    assert_eq!(names.len(), 195, "project names must be unique");
}

#[test]
fn every_project_has_coherent_axes() {
    for (d, taxon) in corpus_data() {
        // The project exists from its first commit; schema never precedes it.
        assert!(d.project.start() <= d.schema.start(), "{}", d.name);
        // Non-degenerate activity on both sides.
        assert!(d.project.total() > 0, "{}", d.name);
        assert!(d.schema.total() > 0, "{}", d.name);
        // Birth activity is part of the schema's total.
        assert!(d.birth_activity <= d.schema.total(), "{}", d.name);
        // Frozen projects have exactly birth activity and nothing else.
        if taxon == Taxon::Frozen {
            assert_eq!(d.schema.total(), d.birth_activity, "{}", d.name);
        }
    }
}

#[test]
fn measures_are_well_formed_for_all_projects() {
    let cfg = TaxonomyConfig::default();
    for (d, _) in corpus_data() {
        let m = d.measures(&cfg);
        assert!((0.0..=1.0).contains(&m.sync_05), "{}", d.name);
        assert!((0.0..=1.0).contains(&m.sync_10), "{}", d.name);
        assert!(m.sync_05 <= m.sync_10 + 1e-12, "{}", d.name);
        for v in [m.advance.over_source, m.advance.over_time].into_iter().flatten() {
            assert!((0.0..=1.0).contains(&v), "{}", d.name);
        }
        // Attainment fractions are ordered and in [0, 1].
        let atts =
            [m.attainment.at_50, m.attainment.at_75, m.attainment.at_80, m.attainment.at_100];
        let mut prev = 0.0;
        for a in atts.into_iter().flatten() {
            assert!((0.0..=1.0).contains(&a), "{}", d.name);
            assert!(a >= prev - 1e-12, "{}: attainment must be monotone", d.name);
            prev = a;
        }
        // Every project attains 100% (all have activity).
        assert!(m.attainment.at_100.is_some(), "{}", d.name);
        // Always flags imply the fraction is exactly 1.
        if m.advance.always_over_source {
            assert_eq!(m.advance.over_source, Some(1.0), "{}", d.name);
        }
        if m.advance.always_over_time {
            assert_eq!(m.advance.over_time, Some(1.0), "{}", d.name);
        }
        assert_eq!(
            m.advance.always_over_both,
            m.advance.always_over_source && m.advance.always_over_time,
            "{}",
            d.name
        );
    }
}

#[test]
fn taxa_distribution_matches_spec() {
    let data = corpus_data();
    let count = |t: Taxon| data.iter().filter(|(_, x)| *x == t).count();
    assert_eq!(count(Taxon::Frozen), 27);
    assert_eq!(count(Taxon::AlmostFrozen), 58);
    assert_eq!(count(Taxon::FocusedShotAndFrozen), 31);
    assert_eq!(count(Taxon::Moderate), 45);
    assert_eq!(count(Taxon::FocusedShotAndLow), 18);
    assert_eq!(count(Taxon::Active), 16);
}

#[test]
fn ddl_activity_agrees_between_declared_and_diffed() {
    // The schema heartbeat total must equal the sum of per-version diff
    // activities recomputed directly with the diff engine.
    let corpus = generate_corpus(&CorpusSpec::paper());
    for p in corpus.iter().take(40) {
        let history = coevo_diff::SchemaHistory::from_ddl_texts(
            p.raw.ddl_versions.iter().map(|(d, s)| (*d, s.as_str())),
            p.raw.dialect,
        )
        .unwrap()
        .unwrap();
        let data = project_from_generated(p).unwrap();
        assert_eq!(history.total_activity(), data.schema.total(), "{}", p.raw.name);
        assert_eq!(history.heartbeat(), data.schema, "{}", p.raw.name);
    }
}
