//! Tier-1 smoke coverage for the correctness oracle: a clean build must
//! pass a quick seeded check end to end, through both the harness API and
//! the `coevo check` CLI surface.

use coevo_cli::{run, Command};
use coevo_oracle::{all_mutators, per_project_oracles, run_check, CheckConfig};

/// One quick check through the CLI layer: the summary line must state the
/// coverage, the run must be clean, and the process exit code must be 0.
#[test]
fn coevo_check_quick_is_clean_through_the_cli() {
    let repro = std::env::temp_dir().join(format!("coevo_smoke_repro_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&repro);
    let mut out = Vec::new();
    let code =
        run(Command::Check { full: false, seed: 42, repro_dir: Some(repro.clone()) }, &mut out);
    let text = String::from_utf8(out).expect("utf-8 CLI output");
    assert_eq!(code, 0, "quick check must exit 0 on a clean build:\n{text}");
    assert!(text.contains("checked 12 projects"), "{text}");
    assert!(text.contains("no violations"), "{text}");
    // Clean runs write no reproducers.
    let wrote_any = std::fs::read_dir(&repro).map(|d| d.count() > 0).unwrap_or(false);
    assert!(!wrote_any, "clean check must not write reproducers");
    let _ = std::fs::remove_dir_all(&repro);
}

/// The harness must meet the coverage floors the oracle promises: ≥ 8
/// mutators, ≥ 5 per-project differential oracles plus the three
/// corpus-level differentials (1-vs-N workers, batch-vs-incremental study,
/// eager-vs-streamed engine), the compat and rename check families over
/// planted histories, and layer-3 invariant sweeps over every measured
/// project — under an arbitrary seed, not just the CI one.
#[test]
fn run_check_covers_the_promised_floors() {
    assert!(all_mutators().len() >= 8);
    assert!(per_project_oracles().len() >= 5);

    let report = run_check(&CheckConfig::quick(7));
    assert!(report.ok(), "violations on a clean build: {:#?}", report.violations);
    assert_eq!(report.projects, 12);
    assert_eq!(report.mutators, all_mutators().len());
    assert_eq!(
        report.oracles,
        per_project_oracles().len()
            + 3
            + coevo_oracle::COMPAT_CHECKS
            + coevo_oracle::RENAME_CHECKS
    );
    // The compat sweep classifies planted histories with breaking steps.
    assert!(report.compat.steps > 0);
    assert!(report.compat.breaking_steps > 0);
    assert!(report.compat.false_alarm_rate() <= 1.0);
    // The rename sweep validates the scored matcher on planted ground truth.
    assert!(report.rename.steps > 0);
    assert!(report.rename.planted > 0);
    assert!(report.rename.precision() >= coevo_oracle::PRECISION_FLOOR);
    assert!(report.rename.recall() >= coevo_oracle::RECALL_FLOOR);
    assert!(
        report.mutation_runs >= report.projects * 8,
        "expected ≥ 8 applied mutations per project, got {} over {} projects",
        report.mutation_runs,
        report.projects
    );
    // Every applied mutation runs every per-project oracle; the corpus-level
    // differential adds one run per corpus (original + one per mutator).
    assert!(report.oracle_runs >= report.mutation_runs * per_project_oracles().len());
    // One invariant sweep for each baseline and each mutated measurement.
    assert!(report.invariant_checks >= report.projects + report.mutation_runs);
}

/// The full configuration must cover the ≥ 50-project corpus the issue
/// specifies. (Only the config is asserted here — the full run itself is
/// exercised in CI as `coevo check --full --seed 42`.)
#[test]
fn full_config_covers_fifty_projects() {
    let full = CheckConfig::full(42);
    assert!(full.per_taxon * 6 >= 50);
    assert!(full.per_taxon > CheckConfig::quick(42).per_taxon);
}
