//! Cross-crate agreement for the compatibility engine:
//!
//! - **classifier ↔ query checker**: on generator-planted histories with
//!   known ground truth, every step where [`coevo_query::breaking_queries`]
//!   finds a genuinely broken stored query must be classified BREAKING —
//!   the rule table may be *more* conservative than the query checker
//!   (NarrowType breaks nothing a `SELECT` can witness), never less;
//! - **evidence ↔ identifier folding**: the impact scanner behind
//!   [`coevo_compat::gather_evidence`] must case-fold identifiers exactly
//!   like `coevo_ddl::Ident::key()` does, so mixed-case DDL still matches
//!   lower- or upper-case source references.

use coevo_compat::{classify_history, verdict_for_step, CompatLevel};
use coevo_corpus::plant_compat_project;
use coevo_diff::{diff_constraints, diff_schemas, SchemaHistory};
use coevo_query::breaking_queries;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The query checker never out-breaks the classifier: a step with a
    /// broken stored query always classifies BREAKING, and every step the
    /// generator planted a query-breaking change into is caught by both.
    #[test]
    fn breaking_queries_agree_with_the_classifier_on_planted_histories(
        seed in 0u64..10_000,
        steps in 4usize..12,
    ) {
        let planted = plant_compat_project(seed, steps);
        let history = SchemaHistory::from_ddl_texts(
            planted.ddl_versions.iter().map(|(d, s)| (*d, s.as_str())),
            planted.dialect,
        )
        .expect("planted DDL parses")
        .expect("planted history is nonempty");
        let classes = classify_history(&history);
        let versions = history.versions();

        // Every planted stored query, exactly as an application would
        // embed it.
        let texts: Vec<String> = planted
            .sources
            .iter()
            .flat_map(|(_, text)| coevo_query::extract_sql_strings(text))
            .map(|e| e.sql)
            .collect();
        let queries: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();

        for i in 1..versions.len() {
            let old = versions[i - 1].schema.as_ref();
            let new = versions[i].schema.as_ref();
            let broken = breaking_queries(old, new, &queries);
            if !broken.is_empty() {
                prop_assert!(
                    classes[i].level.is_breaking(),
                    "step {i}: queries {:?} broke but the classifier said {}",
                    broken.iter().map(|b| b.sql.as_str()).collect::<Vec<_>>(),
                    classes[i].level
                );
            }
            let step = planted.steps.iter().find(|s| s.index == i).expect("step labeled");
            if step.kind.breaks_query() {
                prop_assert!(
                    !broken.is_empty(),
                    "step {i} ({:?} on {}) plants a query break the checker missed",
                    step.kind,
                    step.victim
                );
                prop_assert!(classes[i].level.is_breaking());
            }
            // Steps safe for readers never break a read query.
            if classes[i].level.is_backward_compatible() {
                prop_assert!(
                    broken.is_empty(),
                    "step {i} is {} yet broke {:?}",
                    classes[i].level,
                    broken.iter().map(|b| b.sql.as_str()).collect::<Vec<_>>()
                );
            }
        }
    }
}

/// Regression for the identifier case-fold audit: `coevo_ddl::Ident::key()`
/// folds ASCII case, and the impact scanner must agree — a mixed-case DDL
/// column is matched by lower- and upper-case source references alike, in
/// both the raw scanner and the compat evidence layer.
#[test]
fn impact_scanner_case_folds_like_ident_key() {
    use coevo_ddl::{parse_schema, Dialect};
    use coevo_impact::{ImpactAnalyzer, ScanConfig};

    let old = parse_schema(
        "CREATE TABLE Invoices (Id INT, Total_Price INT, Created_Stamp INT);",
        Dialect::Generic,
    )
    .unwrap();
    let new =
        parse_schema("CREATE TABLE Invoices (Id INT, Created_Stamp INT);", Dialect::Generic)
            .unwrap();
    let delta = diff_schemas(&old, &new);
    let constraints = diff_constraints(&old, &new);

    // Three case spellings of the ejected column; all must hit.
    let sources: Vec<(&str, &str)> = vec![
        ("a.js", "const x = row.total_price;"),
        ("b.js", "const y = row.TOTAL_PRICE;"),
        ("c.js", "const z = row.Total_Price;"),
    ];
    let analyzer = ImpactAnalyzer::new(&old, &ScanConfig::default());
    let report = analyzer.impact_of(&delta, &sources);
    let hit_files: Vec<&str> = report.files.iter().map(|f| f.path.as_str()).collect();
    for file in ["a.js", "b.js", "c.js"] {
        assert!(hit_files.contains(&file), "{file} missing from {hit_files:?}");
    }
    assert!(report.total_breaking() >= 3, "all three spellings are breaking references");

    // The same holds one layer up, through the compat evidence gatherer.
    let verdict = verdict_for_step(&old, &new, &delta, &constraints, Some(&sources));
    assert_eq!(verdict.level(), CompatLevel::Breaking);
    let evidence = verdict.evidence.expect("sources were provided");
    assert_eq!(evidence.files, 3, "every case spelling counts as a referencing file");
    assert!(!verdict.false_alarm, "corroborated by source references");
}
