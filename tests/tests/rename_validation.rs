//! Statistical validation of the scored rename matcher against planted
//! ground truth — the headline guarantee of the rename-detection feature.
//!
//! [`coevo_corpus::plant_rename_project`] evolves schema models one labeled
//! operation per version, so every step's true rename set is known by
//! construction: pure renames, rename + retype, rename + reposition,
//! swapped pairs, same-type sibling decoys, and benign churn that plants
//! nothing. The sweep below runs the full oracle family (ground truth,
//! ≤-legacy activity bound, flag-off bit-identity, threshold/permutation
//! stability) over ≥ 1 000 planted evolution steps and asserts the
//! statistical floors the harness promises.

use coevo_diff::{diff_schemas_with, MatchPolicy};
use coevo_oracle::{rename_sweep, PRECISION_FLOOR, RECALL_FLOOR};

/// 90 planted projects × 12 steps = 1 080 evolution steps — above the
/// 1 000-step population the validation promises — with zero oracle
/// violations and precision/recall at or above the published floors.
#[test]
fn planted_population_meets_the_statistical_floors() {
    let (violations, stats) = rename_sweep(42, 90, 12);
    assert!(violations.is_empty(), "rename oracle violations: {violations:#?}");
    assert!(
        stats.steps >= 1_000,
        "validation population too small: {} steps (need ≥ 1000)",
        stats.steps
    );
    assert!(stats.planted > 0, "sweep planted no renames");
    assert!(
        stats.precision() >= PRECISION_FLOOR,
        "precision {:.4} below floor {PRECISION_FLOOR} ({} TP, {} FP over {} steps)",
        stats.precision(),
        stats.true_positives,
        stats.false_positives,
        stats.steps
    );
    assert!(
        stats.recall() >= RECALL_FLOOR,
        "recall {:.4} below floor {RECALL_FLOOR} ({} TP, {} FN over {} steps)",
        stats.recall(),
        stats.true_positives,
        stats.false_negatives,
        stats.steps
    );
}

/// The sweep is deterministic: the same seed yields byte-identical stats,
/// and a different seed still meets the floors (the guarantee is about the
/// matcher, not one lucky population).
#[test]
fn sweep_is_deterministic_and_seed_robust() {
    let (_, a) = rename_sweep(7, 20, 10);
    let (_, b) = rename_sweep(7, 20, 10);
    assert_eq!(a, b, "same seed must reproduce identical counters");

    let (violations, c) = rename_sweep(0xC0FFEE, 25, 8);
    assert!(violations.is_empty(), "{violations:#?}");
    assert!(c.precision() >= PRECISION_FLOOR);
    assert!(c.recall() >= RECALL_FLOOR);
}

/// Cross-crate spot check of the seventh category: a widened rename is one
/// `Renamed` plus one `TypeChanged` — strictly cheaper than the by-name
/// eject + inject reading of the same step.
#[test]
fn renamed_category_reaches_the_public_diff_surface() {
    use coevo_ddl::{parse_schema, Dialect};

    let old =
        parse_schema("CREATE TABLE t (user_name VARCHAR(40), age INT);", Dialect::Generic)
            .expect("old DDL");
    let new =
        parse_schema("CREATE TABLE t (username VARCHAR(255), age INT);", Dialect::Generic)
            .expect("new DDL");

    let aware = diff_schemas_with(&old, &new, MatchPolicy::rename_detection());
    assert_eq!(aware.breakdown().attrs_renamed, 1, "{:?}", aware.breakdown());
    assert_eq!(aware.breakdown().attrs_type_changed, 1, "{:?}", aware.breakdown());
    assert_eq!(aware.breakdown().attrs_ejected, 0, "{:?}", aware.breakdown());
    assert_eq!(aware.breakdown().attrs_injected, 0, "{:?}", aware.breakdown());

    let legacy = diff_schemas_with(&old, &new, MatchPolicy::ByName);
    assert!(
        aware.breakdown().total() <= legacy.breakdown().total(),
        "rename-aware activity {} must not exceed by-name {}",
        aware.breakdown().total(),
        legacy.breakdown().total()
    );
}
