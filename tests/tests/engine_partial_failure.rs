//! Fault tolerance of the execution engine: corrupt artifacts in an on-disk
//! corpus demote their projects to structured failures while the study
//! completes on the survivors.

use coevo_corpus::loader::save_project;
use coevo_corpus::{generate_corpus, CorpusSpec};
use coevo_engine::{EngineErrorKind, FailurePolicy, Source, Stage, StudyConfig, StudyRunner};
use std::error::Error;
use std::fs;
use std::path::PathBuf;

/// Write a one-project-per-taxon corpus to disk and corrupt two projects:
/// one gets a truncated DDL version, the other a truncated git log. Returns
/// the corpus dir and the two victims' names (DDL victim, log victim).
fn corrupted_corpus(tag: &str) -> (PathBuf, String, String) {
    let dir =
        std::env::temp_dir().join(format!("coevo_engine_fail_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();

    let mut spec = CorpusSpec::paper();
    for t in &mut spec.taxa {
        t.count = 1;
    }
    let corpus = generate_corpus(&spec);
    assert_eq!(corpus.len(), 6);
    for p in &corpus {
        save_project(&dir.join(p.raw.name.replace('/', "__")), p).unwrap();
    }

    let ddl_victim = &corpus[1];
    let ddl_dir = dir.join(ddl_victim.raw.name.replace('/', "__"));
    fs::write(ddl_dir.join("versions/0001.sql"), "CREATE TABLE t (a INT").unwrap();

    let log_victim = &corpus[4];
    let log_dir = dir.join(log_victim.raw.name.replace('/', "__"));
    fs::write(log_dir.join("git.log"), "commit abcdef\nAuthor: A <a@b.c>\n").unwrap();

    (dir, ddl_victim.raw.name.clone(), log_victim.raw.name.clone())
}

#[test]
fn corrupt_projects_are_demoted_to_failures() {
    let (dir, ddl_name, log_name) = corrupted_corpus("collect");

    let report = StudyRunner::new(StudyConfig::default())
        .with_failure_policy(FailurePolicy::CollectAndContinue)
        .run(Source::OnDisk(dir.clone()))
        .expect("study completes despite corrupt projects");

    // Exactly the two victims failed, both at the parse stage, with the
    // structured cause preserved through `Error::source()`.
    assert_eq!(report.failures.len(), 2, "{:?}", report.failures);
    let ddl_failure =
        report.failures.iter().find(|f| f.project == ddl_name).expect("DDL victim reported");
    assert_eq!(ddl_failure.stage, Stage::Parse);
    assert!(matches!(ddl_failure.error.kind, EngineErrorKind::Ddl(_)));
    assert!(ddl_failure.error.source().is_some());

    let log_failure =
        report.failures.iter().find(|f| f.project == log_name).expect("log victim reported");
    assert_eq!(log_failure.stage, Stage::Parse);
    assert!(matches!(log_failure.error.kind, EngineErrorKind::GitLog(_)));
    assert!(log_failure.error.source().is_some());

    // The survivors carried the study: four projects, figures included.
    assert_eq!(report.projects.len(), 4);
    assert!(report.projects.iter().all(|p| p.name != ddl_name && p.name != log_name));
    assert_eq!(report.results.measures.len(), 4);
    assert_eq!(report.results.fig4.counts.iter().sum::<u64>(), 4);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fail_fast_aborts_on_first_corrupt_project() {
    let (dir, _, _) = corrupted_corpus("failfast");

    let err = StudyRunner::new(StudyConfig::default())
        .with_failure_policy(FailurePolicy::FailFast)
        .run(Source::OnDisk(dir.clone()))
        .expect_err("fail-fast surfaces the corruption");
    assert_eq!(err.stage, Stage::Parse);

    let _ = fs::remove_dir_all(&dir);
}
