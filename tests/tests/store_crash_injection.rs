//! Crash injection for the store's atomic publish protocol, driven through
//! the whole engine: interrupted publishes leave only temp files (swept on
//! open, never served), truncated or bit-flipped entries are quarantined,
//! recomputed and repaired in one run, and a stale format header is
//! invalidated rather than trusted — all without perturbing the study's
//! results by a single byte.

use coevo_corpus::CorpusSpec;
use coevo_engine::{EngineReport, Source, StudyConfig, StudyRunner};
use std::path::{Path, PathBuf};

/// One project per taxon: six projects, small enough that each scenario
/// re-runs the engine several times in milliseconds.
fn small_spec() -> CorpusSpec {
    let mut spec = CorpusSpec::paper();
    for t in &mut spec.taxa {
        t.count = 1;
        t.single_month_count = 0;
    }
    spec
}

fn tmp(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("coevo_store_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(store: &Path) -> EngineReport {
    StudyRunner::new(StudyConfig::default())
        .with_store(store)
        .run(Source::Spec(small_spec()))
        .expect("engine run")
}

fn store_counts(report: &EngineReport) -> (u64, u64, u64, u64, u64) {
    let s = report.metrics.store.as_ref().expect("store metrics");
    (s.hits, s.misses, s.invalidated, s.quarantined, s.published)
}

/// All `*.entry` files under `<store>/entries`, sorted for determinism.
fn entry_files(store: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(store.join("entries"))
        .expect("entries dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "entry"))
        .collect();
    out.sort();
    out
}

fn quarantine_count(store: &Path) -> usize {
    std::fs::read_dir(store.join("quarantine")).map(|it| it.count()).unwrap_or(0)
}

#[test]
fn leftover_temp_files_are_swept_and_never_served() {
    let store = tmp("tmpsweep");
    let cold = run(&store);
    assert_eq!(store_counts(&cold), (0, 6, 0, 0, 6));

    // A publish that died between write and rename leaves only a temp file.
    let orphan = store.join("entries").join(".tmp-99999-0");
    std::fs::write(&orphan, b"half-written garbage").unwrap();

    let warm = run(&store);
    assert_eq!(store_counts(&warm), (6, 0, 0, 0, 0), "orphan temp must not affect lookups");
    assert!(!orphan.exists(), "store open must sweep leftover temp files");
    assert_eq!(cold.results, warm.results);

    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn truncated_entry_is_quarantined_recomputed_and_repaired() {
    let store = tmp("truncate");
    let cold = run(&store);
    assert_eq!(store_counts(&cold), (0, 6, 0, 0, 6));

    // Simulate a crash mid-write that somehow survived as a real entry:
    // chop the file in half, through the payload.
    let victim = entry_files(&store).into_iter().next().expect("at least one entry");
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

    // The damaged project is quarantined and recomputed; the repair is
    // published back in the same run. Results are unperturbed.
    let repair = run(&store);
    assert_eq!(store_counts(&repair), (5, 0, 0, 1, 1));
    assert_eq!(cold.results, repair.results);
    assert!(quarantine_count(&store) >= 1, "damaged entry must be preserved in quarantine");

    // The republished entry is trusted again: the next run is all hits.
    let healed = run(&store);
    assert_eq!(store_counts(&healed), (6, 0, 0, 0, 0));
    assert_eq!(cold.results, healed.results);

    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn bit_flipped_entry_fails_its_checksum_and_is_repaired() {
    let store = tmp("bitflip");
    let cold = run(&store);

    let victim = entry_files(&store).into_iter().last().expect("at least one entry");
    let mut bytes = std::fs::read(&victim).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&victim, &bytes).unwrap();

    let repair = run(&store);
    assert_eq!(store_counts(&repair), (5, 0, 0, 1, 1));
    assert_eq!(cold.results, repair.results);

    let healed = run(&store);
    assert_eq!(store_counts(&healed), (6, 0, 0, 0, 0));

    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn stale_format_header_is_invalidated_and_recomputed() {
    let store = tmp("staleformat");
    let cold = run(&store);

    // An entry written by a future (or ancient) format version: same
    // payload, same checksum, wrong format number. It must be invalidated,
    // not deserialized on faith.
    let victim = entry_files(&store).into_iter().next().expect("at least one entry");
    let text = std::fs::read_to_string(&victim).unwrap();
    assert!(text.starts_with("{\"format\":1,"), "header layout changed under the test");
    let stale = text.replacen("{\"format\":1,", "{\"format\":999,", 1);
    std::fs::write(&victim, stale).unwrap();

    let repair = run(&store);
    assert_eq!(store_counts(&repair), (5, 0, 1, 0, 1));
    assert_eq!(cold.results, repair.results);

    let healed = run(&store);
    assert_eq!(store_counts(&healed), (6, 0, 0, 0, 0));

    let _ = std::fs::remove_dir_all(&store);
}
