//! A realistic eight-version schema evolution scenario, hand-computed end to
//! end: every transition's Total Activity, the heartbeat, attainment, and
//! the breaking queries — the whole pipeline on one coherent story.

use coevo_ddl::Dialect;
use coevo_diff::{change_localization, SchemaHistory};
use coevo_heartbeat::DateTime;
use coevo_query::{breaking_queries, IssueKind};

fn dt(s: &str) -> DateTime {
    DateTime::parse(&format!("{s} 12:00:00 +0000")).unwrap()
}

/// The shop schema's life, one entry per DDL commit. Later versions are
/// written the way maintainers actually write them: base CREATEs plus
/// trailing ALTER statements.
fn versions() -> Vec<(DateTime, String)> {
    vec![
        // v1 (2018-01): birth — 2 tables, 6 attributes.            [+6]
        (
            dt("2018-01-10"),
            "CREATE TABLE customers (id INT PRIMARY KEY, email VARCHAR(120), created DATE);
             CREATE TABLE orders (id INT PRIMARY KEY, customer_id INT, total DECIMAL(8,2));"
                .to_string(),
        ),
        // v2 (2018-02): order status injected.                      [+1]
        (
            dt("2018-02-05"),
            "CREATE TABLE customers (id INT PRIMARY KEY, email VARCHAR(120), created DATE);
             CREATE TABLE orders (id INT PRIMARY KEY, customer_id INT, total DECIMAL(8,2));
             ALTER TABLE orders ADD COLUMN status VARCHAR(20);"
                .to_string(),
        ),
        // v3 (2018-02, later): items table born with 4 attributes.  [+4]
        (
            dt("2018-02-20"),
            "CREATE TABLE customers (id INT PRIMARY KEY, email VARCHAR(120), created DATE);
             CREATE TABLE orders (id INT PRIMARY KEY, customer_id INT, total DECIMAL(8,2), status VARCHAR(20));
             CREATE TABLE items (id INT PRIMARY KEY, order_id INT, sku VARCHAR(40), qty INT);"
                .to_string(),
        ),
        // v4 (2018-05): total widened (type change), email widened. [+2]
        (
            dt("2018-05-11"),
            "CREATE TABLE customers (id INT PRIMARY KEY, email VARCHAR(255), created DATE);
             CREATE TABLE orders (id INT PRIMARY KEY, customer_id INT, total DECIMAL(12,2), status VARCHAR(20));
             CREATE TABLE items (id INT PRIMARY KEY, order_id INT, sku VARCHAR(40), qty INT);"
                .to_string(),
        ),
        // v5 (2018-08): formatting-only commit.                     [+0]
        (
            dt("2018-08-01"),
            "CREATE TABLE customers (
                 id INT PRIMARY KEY,
                 email VARCHAR(255),
                 created DATE
             );
             CREATE TABLE orders (id INT PRIMARY KEY, customer_id INT, total DECIMAL(12,2), status VARCHAR(20));
             CREATE TABLE items (id INT PRIMARY KEY, order_id INT, sku VARCHAR(40), qty INT);"
                .to_string(),
        ),
        // v6 (2019-01): `created` ejected; composite key on items.  [+3]
        //   - eject customers.created                                 (1)
        //   - items PK id → (id, order_id): order_id gains key        (1)
        //   - customers.email NOT NULL (no activity) + qty BIGINT     (1)
        (
            dt("2019-01-15"),
            "CREATE TABLE customers (id INT PRIMARY KEY, email VARCHAR(255) NOT NULL);
             CREATE TABLE orders (id INT PRIMARY KEY, customer_id INT, total DECIMAL(12,2), status VARCHAR(20));
             CREATE TABLE items (id INT, order_id INT, sku VARCHAR(40), qty BIGINT, PRIMARY KEY (id, order_id));"
                .to_string(),
        ),
        // v7 (2019-06): items dropped (4 attrs die), audit born (3). [+7]
        (
            dt("2019-06-20"),
            "CREATE TABLE customers (id INT PRIMARY KEY, email VARCHAR(255) NOT NULL);
             CREATE TABLE orders (id INT PRIMARY KEY, customer_id INT, total DECIMAL(12,2), status VARCHAR(20));
             CREATE TABLE audit (id INT PRIMARY KEY, event VARCHAR(60), at TIMESTAMP);"
                .to_string(),
        ),
        // v8 (2019-12): orders.status renamed → state (eject+inject). [+2]
        (
            dt("2019-12-02"),
            "CREATE TABLE customers (id INT PRIMARY KEY, email VARCHAR(255) NOT NULL);
             CREATE TABLE orders (id INT PRIMARY KEY, customer_id INT, total DECIMAL(12,2), state VARCHAR(20));
             CREATE TABLE audit (id INT PRIMARY KEY, event VARCHAR(60), at TIMESTAMP);"
                .to_string(),
        ),
    ]
}

fn history() -> SchemaHistory {
    SchemaHistory::from_ddl_texts(
        versions().iter().map(|(d, s)| (*d, s.as_str())),
        Dialect::Generic,
    )
    .unwrap()
    .unwrap()
}

#[test]
fn per_transition_activity_is_exact() {
    let h = history();
    let totals: Vec<u64> = h.deltas().iter().map(|d| d.breakdown.total()).collect();
    assert_eq!(totals, vec![6, 1, 4, 2, 0, 3, 7, 2]);
    assert_eq!(h.total_activity(), 25);
    assert_eq!(h.commits(), 8);
    assert_eq!(h.active_commits(), 7); // v5 is inactive
}

#[test]
fn category_breakdown_is_exact() {
    let h = history();
    let total = h.total_breakdown();
    // Births: v1 (6) + v3 items (4) + v7 audit (3) = 13.
    assert_eq!(total.attrs_born_with_table, 13);
    // Injections: v2 status (1) + v8 state (1) = 2.
    assert_eq!(total.attrs_injected, 2);
    // Deaths with table: v7 items (4).
    assert_eq!(total.attrs_deleted_with_table, 4);
    // Ejections: v6 created (1) + v8 status (1) = 2.
    assert_eq!(total.attrs_ejected, 2);
    // Type changes: v4 total+email (2) + v6 qty (1) = 3.
    assert_eq!(total.attrs_type_changed, 3);
    // Key changes: v6 items.order_id joins the PK (1).
    assert_eq!(total.attrs_key_changed, 1);
}

#[test]
fn heartbeat_and_attainment() {
    let h = history();
    let hb = h.heartbeat();
    // Jan 2018 .. Dec 2019 = 24 months.
    assert_eq!(hb.months(), 24);
    assert_eq!(hb.at(coevo_heartbeat::YearMonth::new(2018, 1).unwrap()), 6);
    assert_eq!(hb.at(coevo_heartbeat::YearMonth::new(2018, 2).unwrap()), 5); // v2 + v3
    assert_eq!(hb.at(coevo_heartbeat::YearMonth::new(2019, 6).unwrap()), 7);
    assert_eq!(hb.total(), 25);

    // Cumulative fractional: 6/25 = 24% at birth, 11/25 = 44% by Feb,
    // 13/25 = 52% by May → the 50%-attainment lands in 2018-05 (index 4 of
    // 24 months, duration 23).
    let cum = hb.cumulative_fraction();
    assert!((cum[0] - 0.24).abs() < 1e-12);
    assert!((cum[1] - 0.44).abs() < 1e-12);
    let att50 = coevo_core::attainment::attainment_fraction(&cum, 0.50).unwrap();
    assert!((att50 - 4.0 / 23.0).abs() < 1e-12, "{att50}");
    // 100% only at the last month.
    let att100 = coevo_core::attainment::attainment_fraction(&cum, 1.0).unwrap();
    assert!((att100 - 1.0).abs() < 1e-12);
}

#[test]
fn localization_of_the_scenario() {
    let h = history();
    let loc = change_localization(&h);
    // Tables ever seen: customers, orders, items, audit.
    assert_eq!(loc.tables_seen, 4);
    // Post-birth activity: orders 1+1(v4 total)+2(v8) = 4, customers 1(v4
    // email)+1(v6 created) = 2, items 4(born v3)+2(v6 qty+key)+4(died v7)
    // = 10, audit 3 (born v7).
    let get = |n: &str| loc.per_table.iter().find(|(t, _)| t == n).unwrap().1;
    assert_eq!(get("items"), 10);
    assert_eq!(get("orders"), 4);
    assert_eq!(get("customers"), 2);
    assert_eq!(get("audit"), 3);
    assert_eq!(loc.untouched_fraction, 0.0);
    // Top 20% of 4 tables = 1 table (items) = 10/19 of activity.
    assert!((loc.top20_share - 10.0 / 19.0).abs() < 1e-12);
}

#[test]
fn queries_break_where_the_story_says() {
    let v = versions();
    let first = coevo_ddl::parse_schema(&v[0].1, Dialect::Generic).unwrap();
    let last = coevo_ddl::parse_schema(&v.last().unwrap().1, Dialect::Generic).unwrap();
    let queries = [
        "SELECT email FROM customers",                    // survives
        "SELECT created FROM customers",                  // ejected in v6
        "SELECT total FROM orders WHERE customer_id = ?", // survives
        "UPDATE orders SET total = ? WHERE id = ?",       // survives
    ];
    let broken = breaking_queries(&first, &last, &queries);
    assert_eq!(broken.len(), 1);
    assert!(broken[0].sql.contains("created"));
    assert_eq!(broken[0].issues[0].kind, IssueKind::UnknownColumn);

    // Queries against v3's items table break later (table dropped in v7).
    let v3 = coevo_ddl::parse_schema(&v[2].1, Dialect::Generic).unwrap();
    let broken = breaking_queries(&v3, &last, &["SELECT sku, qty FROM items"]);
    assert_eq!(broken.len(), 1);
    assert_eq!(broken[0].issues[0].kind, IssueKind::UnknownTable);
}

#[test]
fn growth_across_the_scenario() {
    let h = history();
    let (dattrs, dtables) = coevo_diff::net_growth(&h);
    // 6 attributes → 9 attributes (customers 2, orders 4, audit 3).
    assert_eq!(dattrs, 3);
    assert_eq!(dtables, 1);
    let series = coevo_diff::schema_size_series(&h);
    assert_eq!(series.len(), 24);
    assert_eq!(series[0].attributes, 6);
    // After v3 (Feb 2018): 3 + 4 + 4 = 11 attributes.
    assert_eq!(series[1].attributes, 11);
    assert_eq!(series.last().unwrap().attributes, 9);
}
