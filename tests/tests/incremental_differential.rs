//! Differentials for the fold/event path: the incremental study must be
//! bit-for-bit equal to the batch study over the full 195-project corpus,
//! and every fold prefix must equal the batch measures of the truncated
//! series — for both θ bands and every attainment α the paper uses.

use coevo_core::{
    advance_measures, theta_synchronicity, AttainmentLevels, MeasureFolds, StudyResults,
    ATTAINMENT_ALPHAS,
};
use coevo_corpus::ProjectArtifacts;
use coevo_engine::{artifacts_to_events, IncrementalStudy, Source, StudyConfig, StudyRunner};
use coevo_heartbeat::{cumulative_fraction, time_progress};
use proptest::prelude::*;

/// Batch measures of the first `k` months of a raw activity pair, computed
/// through the materializing reference path (fraction vectors + the
/// original measure functions).
fn batch_prefix(p_act: &[u64], s_act: &[u64], k: usize) -> (f64, f64, AttainmentLevels) {
    let p = cumulative_fraction(&p_act[..k]);
    let s = cumulative_fraction(&s_act[..k]);
    (
        theta_synchronicity(&p, &s, 0.05),
        theta_synchronicity(&p, &s, 0.10),
        AttainmentLevels::of(&s),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Folding k months must equal batch-measuring the truncated series,
    /// for every prefix k — not just the final frontier. This is the
    /// property that makes `append_month` trustworthy mid-stream.
    #[test]
    fn fold_prefixes_match_batch_measures_of_truncated_series(
        p_act in prop::collection::vec(0u64..25, 1..70),
        s_act in prop::collection::vec(0u64..18, 1..70),
    ) {
        let months = p_act.len().min(s_act.len());
        let p_act = &p_act[..months];
        let s_act = &s_act[..months];

        let mut folds = MeasureFolds::new();
        for k in 1..=months {
            folds.append_month(p_act[k - 1], s_act[k - 1]);
            let out = folds.outputs();
            let (sync_05, sync_10, attainment) = batch_prefix(p_act, s_act, k);

            prop_assert_eq!(out.months, k);
            prop_assert_eq!(out.sync_05, sync_05, "θ=0.05 at prefix {}", k);
            prop_assert_eq!(out.sync_10, sync_10, "θ=0.10 at prefix {}", k);
            for alpha in ATTAINMENT_ALPHAS {
                prop_assert_eq!(
                    out.attainment.get(alpha),
                    attainment.get(alpha),
                    "α={} at prefix {}", alpha, k
                );
            }

            // The advance measures ride the same spine; they must agree
            // at every prefix too.
            let p = cumulative_fraction(&p_act[..k]);
            let s = cumulative_fraction(&s_act[..k]);
            let t = time_progress(k);
            prop_assert_eq!(
                out.advance,
                advance_measures(&s, &p, &t),
                "advance at prefix {}", k
            );
        }
    }
}

#[test]
fn incremental_study_matches_batch_study_on_full_corpus() {
    let report = StudyRunner::new(StudyConfig::default())
        .run(Source::paper())
        .expect("batch engine run");
    assert!(report.failures.is_empty());
    assert_eq!(report.projects.len(), 195);
    let mut by_name = report.results.measures.clone();
    by_name.sort_by(|a, b| a.name.cmp(&b.name));
    let batch = StudyResults::from_measures(by_name);

    let corpus: Vec<ProjectArtifacts> =
        coevo_corpus::generate_corpus(&coevo_corpus::CorpusSpec::paper())
            .iter()
            .map(ProjectArtifacts::from_generated)
            .collect();
    let mut streamed = IncrementalStudy::default();
    for (i, p) in corpus.iter().enumerate() {
        // Deliver each project's history in two batches split at a
        // project-dependent point, suffix first, so a third of the corpus
        // stresses out-of-order replay rather than pure append.
        let events = artifacts_to_events(p).expect("events");
        let cut = (i * 7919) % (events.len() + 1);
        let (head, tail) = events.split_at(cut);
        streamed.ingest(&p.name, p.dialect, p.taxon, tail.to_vec()).expect("ingest tail");
        streamed.ingest(&p.name, p.dialect, p.taxon, head.to_vec()).expect("ingest head");
    }
    assert!(streamed.pending().is_empty());

    let incremental = streamed.results();
    assert_eq!(incremental, batch);
    assert_eq!(
        serde_json::to_string(&incremental).unwrap(),
        serde_json::to_string(&batch).unwrap(),
        "streamed and batch results must serialize byte-identically"
    );
}
