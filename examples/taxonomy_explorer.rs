//! Taxonomy explorer: generate one exemplar project per taxon (the shape of
//! the paper's Figure 3), print its joint progress diagram, and check the
//! rule-based classifier against the generator's label.
//!
//! ```sh
//! cargo run --example taxonomy_explorer
//! ```

use coevo_corpus::{generate_corpus, CorpusSpec};
use coevo_engine::pipeline::project_from_generated;
use coevo_report::linechart::joint_progress_chart;
use coevo_taxa::{Taxon, TaxonomyConfig};

fn main() {
    let mut spec = CorpusSpec::paper();
    for t in &mut spec.taxa {
        t.count = 1;
        // Exemplars should show the taxon's character cleanly: no delayed
        // births, no single-month degenerates.
        t.schema_birth_delay_prob = 0.0;
        t.single_month_count = 0;
    }
    let corpus = generate_corpus(&spec);
    let cfg = TaxonomyConfig::default();

    for p in &corpus {
        let data = project_from_generated(p).expect("pipeline");
        let mut unlabeled = data.clone();
        unlabeled.taxon = None;
        let classified = unlabeled.effective_taxon(&cfg);
        let m = data.measures(&cfg);

        println!("=== {} ===", p.raw.taxon.name());
        println!("generated label: {} | classifier says: {}", p.raw.taxon, classified);
        println!(
            "schema activity: total={} (birth {}), active months={} of {}",
            data.schema.total(),
            data.birth_activity,
            data.schema.active_months(),
            data.schema.months()
        );
        println!(
            "10%-sync={:.2}  adv/time={:?}  att75={:?}",
            m.sync_10, m.advance.over_time, m.attainment.at_75
        );
        println!("{}", joint_progress_chart(&data, 12, 70));
    }

    // Sanity: the six taxa are all represented.
    assert_eq!(corpus.len(), Taxon::ALL.len());
}
