//! Quickstart: measure the co-evolution of one project from raw artifacts.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The inputs are exactly what the paper's pipeline consumes for a real
//! repository: a `git log --name-status --no-merges --date=iso` dump and the
//! dated versions of the schema DDL file.

use coevo_core::synchronicity::theta_synchronicity;
use coevo_corpus::pipeline::project_from_texts;
use coevo_ddl::Dialect;
use coevo_heartbeat::DateTime;
use coevo_taxa::TaxonomyConfig;

const GIT_LOG: &str = "\
commit 3333333333333333333333333333333333333333
Author: Dev <dev@example.org>
Date:   2019-09-14 09:30:00 +0000

    add reporting module

M\tsrc/report.py
M\tsrc/api.py

commit 2222222222222222222222222222222222222222
Author: Dev <dev@example.org>
Date:   2019-05-02 17:12:00 +0000

    track invoice totals in the schema

M\tdb/schema.sql
M\tsrc/api.py

commit 1111111111111111111111111111111111111111
Author: Dev <dev@example.org>
Date:   2019-01-10 11:00:00 +0000

    initial import

A\tdb/schema.sql
A\tsrc/api.py
A\tREADME.md
";

const SCHEMA_V1: &str = "
CREATE TABLE customers (
  id INT NOT NULL AUTO_INCREMENT,
  name VARCHAR(120) NOT NULL,
  email VARCHAR(255),
  PRIMARY KEY (id)
);
CREATE TABLE invoices (
  id INT NOT NULL AUTO_INCREMENT,
  customer_id INT NOT NULL,
  issued_at DATE,
  PRIMARY KEY (id),
  CONSTRAINT fk_cust FOREIGN KEY (customer_id) REFERENCES customers (id)
);
";

const SCHEMA_V2: &str = "
CREATE TABLE customers (
  id INT NOT NULL AUTO_INCREMENT,
  name VARCHAR(120) NOT NULL,
  email VARCHAR(255),
  PRIMARY KEY (id)
);
CREATE TABLE invoices (
  id INT NOT NULL AUTO_INCREMENT,
  customer_id INT NOT NULL,
  issued_at DATE,
  total DECIMAL(10,2) NOT NULL DEFAULT 0,
  currency CHAR(3) NOT NULL DEFAULT 'EUR',
  PRIMARY KEY (id),
  CONSTRAINT fk_cust FOREIGN KEY (customer_id) REFERENCES customers (id)
);
";

fn main() {
    let versions = vec![
        (DateTime::parse("2019-01-10 11:00:00 +0000").unwrap(), SCHEMA_V1.to_string()),
        (DateTime::parse("2019-05-02 17:12:00 +0000").unwrap(), SCHEMA_V2.to_string()),
    ];

    let data = project_from_texts("acme/billing", GIT_LOG, &versions, Dialect::MySql)
        .expect("pipeline");

    println!("project: {}", data.name);
    println!("project heartbeat (files/month): {:?}", data.project.activity());
    println!("schema heartbeat (activity/month): {:?}", data.schema.activity());
    println!("birth activity (initial attributes): {}", data.birth_activity);

    let jp = data.joint_progress();
    println!("\ncumulative fractional progress:");
    println!("  month  time   project  schema");
    for i in 0..jp.months() {
        println!(
            "  {}  {:>5.2}  {:>7.2}  {:>6.2}",
            jp.month_at(i),
            jp.time[i],
            jp.project[i],
            jp.schema[i]
        );
    }

    let m = data.measures(&TaxonomyConfig::default());
    println!("\n10%-synchronicity: {:.2}", m.sync_10);
    println!("sanity: recomputed = {:.2}", theta_synchronicity(&jp.project, &jp.schema, 0.10));
    println!("advance over time: {:?}", m.advance.over_time);
    println!("advance over source: {:?}", m.advance.over_source);
    println!("75%-attainment fractional timepoint: {:?}", m.attainment.at_75);
    println!("taxon (classified): {}", m.taxon);
}
