//! The real-data path: persist a project history to disk in the loader
//! layout (manifest + versions/ + git.log), load it back, and measure it.
//!
//! With a real clone you would produce the same layout via:
//!
//! ```sh
//! git log --name-status --no-merges --date=iso > git.log
//! # for each commit touching the schema file:
//! git show <sha>:db/schema.sql > versions/0001.sql
//! ```
//!
//! ```sh
//! cargo run --example real_data
//! ```

use coevo_corpus::loader::{load_project, save_project};
use coevo_corpus::{generate_corpus, CorpusSpec};
use coevo_taxa::TaxonomyConfig;

fn main() {
    // Stand in for a real clone with one generated project.
    let mut spec = CorpusSpec::paper();
    for t in &mut spec.taxa {
        t.count = if t.taxon == coevo_taxa::Taxon::Moderate { 1 } else { 0 };
    }
    let corpus = generate_corpus(&spec);
    let project = &corpus[0];

    let dir = std::env::temp_dir().join("coevo_real_data_example");
    let _ = std::fs::remove_dir_all(&dir);
    save_project(&dir, project).expect("save");
    println!("wrote project history to {}", dir.display());
    for entry in std::fs::read_dir(&dir).unwrap() {
        println!("  {}", entry.unwrap().path().display());
    }

    let data = load_project(&dir).expect("load");
    let m = data.measures(&TaxonomyConfig::default());
    println!("\nloaded & measured {}:", data.name);
    println!("  lifetime: {} months", m.months);
    println!("  schema total activity: {}", m.schema_total_activity);
    println!("  10%-synchronicity: {:.2}", m.sync_10);
    println!("  taxon: {}", m.taxon);

    let _ = std::fs::remove_dir_all(&dir);
}
