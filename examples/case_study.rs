//! The paper's §3.3 case study: `mapbox/osm-comments-parser`, reproduced as
//! a scripted history and measured through the full pipeline.
//!
//! ```sh
//! cargo run --example case_study
//! ```

use coevo_core::synchronicity::theta_synchronicity;
use coevo_corpus::case_study_project;
use coevo_corpus::pipeline::project_from_texts;
use coevo_report::linechart::joint_progress_chart;
use coevo_taxa::TaxonomyConfig;
use coevo_vcs::monthly::repo_stats;

fn main() {
    let cs = case_study_project();
    let repo = coevo_vcs::parse_log(&cs.git_log).expect("parse git log");
    let stats = repo_stats(&repo, "db/schema.sql");

    println!("case study: {}", cs.name);
    println!("  commits:            {} (paper: 119)", stats.commits);
    println!("  file updates:       {} (paper: 259)", stats.file_updates);
    println!("  schema commits:     {} (paper: 13)", stats.path_commits);

    let data = project_from_texts(cs.name, &cs.git_log, &cs.ddl_versions, cs.dialect)
        .expect("pipeline");
    let jp = data.joint_progress();
    println!("  project period:     {} months (paper: 22)", jp.months());
    println!("  schema period:      {} months (paper: 20)", data.schema.months());
    println!("  schema change at start-up: {:.0}% (paper: 48%)", jp.schema[0] * 100.0);

    let m = data.measures(&TaxonomyConfig::default());
    println!(
        "  50% of schema change at {:.0}% of life (paper: 55%)",
        m.attainment.at_50.unwrap() * 100.0
    );
    println!(
        "  80% of schema change at {:.0}% of life (paper: 68%)",
        m.attainment.at_80.unwrap() * 100.0
    );
    println!(
        "  10%-synchronicity: {:.0}% of months (paper: 43%)",
        theta_synchronicity(&jp.project, &jp.schema, 0.10) * 100.0
    );

    println!("\njoint progress diagram (cf. paper Figure 1):\n");
    println!("{}", joint_progress_chart(&data, 16, 66));
}
