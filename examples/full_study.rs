//! The full 195-project study: generate the calibrated corpus, run every
//! analysis of the paper on the execution engine, and print every figure
//! plus the Section 7 statistics and the per-stage execution profile.
//! Optionally dump the per-figure CSVs.
//!
//! ```sh
//! cargo run --release --example full_study            # print figures
//! cargo run --release --example full_study -- out_dir # also write CSVs
//! ```

use coevo_engine::{Source, StudyConfig, StudyRunner};
use coevo_report::csv::{fig4_csv, fig6_csv, fig8_csv, measures_csv};
use coevo_report::render_all_figures;
use std::fs;

fn main() {
    eprintln!("running the 195-project study on the execution engine …\n");
    let report = StudyRunner::new(StudyConfig::default()).run(Source::paper()).expect("study");
    assert!(report.failures.is_empty(), "generated corpus never fails");
    let results = &report.results;

    println!("{}", render_all_figures(results));
    println!("{}", coevo_report::research_question_answers(results));
    println!(
        "hand-in-hand co-evolution (10%-synchronicity ≥ 80%): {:.0}% of projects (paper: ~20%)",
        results.hand_in_hand_share(0.8) * 100.0
    );
    eprintln!("\n{}", report.metrics.render());

    if let Some(dir) = std::env::args().nth(1) {
        fs::create_dir_all(&dir).expect("create output dir");
        fs::write(format!("{dir}/measures.csv"), measures_csv(results)).unwrap();
        fs::write(format!("{dir}/fig4.csv"), fig4_csv(results)).unwrap();
        fs::write(format!("{dir}/fig6.csv"), fig6_csv(results)).unwrap();
        fs::write(format!("{dir}/fig8.csv"), fig8_csv(results)).unwrap();
        eprintln!("CSVs written to {dir}/");
    }
}
