//! The full 195-project study: generate the calibrated corpus, run every
//! analysis of the paper, and print every figure plus the Section 7
//! statistics. Optionally dump the per-figure CSVs.
//!
//! ```sh
//! cargo run --release --example full_study            # print figures
//! cargo run --release --example full_study -- out_dir # also write CSVs
//! ```

use coevo_core::Study;
use coevo_corpus::{generate_corpus, CorpusSpec};
use coevo_report::csv::{fig4_csv, fig6_csv, fig8_csv, measures_csv};
use coevo_report::render_all_figures;
use std::fs;

fn main() {
    eprintln!("generating the 195-project corpus …");
    let corpus = generate_corpus(&CorpusSpec::paper());

    eprintln!("running the measurement pipeline on every project …");
    let projects = coevo_corpus::projects_from_generated_parallel(&corpus).expect("pipeline");

    eprintln!("computing all measures and statistics …\n");
    let results = Study::new(projects).run();

    println!("{}", render_all_figures(&results));
    println!("{}", coevo_report::research_question_answers(&results));
    println!(
        "hand-in-hand co-evolution (10%-synchronicity ≥ 80%): {:.0}% of projects (paper: ~20%)",
        results.hand_in_hand_share(0.8) * 100.0
    );

    if let Some(dir) = std::env::args().nth(1) {
        fs::create_dir_all(&dir).expect("create output dir");
        fs::write(format!("{dir}/measures.csv"), measures_csv(&results)).unwrap();
        fs::write(format!("{dir}/fig4.csv"), fig4_csv(&results)).unwrap();
        fs::write(format!("{dir}/fig6.csv"), fig6_csv(&results)).unwrap();
        fs::write(format!("{dir}/fig8.csv"), fig8_csv(&results)).unwrap();
        eprintln!("CSVs written to {dir}/");
    }
}
