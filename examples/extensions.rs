//! The extension analyses beyond the paper's figures:
//!
//! - **change localization** (related work [24]: "change is local — 60–90% of
//!   changes refer to 20% of the tables"), measured over the corpus;
//! - **schema growth rates** (related work [10]: linear growth), with OLS
//!   fits per taxon;
//! - **impact analysis** (the paper's implications: find the code a schema
//!   change puts at risk), demonstrated on a worked micro-example;
//! - **query validation** (the paper's motivation: "an update in the
//!   structure might lead a query to be syntactically invalid"), checking
//!   embedded SQL against two schema versions.
//!
//! ```sh
//! cargo run --release --example extensions
//! ```

use coevo_corpus::{generate_corpus, CorpusSpec};
use coevo_ddl::{parse_schema, Dialect};
use coevo_diff::{change_localization, diff_schemas, schema_size_series, SchemaHistory};
use coevo_impact::{ImpactAnalyzer, ScanConfig};
use coevo_stats::{linear_fit, median};
use coevo_taxa::Taxon;
use std::collections::BTreeMap;

fn main() {
    let corpus = generate_corpus(&CorpusSpec::paper());

    // ---- localization ----------------------------------------------------
    let mut top20_by_taxon: BTreeMap<Taxon, Vec<f64>> = BTreeMap::new();
    let mut untouched_by_taxon: BTreeMap<Taxon, Vec<f64>> = BTreeMap::new();
    let mut slopes_by_taxon: BTreeMap<Taxon, Vec<f64>> = BTreeMap::new();

    for p in &corpus {
        let history = SchemaHistory::from_ddl_texts(
            p.raw.ddl_versions.iter().map(|(d, s)| (*d, s.as_str())),
            p.raw.dialect,
        )
        .unwrap()
        .unwrap();

        let loc = change_localization(&history);
        // Localization is only meaningful with post-birth change.
        if history.total_activity() > history.deltas()[0].breakdown.total() {
            top20_by_taxon.entry(p.raw.taxon).or_default().push(loc.top20_share);
            untouched_by_taxon.entry(p.raw.taxon).or_default().push(loc.untouched_fraction);
        }

        let series = schema_size_series(&history);
        if series.len() >= 3 {
            let xs: Vec<f64> = (0..series.len()).map(|i| i as f64).collect();
            let ys: Vec<f64> = series.iter().map(|pt| pt.attributes as f64).collect();
            if let Some(fit) = linear_fit(&xs, &ys) {
                slopes_by_taxon.entry(p.raw.taxon).or_default().push(fit.slope);
            }
        }
    }

    println!("change localization per taxon (median over projects with change):");
    println!("  {:<24} {:>16} {:>18}", "taxon", "top-20% share", "untouched tables");
    for taxon in Taxon::ALL {
        let top = top20_by_taxon.get(&taxon).and_then(|v| median(v));
        let unt = untouched_by_taxon.get(&taxon).and_then(|v| median(v));
        println!(
            "  {:<24} {:>15}% {:>17}%",
            taxon.name(),
            top.map(|v| format!("{:.0}", v * 100.0)).unwrap_or_else(|| "—".into()),
            unt.map(|v| format!("{:.0}", v * 100.0)).unwrap_or_else(|| "—".into()),
        );
    }

    println!("\nschema growth (median OLS slope, attributes/month):");
    for taxon in Taxon::ALL {
        let slope = slopes_by_taxon.get(&taxon).and_then(|v| median(v));
        println!(
            "  {:<24} {}",
            taxon.name(),
            slope.map(|v| format!("{v:+.3}")).unwrap_or_else(|| "—".into())
        );
    }

    // ---- impact analysis ---------------------------------------------------
    println!("\nimpact analysis — worked example:");
    let old = parse_schema(
        "CREATE TABLE invoices (id INT, total_price DECIMAL(10,2), currency CHAR(3));
         CREATE TABLE customers (id INT, full_name TEXT);",
        Dialect::Generic,
    )
    .unwrap();
    let new = parse_schema(
        "CREATE TABLE invoices (id INT, grand_total DECIMAL(12,2), currency CHAR(3));
         CREATE TABLE customers (id INT, full_name TEXT, vat_number TEXT);",
        Dialect::Generic,
    )
    .unwrap();
    let delta = diff_schemas(&old, &new);
    let sources = [
        (
            "src/billing.py",
            "q = 'SELECT total_price, currency FROM invoices'\nprint(row.total_price)",
        ),
        ("src/crm.py", "SELECT full_name FROM customers"),
        ("src/util.py", "def helper(): pass"),
    ];
    let analyzer = ImpactAnalyzer::new(&old, &ScanConfig::default());
    let report = analyzer.impact_of(&delta, &sources);
    let app_source = r#"
        q1 = "SELECT total_price, currency FROM invoices WHERE id = %s"
        q2 = "SELECT full_name FROM customers ORDER BY full_name"
        q3 = "UPDATE invoices SET total_price = %s WHERE id = %s"
    "#;
    println!(
        "  delta activity {} → {} file(s) at risk, {} breaking reference(s)",
        delta.total_activity(),
        report.files.len(),
        report.total_breaking()
    );
    for f in &report.files {
        for h in &f.hits {
            println!(
                "    {}: {}{} at lines {:?}",
                f.path,
                h.identifier,
                if h.breaking { " [BREAKING]" } else { " (new)" },
                h.lines
            );
        }
    }

    // ---- query validation ---------------------------------------------------
    println!("\nembedded-query validation (syntactic impact):");
    let embedded = coevo_query::extract_sql_strings(app_source);
    println!("  {} embedded queries found in app source", embedded.len());
    let sqls: Vec<&str> = embedded.iter().map(|e| e.sql.as_str()).collect();
    let broken = coevo_query::breaking_queries(&old, &new, &sqls);
    for b in &broken {
        println!("  BROKEN: {}", b.sql.trim());
        for issue in &b.issues {
            println!("    {:?}: {} (in {})", issue.kind, issue.name, issue.context);
        }
    }
    assert_eq!(broken.len(), 2, "total_price queries must break");
}
