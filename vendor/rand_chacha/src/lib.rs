//! Offline stand-in for `rand_chacha` providing [`ChaCha8Rng`].
//!
//! The stream layout matches rand_chacha 0.3 exactly: a 256-bit key from the
//! seed, a 64-bit block counter in state words 12–13, a 64-bit stream id in
//! words 14–15 (zero here), blocks generated four at a time into a 64-word
//! buffer, and `BlockRng`'s word-consumption rules for `next_u32`/`next_u64`
//! (including the buffer-straddling `u64` case). Together with the vendored
//! `rand` crate's PCG32 `seed_from_u64`, a given `u64` seed reproduces the
//! byte stream the workspace's corpus calibration was fixed against.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const BUF_WORDS: usize = 64; // four 16-word ChaCha blocks per refill

/// A ChaCha random number generator with 8 rounds.
#[derive(Clone)]
pub struct ChaCha8Rng {
    /// Key words 0..8 of the initial state (after the constants).
    key: [u32; 8],
    /// 64-bit block counter, incremented by 4 per refill.
    counter: u64,
    /// Output buffer: 4 ChaCha blocks.
    buf: [u32; BUF_WORDS],
    /// Next unread word in `buf`; `>= BUF_WORDS` means empty.
    index: usize,
}

impl std::fmt::Debug for ChaCha8Rng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ChaCha8Rng { .. }")
    }
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha8_block(key: &[u32; 8], counter: u64) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865; // "expa"
    state[1] = 0x3320_646e; // "nd 3"
    state[2] = 0x7962_2d32; // "2-by"
    state[3] = 0x6b20_6574; // "te k"
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = 0; // stream id low
    state[15] = 0; // stream id high
    let mut working = state;
    for _ in 0..4 {
        // 8 rounds = 4 double-rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    for i in 0..16 {
        working[i] = working[i].wrapping_add(state[i]);
    }
    working
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        for blk in 0..4 {
            let counter = self.counter.wrapping_add(blk as u64);
            let block = chacha8_block(&self.key, counter);
            self.buf[blk * 16..(blk + 1) * 16].copy_from_slice(&block);
        }
        self.counter = self.counter.wrapping_add(4);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self { key, counter: 0, buf: [0; BUF_WORDS], index: BUF_WORDS }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
            self.index = 0;
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        // BlockRng::next_u64 semantics from rand_core 0.6.
        let read_u64 = |buf: &[u32; BUF_WORDS], i: usize| {
            (buf[i] as u64) | ((buf[i + 1] as u64) << 32)
        };
        let len = BUF_WORDS;
        if self.index < len - 1 {
            let v = read_u64(&self.buf, self.index);
            self.index += 2;
            v
        } else if self.index >= len {
            self.refill();
            self.index = 2;
            read_u64(&self.buf, 0)
        } else {
            // index == len - 1: low half from the last word, high half from
            // the first word of the next buffer.
            let x = self.buf[len - 1] as u64;
            self.refill();
            self.index = 1;
            ((self.buf[0] as u64) << 32) | x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(0x5EED_2019);
        let mut b = ChaCha8Rng::seed_from_u64(0x5EED_2019);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(0x5EED_2020);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn block_function_is_pure() {
        // The same counter yields the same block; successive counters differ.
        let key = [7u32; 8];
        assert_eq!(chacha8_block(&key, 0), chacha8_block(&key, 0));
        assert_ne!(chacha8_block(&key, 0), chacha8_block(&key, 1));
    }

    #[test]
    fn straddle_consistency() {
        // Drawing u64s from an odd u32 offset exercises the straddle path;
        // the combined stream must equal the plain u32 stream reinterpreted.
        let mut words = ChaCha8Rng::seed_from_u64(99);
        let mut stream: Vec<u32> = (0..BUF_WORDS * 2 + 4).map(|_| words.next_u32()).collect();

        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let _ = rng.next_u32(); // offset by one word
        stream.remove(0);
        // 63 words remain in the first buffer; the next 31 u64 draws consume
        // 62 of them, leaving index == 63 → straddle on the following draw.
        for i in 0..32 {
            let expect = (stream[2 * i] as u64) | ((stream[2 * i + 1] as u64) << 32);
            assert_eq!(rng.next_u64(), expect, "draw {i}");
        }
    }
}
