//! Offline stand-in for `serde`.
//!
//! The build environment cannot fetch crates, so this crate provides the
//! (de)serialization machinery the workspace needs under the same names:
//! `Serialize` / `Deserialize` traits plus `#[derive(Serialize, Deserialize)]`
//! via the companion `serde_derive` proc-macro. Instead of serde's
//! visitor-based zero-copy design, everything round-trips through an owned
//! [`Value`] tree; `serde_json` renders and parses that tree. The observable
//! JSON matches what real serde_json produced for this workspace's types:
//! structs as objects in field order, enums externally tagged, `Option` as
//! the value or `null`, tuples as arrays.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed (de)serialization tree, order-preserving for objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (negative numbers land here).
    Int(i64),
    /// An unsigned integer (non-negative numbers land here).
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A (de)serialization error: a plain message.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Build an error from a message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types renderable to a [`Value`] tree.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_error(expected: &str, got: &Value) -> Error {
    let got = match got {
        Value::Null => "null",
        Value::Bool(_) => "a bool",
        Value::Int(_) | Value::UInt(_) => "an integer",
        Value::Float(_) => "a float",
        Value::Str(_) => "a string",
        Value::Array(_) => "an array",
        Value::Object(_) => "an object",
    };
    Error::custom(format!("expected {expected}, got {got}"))
}

// ---- primitive impls -------------------------------------------------------

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: u64 = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    _ => return Err(type_error("an unsigned integer", v)),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) => {
                        i64::try_from(n).map_err(|_| type_error("a signed integer", v))?
                    }
                    _ => return Err(type_error("a signed integer", v)),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Float(x) => Ok(x),
            Value::Int(n) => Ok(n as f64),
            Value::UInt(n) => Ok(n as f64),
            _ => Err(type_error("a number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(type_error("a bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(type_error("a string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(type_error("a one-character string", v)),
        }
    }
}

// ---- container impls -------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(type_error("an array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

// Mirrors real serde's `rc` feature: shared pointers serialize as their
// contents (sharing is not preserved across a round trip — each deserialized
// `Arc`/`Rc` is a fresh allocation).
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::rc::Rc::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(type_error("a two-element array", v)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err(type_error("a three-element array", v)),
        }
    }
}

// ---- support for derive-generated code ------------------------------------
//
// The derive macro emits calls to these helpers; they are `#[doc(hidden)]`
// implementation details, not public API.

/// View a value as an object's field list, or fail naming the target type.
#[doc(hidden)]
pub fn __object<'a>(v: &'a Value, type_name: &str) -> Result<&'a [(String, Value)], Error> {
    match v {
        Value::Object(fields) => Ok(fields),
        _ => Err(Error::custom(format!("expected an object for {type_name}"))),
    }
}

/// Deserialize a named field. A missing field is mapped to `Null` first so
/// `Option` fields absent from the input become `None`, as with real serde.
#[doc(hidden)]
pub fn __field<T: Deserialize>(
    fields: &[(String, Value)],
    name: &str,
    type_name: &str,
) -> Result<T, Error> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v)
            .map_err(|e| Error::custom(format!("field {type_name}.{name}: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::custom(format!("missing field {type_name}.{name}"))),
    }
}

/// Deserialize a `#[serde(default)]` field: absent means `Default::default()`.
#[doc(hidden)]
pub fn __field_default<T: Deserialize + Default>(
    fields: &[(String, Value)],
    name: &str,
    type_name: &str,
) -> Result<T, Error> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v)
            .map_err(|e| Error::custom(format!("field {type_name}.{name}: {e}"))),
        None => Ok(T::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arc_serializes_as_contents() {
        let v = std::sync::Arc::new(3u32).to_value();
        assert_eq!(v, Value::UInt(3));
        let back = <std::sync::Arc<u32>>::from_value(&v).unwrap();
        assert_eq!(*back, 3);
    }

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), Value::UInt(3));
    }

    #[test]
    fn integer_coercions() {
        assert_eq!(u8::from_value(&Value::Int(7)).unwrap(), 7);
        assert!(u8::from_value(&Value::Int(-1)).is_err());
        assert!(u8::from_value(&Value::UInt(256)).is_err());
        assert_eq!(i32::from_value(&Value::UInt(9)).unwrap(), 9);
        assert_eq!(f64::from_value(&Value::UInt(9)).unwrap(), 9.0);
    }

    #[test]
    fn missing_field_semantics() {
        let fields = vec![("a".to_string(), Value::UInt(1))];
        let a: u32 = __field(&fields, "a", "T").unwrap();
        assert_eq!(a, 1);
        let b: Option<u32> = __field(&fields, "b", "T").unwrap();
        assert_eq!(b, None);
        assert!(__field::<u32>(&fields, "b", "T").is_err());
        let c: u32 = __field_default(&fields, "c", "T").unwrap();
        assert_eq!(c, 0);
    }
}
