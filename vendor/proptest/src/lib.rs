//! Offline stand-in for `proptest`.
//!
//! Implements the property-testing subset this workspace uses — the
//! [`Strategy`] trait with `prop_map`/`prop_filter`, integer/float range and
//! regex-string strategies, `prop::collection::{vec, btree_map}`, tuples,
//! [`Just`], `any::<bool>()`, and the `proptest!`/`prop_compose!`/
//! `prop_oneof!`/`prop_assert*`/`prop_assume!` macros — without shrinking.
//! Case generation is fully deterministic: each test derives its RNG from
//! the test name and case index, so failures reproduce across runs. Failed
//! cases report the `Debug` form of every generated input.

use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Runner configuration (`ProptestConfig` in real proptest).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Panic payload used by `prop_assume!` to discard the current case.
pub struct Rejected;

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`; `whence` names the filter in the
    /// exhaustion panic.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, pred }
    }

    /// Erase the concrete strategy type (used by `prop_oneof!`).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 consecutive values", self.whence);
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct Union<V> {
    alts: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V: Debug> Union<V> {
    /// Build from a non-empty alternative list.
    pub fn new(alts: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!alts.is_empty(), "prop_oneof! needs at least one alternative");
        Self { alts }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0..self.alts.len());
        self.alts[idx].generate(rng)
    }
}

// ---- ranges ----------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ---- any ------------------------------------------------------------------

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---- tuples ----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9)
}

// ---- collections -----------------------------------------------------------

/// A collection size: fixed or drawn from a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.max_exclusive <= self.min + 1 {
            self.min
        } else {
            rng.gen_range(self.min..self.max_exclusive)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max_exclusive: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self { min: r.start, max_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self { min: *r.start(), max_exclusive: r.end() + 1 }
    }
}

/// Collection strategies (`prop::collection` in real proptest).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Generate maps with `size` entries (duplicate keys are retried a
    /// bounded number of times, so the result can end up smaller when the
    /// key space is tight).
    pub fn btree_map<K, V>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0;
            while out.len() < n && attempts < n * 20 + 20 {
                let k = self.key.generate(rng);
                let v = self.value.generate(rng);
                out.insert(k, v);
                attempts += 1;
            }
            out
        }
    }
}

// ---- regex string strategies -----------------------------------------------

mod regex;

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

// ---- runner ----------------------------------------------------------------

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};

thread_local! {
    static IN_CASE: Cell<bool> = const { Cell::new(false) };
}

fn install_quiet_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Panics inside a property case are caught and re-reported by
            // the runner with the generated inputs attached; printing them
            // here would flood the output.
            if !IN_CASE.with(|c| c.get()) {
                previous(info);
            }
        }));
    });
}

fn rng_for(name: &str, case: u32, rejections: u32) -> TestRng {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut h);
    let seed = h.finish() ^ (case as u64) ^ ((rejections as u64) << 32);
    TestRng::seed_from_u64(seed)
}

/// Execute `config.cases` cases of a property. Called by the `proptest!`
/// macro expansion; not part of the public proptest API.
#[doc(hidden)]
pub fn run_cases<S: Strategy>(
    config: &ProptestConfig,
    name: &str,
    strategies: S,
    test: impl Fn(S::Value),
) {
    install_quiet_hook();
    let mut rejections: u32 = 0;
    let max_rejections = config.cases.saturating_mul(64).max(1024);
    let mut case: u32 = 0;
    while case < config.cases {
        let mut rng = rng_for(name, case, rejections);
        let values = strategies.generate(&mut rng);
        let described = format!("{values:?}");
        IN_CASE.with(|c| c.set(true));
        let outcome = catch_unwind(AssertUnwindSafe(|| test(values)));
        IN_CASE.with(|c| c.set(false));
        match outcome {
            Ok(()) => case += 1,
            Err(payload) if payload.is::<Rejected>() => {
                rejections += 1;
                assert!(
                    rejections <= max_rejections,
                    "{name}: gave up after {rejections} prop_assume! rejections"
                );
            }
            Err(payload) => {
                let message = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&'static str>().copied())
                    .unwrap_or("<non-string panic>");
                panic!(
                    "property {name} failed at case {case}: {message}\n\
                     input: {described}"
                );
            }
        }
    }
}

// ---- macros ----------------------------------------------------------------

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])+ fn $name:ident( $($pat:pat_param in $strategy:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __strategies = ($($strategy,)*);
                $crate::run_cases(&__config, stringify!($name), __strategies, |__values| {
                    let ($($pat,)*) = __values;
                    $body
                });
            }
        )*
    };
}

/// Define a composite strategy function:
/// `fn name(outer args)(pat in strategy, ...) -> Type { body }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($oarg:ident: $oty:ty),* $(,)?)
                 ($($pat:pat_param in $strategy:expr),* $(,)?)
                 -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($oarg: $oty),*) -> impl $crate::Strategy<Value = $out> {
            $crate::Strategy::prop_map(($($strategy,)*), move |($($pat,)*)| -> $out { $body })
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert inside a property (reported with the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Discard the current case (retried without counting) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            ::std::panic::panic_any($crate::Rejected);
        }
    };
}

/// The `proptest::prelude` import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_compose, prop_oneof, proptest,
        Just, ProptestConfig, Strategy,
    };

    /// Nested module alias (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = crate::rng_for("t", 0, 0);
        let s = (1u8..5, 0.0f64..1.0, crate::Just("x"));
        for _ in 0..100 {
            let (a, b, c) = crate::Strategy::generate(&s, &mut rng);
            assert!((1..5).contains(&a));
            assert!((0.0..1.0).contains(&b));
            assert_eq!(c, "x");
        }
    }

    #[test]
    fn vec_sizes_respected() {
        let mut rng = crate::rng_for("v", 1, 0);
        let s = prop::collection::vec(0u32..10, 2..6);
        for _ in 0..50 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!((2..6).contains(&v.len()));
        }
        let fixed = prop::collection::vec(0u32..10, 3usize);
        assert_eq!(crate::Strategy::generate(&fixed, &mut rng).len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn self_test_filters_and_maps(
            n in (0u32..100).prop_filter("even", |n| n % 2 == 0),
            s in "[a-c]{2,4}",
        ) {
            prop_assert!(n % 2 == 0);
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn self_test_assume(n in 0u32..10) {
            prop_assume!(n > 0);
            prop_assert!(n > 0);
        }
    }

    prop_compose! {
        fn pair()(a in 0u32..5, mut v in prop::collection::vec(0u32..3, 1..4)) -> (u32, Vec<u32>) {
            v.push(a);
            (a, v)
        }
    }

    proptest! {
        #[test]
        fn self_test_compose((a, v) in pair()) {
            prop_assert_eq!(*v.last().unwrap(), a);
            prop_assert!(v.len() >= 2);
        }
    }
}
