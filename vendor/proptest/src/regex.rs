//! String generation from the regex subset the workspace's property tests
//! use: literals, escapes, character classes with ranges, groups with
//! alternation, `\PC` (any printable character), and `{n}` / `{n,m}` /
//! `?` / `*` / `+` quantifiers.

use crate::TestRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Atom {
    Lit(char),
    /// Inclusive character ranges.
    Class(Vec<(char, char)>),
    /// Alternative sub-sequences.
    Group(Vec<Vec<Quantified>>),
    /// `\PC`: any printable (non-control) character.
    NonControl,
}

#[derive(Debug, Clone)]
struct Quantified {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let seq = parse_seq(&chars, &mut pos, pattern);
    assert!(pos == chars.len(), "unsupported regex {pattern:?}: trailing input at {pos}");
    let mut out = String::new();
    emit_seq(&seq, rng, &mut out);
    out
}

fn parse_seq(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<Quantified> {
    let mut seq = Vec::new();
    while *pos < chars.len() {
        if chars[*pos] == '|' || chars[*pos] == ')' {
            break;
        }
        let atom = parse_atom(chars, pos, pattern);
        let (min, max) = parse_quantifier(chars, pos, pattern);
        seq.push(Quantified { atom, min, max });
    }
    seq
}

fn parse_atom(chars: &[char], pos: &mut usize, pattern: &str) -> Atom {
    match chars[*pos] {
        '[' => {
            *pos += 1;
            Atom::Class(parse_class(chars, pos, pattern))
        }
        '(' => {
            *pos += 1;
            let mut alternatives = vec![parse_seq(chars, pos, pattern)];
            while *pos < chars.len() && chars[*pos] == '|' {
                *pos += 1;
                alternatives.push(parse_seq(chars, pos, pattern));
            }
            assert!(
                *pos < chars.len() && chars[*pos] == ')',
                "unsupported regex {pattern:?}: unterminated group"
            );
            *pos += 1;
            Atom::Group(alternatives)
        }
        '\\' => {
            *pos += 1;
            let c = *chars.get(*pos).unwrap_or_else(|| {
                panic!("unsupported regex {pattern:?}: trailing backslash")
            });
            *pos += 1;
            match c {
                'P' => {
                    // Only the \PC (non-control) category is supported.
                    assert!(
                        chars.get(*pos) == Some(&'C'),
                        "unsupported regex {pattern:?}: only \\PC is implemented"
                    );
                    *pos += 1;
                    Atom::NonControl
                }
                'n' => Atom::Lit('\n'),
                't' => Atom::Lit('\t'),
                'r' => Atom::Lit('\r'),
                other => Atom::Lit(other),
            }
        }
        c if "?*+{}".contains(c) => {
            panic!("unsupported regex {pattern:?}: dangling quantifier at {}", *pos)
        }
        c => {
            *pos += 1;
            Atom::Lit(c)
        }
    }
}

fn parse_class(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = *chars.get(*pos).unwrap_or_else(|| {
            panic!("unsupported regex {pattern:?}: unterminated class")
        });
        *pos += 1;
        match c {
            ']' => {
                if let Some(p) = pending {
                    ranges.push((p, p));
                }
                assert!(!ranges.is_empty(), "unsupported regex {pattern:?}: empty class");
                return ranges;
            }
            '-' if pending.is_some() && chars.get(*pos) != Some(&']') => {
                // A range: low is pending, high is next char.
                let low = pending.take().unwrap();
                let mut high = chars[*pos];
                *pos += 1;
                if high == '\\' {
                    high = unescape_class_char(chars, pos, pattern);
                }
                assert!(low <= high, "unsupported regex {pattern:?}: inverted range");
                ranges.push((low, high));
            }
            '\\' => {
                if let Some(p) = pending.replace(unescape_class_char(chars, pos, pattern)) {
                    ranges.push((p, p));
                }
            }
            c => {
                if let Some(p) = pending.replace(c) {
                    ranges.push((p, p));
                }
            }
        }
    }
}

fn unescape_class_char(chars: &[char], pos: &mut usize, pattern: &str) -> char {
    let c = *chars.get(*pos).unwrap_or_else(|| {
        panic!("unsupported regex {pattern:?}: trailing backslash in class")
    });
    *pos += 1;
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn parse_quantifier(chars: &[char], pos: &mut usize, pattern: &str) -> (u32, u32) {
    match chars.get(*pos) {
        Some('?') => {
            *pos += 1;
            (0, 1)
        }
        Some('*') => {
            *pos += 1;
            (0, 8)
        }
        Some('+') => {
            *pos += 1;
            (1, 8)
        }
        Some('{') => {
            *pos += 1;
            let mut min = String::new();
            while chars[*pos].is_ascii_digit() {
                min.push(chars[*pos]);
                *pos += 1;
            }
            let min: u32 = min.parse().expect("quantifier minimum");
            let max = match chars[*pos] {
                '}' => min,
                ',' => {
                    *pos += 1;
                    let mut max = String::new();
                    while chars[*pos].is_ascii_digit() {
                        max.push(chars[*pos]);
                        *pos += 1;
                    }
                    max.parse().expect("quantifier maximum")
                }
                _ => panic!("unsupported regex {pattern:?}: malformed quantifier"),
            };
            assert!(chars[*pos] == '}', "unsupported regex {pattern:?}: malformed quantifier");
            *pos += 1;
            (min, max)
        }
        _ => (1, 1),
    }
}

fn emit_seq(seq: &[Quantified], rng: &mut TestRng, out: &mut String) {
    for q in seq {
        let count = if q.max > q.min { rng.gen_range(q.min..=q.max) } else { q.min };
        for _ in 0..count {
            emit_atom(&q.atom, rng, out);
        }
    }
}

/// A sprinkle of multi-byte printable characters so `\PC` fuzzing exercises
/// non-ASCII paths.
const WIDE: [char; 8] = ['é', 'ß', 'λ', 'Ω', '中', '✓', '—', '😀'];

fn emit_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
    match atom {
        Atom::Lit(c) => out.push(*c),
        Atom::Class(ranges) => {
            let total: u32 = ranges.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
            let mut pick = rng.gen_range(0..total);
            for (lo, hi) in ranges {
                let size = *hi as u32 - *lo as u32 + 1;
                if pick < size {
                    out.push(char::from_u32(*lo as u32 + pick).expect("valid class char"));
                    return;
                }
                pick -= size;
            }
            unreachable!("class pick out of bounds");
        }
        Atom::Group(alternatives) => {
            let idx = rng.gen_range(0..alternatives.len());
            emit_seq(&alternatives[idx], rng, out);
        }
        Atom::NonControl => {
            if rng.gen_bool(0.08) {
                out.push(WIDE[rng.gen_range(0..WIDE.len())]);
            } else {
                out.push(char::from(rng.gen_range(0x20u8..=0x7E)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(42)
    }

    #[test]
    fn identifier_pattern() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate("[a-z][a-z0-9_]{0,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn path_pattern_with_group() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = generate("[a-z]{1,8}/[a-z]{1,8}\\.(js|py|rb|sql|md)", &mut rng);
            let (stem, ext) = s.rsplit_once('.').unwrap();
            assert!(["js", "py", "rb", "sql", "md"].contains(&ext), "{s:?}");
            assert!(stem.contains('/'));
        }
    }

    #[test]
    fn class_with_trailing_dash_and_punct() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate("[a-zA-Z0-9 ,.:;#_-]{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(
                s.chars().all(|c| c.is_ascii_alphanumeric() || " ,.:;#_-".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn printable_pattern() {
        let mut rng = rng();
        for _ in 0..50 {
            let s = generate("\\PC{0,400}", &mut rng);
            assert!(s.chars().count() <= 400);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn exact_count_quantifier() {
        let mut rng = rng();
        let s = generate("[a-f]{3}", &mut rng);
        assert_eq!(s.len(), 3);
    }
}
