//! Offline stand-in for the `crossbeam` umbrella crate.
//!
//! Provides the three facilities the workspace uses with crossbeam-0.8
//! signatures, implemented over `std` primitives (the environment cannot
//! fetch crates):
//!
//! - [`thread::scope`] — scoped threads returning `Err` on child panic,
//!   layered over `std::thread::scope`;
//! - [`deque`] — a FIFO work-stealing deque (`Worker`/`Stealer`/`Steal`),
//!   lock-based rather than lock-free but with the same API and semantics;
//! - [`channel`] — bounded MPMC channels with blocking `send`/`recv` and
//!   disconnect-on-drop, built from a mutex-guarded ring and condvars.

#![warn(missing_docs)]

/// Scoped threads with crossbeam's panic-capturing result signature.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The result of a scope: `Err` when any spawned thread panicked.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A handle for spawning scoped threads, passed to the [`scope`] closure
    /// and to every spawned thread.
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// A handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope itself so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined before
    /// returning. A panicking child turns into `Err` (crossbeam semantics)
    /// rather than resuming the panic (std semantics).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

/// A FIFO work-stealing deque with crossbeam-deque's API.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// The owner side of a deque.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    /// A handle other threads use to steal from a [`Worker`].
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Self { inner: Arc::clone(&self.inner) }
        }
    }

    /// The outcome of a steal attempt.
    pub enum Steal<T> {
        /// The deque was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// Lost a race; try again.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether this is [`Steal::Empty`].
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    impl<T> Worker<T> {
        /// Create a FIFO deque (tasks pop in push order).
        pub fn new_fifo() -> Self {
            Self { inner: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// Push a task.
        pub fn push(&self, task: T) {
            self.inner.lock().unwrap().push_back(task);
        }

        /// Pop the next task (FIFO order).
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap().pop_front()
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }

        /// Create a stealer handle.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Stealer<T> {
        /// Attempt to steal one task. The lock-based implementation never
        /// loses a race, so [`Steal::Retry`] is not produced — but callers
        /// written against crossbeam must still handle it.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }
}

/// Bounded MPMC channels with crossbeam-channel's core API.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        capacity: usize,
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error on [`Sender::send`]: all receivers are gone; the unsent value
    /// is returned inside.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error on [`Receiver::recv`]: the channel is empty and all senders are
    /// gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half; clone freely.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; clone freely.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Create a bounded channel. `send` blocks while `capacity` messages are
    /// in flight. A capacity of zero is rounded up to one (this stand-in has
    /// no rendezvous mode).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            capacity: capacity.max(1),
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Self { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                // Wake receivers blocked on an empty queue so they observe
                // the disconnect.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Self { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while the channel is full. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.queue.len() < self.inner.capacity {
                    state.queue.push_back(value);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                state = self.inner.not_full.wait(state).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receive a message, blocking while the channel is empty. Fails
        /// only when the channel is drained and every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.not_empty.wait(state).unwrap();
            }
        }

        /// A blocking iterator over received messages; ends on disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<'a, T> Iterator for Iter<'a, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_and_reports_panics() {
        let mut data = vec![0u32; 8];
        thread::scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u32 * 2);
            }
        })
        .unwrap();
        assert_eq!(data, vec![0, 2, 4, 6, 8, 10, 12, 14]);

        let r = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn deque_fifo_and_steal() {
        let w = deque::Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(s.steal().success(), Some(2));
        assert_eq!(w.pop(), Some(3));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn channel_bounded_mpmc() {
        let (tx, rx) = channel::bounded::<u32>(2);
        let tx2 = tx.clone();
        let collected = thread::scope(|s| {
            let h = s.spawn(move |_| {
                let mut got: Vec<u32> = rx.iter().collect();
                got.sort_unstable();
                got
            });
            s.spawn(move |_| {
                for i in 0..50 {
                    tx.send(i).unwrap();
                }
            });
            s.spawn(move |_| {
                for i in 50..100 {
                    tx2.send(i).unwrap();
                }
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(collected, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
