//! Offline stand-in for `serde_json`: renders and parses JSON through the
//! vendored `serde` crate's [`Value`](serde::Value) tree.
//!
//! Matches real serde_json's observable output for this workspace's types:
//! objects in declaration order, floats printed with Rust's shortest
//! round-trip formatting (always containing a `.` or exponent so they parse
//! back as floats), non-finite floats rendered as `null`, strings with
//! standard JSON escapes, and a two-space pretty printer.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};

/// A JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.message())
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize a value to pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

// ---- writer ----------------------------------------------------------------

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => write_seq(items.iter(), indent, depth, out, '[', ']', |item, d, o| {
            write_value(item, indent, d, o)
        }),
        Value::Object(fields) => {
            write_seq(fields.iter(), indent, depth, out, '{', '}', |(k, fv), d, o| {
                write_string(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(fv, indent, d, o);
            })
        }
    }
}

fn write_seq<I, F>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, usize, &mut String),
{
    out.push(open);
    let len = items.len();
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(item, depth + 1, out);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_float(x: f64, out: &mut String) {
    if !x.is_finite() {
        // Real serde_json emits null for NaN/±Inf.
        out.push_str("null");
        return;
    }
    // `{:?}` is Rust's shortest round-trip form and always contains a '.' or
    // exponent for non-integral magnitudes; whole floats come out as "1.0".
    out.push_str(&format!("{x:?}"));
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unexpected end of input in escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a \uXXXX low half must follow.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        b => {
                            return Err(Error::new(format!(
                                "invalid escape \\{} at byte {}",
                                b as char, self.pos
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Negative integer.
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Value::Int)
                .ok_or_else(|| Error::new(format!("invalid number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        let x: f64 = from_str("2.0").unwrap();
        assert_eq!(x, 2.0);
        let n: i64 = from_str("-7").unwrap();
        assert_eq!(n, -7);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let json = to_string(&v).unwrap();
        assert_eq!(json, r#"[[1,"a"],[2,"b"]]"#);
        let back: Vec<(u32, String)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str(r#""aé😀b""#).unwrap();
        assert_eq!(s, "aé😀b");
    }

    #[test]
    fn pretty_printer_indents() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<u32> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u32>("[1").is_err());
        assert!(from_str::<u32>("1 x").is_err());
        assert!(from_str::<bool>("7").is_err());
    }
}
