//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no pre-fetched registry,
//! so the real `rand` cannot be resolved. This crate reimplements exactly
//! the slice of the 0.8 API the workspace uses — [`RngCore`],
//! [`SeedableRng`], and the [`Rng`] extension trait with `gen`,
//! `gen_range`, and `gen_bool` — with the *same sampling algorithms* as
//! rand 0.8.5 (PCG32-based `seed_from_u64`, widening-multiply rejection for
//! integer ranges, `[1, 2)` mantissa scaling for float ranges, and the
//! 2⁻⁶⁴ fixed-point Bernoulli), so a given seed reproduces the streams the
//! corpus generator was calibrated with.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw 32/64-bit output.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed array type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with the PCG32 output function
    /// exactly as `rand_core` 0.6 does.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(4) {
            chunk.copy_from_slice(&pcg32(&mut state));
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from the "whole type" distribution
/// (rand's `Standard`).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
              usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
              i64 => next_u64, isize => next_u64);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Sign test on the most significant bit, as in rand 0.8.
        (rng.next_u32() as i32) < 0
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform range sampler (rand's `SampleUniform`).
pub trait SampleUniform: Sized {
    /// Sample from `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Sample from `[low, high]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R)
        -> Self;
}

// Integer uniform sampling: widening multiply + rejection zone, matching
// rand 0.8.5 (`UniformInt::sample_single`). `$large` is the sampling width
// (u32 for sub-word types, u64 for word types).
macro_rules! uniform_int {
    ($($t:ty, $unsigned:ty, $large:ty, $wide:ty);*) => {$(
        impl SampleUniform for $t {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                let range = high.wrapping_sub(low) as $unsigned as $large;
                let zone = if (<$unsigned>::MAX as u64) <= u16::MAX as u64 {
                    let ints_to_reject = (<$large>::MAX - range + 1) % range;
                    <$large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $large = <$large as StandardSample>::standard_sample(rng);
                    let product = (v as $wide) * (range as $wide);
                    let hi = (product >> <$large>::BITS) as $large;
                    let lo = product as $large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $t);
                    }
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let range = high.wrapping_sub(low) as $unsigned as $large;
                let range = range.wrapping_add(1);
                if range == 0 {
                    // The full type range: every raw draw is valid.
                    return <$t as StandardSample>::standard_sample(rng);
                }
                let zone = if (<$unsigned>::MAX as u64) <= u16::MAX as u64 {
                    let ints_to_reject = (<$large>::MAX - range + 1) % range;
                    <$large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $large = <$large as StandardSample>::standard_sample(rng);
                    let product = (v as $wide) * (range as $wide);
                    let hi = (product >> <$large>::BITS) as $large;
                    let lo = product as $large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}

uniform_int!(
    u8, u8, u32, u64;
    i8, u8, u32, u64;
    u16, u16, u32, u64;
    i16, u16, u32, u64;
    u32, u32, u32, u64;
    i32, u32, u32, u64;
    u64, u64, u64, u128;
    i64, u64, u64, u128;
    usize, usize, u64, u128;
    isize, usize, u64, u128
);

// Float uniform sampling via the [1, 2) mantissa trick, as rand 0.8.5.
macro_rules! uniform_float {
    ($($t:ty, $bits:ty, $discard:expr, $exp_one:expr);*) => {$(
        impl SampleUniform for $t {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                let mut scale = high - low;
                loop {
                    // A value in [1, 2): random mantissa, exponent 0.
                    let bits = <$bits as StandardSample>::standard_sample(rng);
                    let value1_2 = <$t>::from_bits((bits >> $discard) | $exp_one);
                    // Map to [low, high).
                    let res = value1_2 * scale - (scale - low);
                    if res < high {
                        return res;
                    }
                    // Pathological rounding: shrink the scale and retry.
                    scale = <$t>::from_bits(scale.to_bits() - 1);
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range");
                // Largest value1_2 is (2 - ε); dividing by (max − 1) lets the
                // top draw land exactly on `high`.
                let max_rand = <$t>::from_bits((<$bits>::MAX >> $discard) | $exp_one);
                let scale = (high - low) / (max_rand - 1.0);
                loop {
                    let bits = <$bits as StandardSample>::standard_sample(rng);
                    let value1_2 = <$t>::from_bits((bits >> $discard) | $exp_one);
                    let res = value1_2 * scale - (scale - low);
                    if res <= high {
                        return res;
                    }
                }
            }
        }
    )*};
}

uniform_float!(
    f64, u64, 12u32, 0x3FF0_0000_0000_0000u64;
    f32, u32, 9u32, 0x3F80_0000u32
);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Extension methods over any [`RngCore`], mirroring rand's `Rng`.
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    ///
    /// Uses rand 0.8's fixed-point Bernoulli: compare 64 random bits
    /// against `p · 2⁶⁴`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside [0, 1]");
        if p == 1.0 {
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::prelude` stand-in.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            (self.0 >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let hi = self.next_u32() as u64;
            let lo = self.next_u32() as u64;
            (hi << 32) | lo
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..2000 {
            let v = rng.gen_range(3..17u8);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(2008..=2016);
            assert!((2008..=2016).contains(&v));
            let v = rng.gen_range(0..5usize);
            assert!(v < 5);
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let f = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let heads = (0..4000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((1400..=2600).contains(&heads), "{heads}");
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
