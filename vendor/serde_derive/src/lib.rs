//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses — structs with named fields, unit
//! structs, and enums with unit / newtype / struct variants — by walking the
//! raw token stream directly (the environment has no `syn`/`quote`) and
//! emitting impls of the vendored `serde` crate's value-tree traits.
//! Supported field attributes: `#[serde(default)]` and
//! `#[serde(skip_serializing_if = "path")]`. Anything outside this subset
//! (generics, tuple structs, other attributes) panics at compile time so a
//! mismatch is loud, not silently wrong.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
    skip_if: Option<String>,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Body {
    Struct(Vec<Field>),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    body: Body,
}

/// Derive the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input).parse().expect("generated Serialize impl parses")
}

/// Derive the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input).parse().expect("generated Deserialize impl parses")
}

// ---- parsing ---------------------------------------------------------------

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Collected `#[serde(...)]` metadata for one field.
#[derive(Default)]
struct SerdeAttrs {
    default: bool,
    skip_if: Option<String>,
}

/// Consume leading attributes at `tokens[*i..]`, folding any `#[serde(...)]`
/// contents into the returned attrs.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while *i < tokens.len() && is_punct(&tokens[*i], '#') {
        *i += 1;
        let TokenTree::Group(g) = &tokens[*i] else {
            panic!("expected [...] after # in attribute");
        };
        assert_eq!(g.delimiter(), Delimiter::Bracket, "expected [...] after #");
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if !inner.is_empty() && is_ident(&inner[0], "serde") {
            let TokenTree::Group(metas) = &inner[1] else {
                panic!("expected #[serde(...)]");
            };
            parse_serde_metas(&metas.stream().into_iter().collect::<Vec<_>>(), &mut attrs);
        }
        *i += 1;
    }
    attrs
}

fn parse_serde_metas(tokens: &[TokenTree], attrs: &mut SerdeAttrs) {
    let mut i = 0;
    while i < tokens.len() {
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("expected meta name in #[serde(...)], got {:?}", tokens[i].to_string());
        };
        let name = name.to_string();
        i += 1;
        match name.as_str() {
            "default" => attrs.default = true,
            "skip_serializing_if" => {
                assert!(
                    i + 1 < tokens.len() && is_punct(&tokens[i], '='),
                    "skip_serializing_if takes = \"path\""
                );
                let lit = tokens[i + 1].to_string();
                let path = lit.trim_matches('"').to_string();
                attrs.skip_if = Some(path);
                i += 2;
            }
            other => panic!("unsupported serde attribute: {other}"),
        }
        if i < tokens.len() {
            assert!(is_punct(&tokens[i], ','), "expected , between serde metas");
            i += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if *i < tokens.len() && is_ident(&tokens[*i], "pub") {
        *i += 1;
        if *i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[*i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1; // pub(crate) / pub(super)
                }
            }
        }
    }
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let is_struct = if is_ident(&tokens[i], "struct") {
        true
    } else if is_ident(&tokens[i], "enum") {
        false
    } else {
        panic!("expected struct or enum, got {:?}", tokens[i].to_string());
    };
    i += 1;

    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("expected type name");
    };
    let name = name.to_string();
    i += 1;

    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("generic types are not supported by the vendored serde_derive");
    }

    let body = if is_struct {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(parse_fields(&g.stream().into_iter().collect::<Vec<_>>()))
            }
            _ => panic!("only named-field and unit structs are supported"),
        }
    } else {
        let Some(TokenTree::Group(g)) = tokens.get(i) else {
            panic!("expected enum body");
        };
        Body::Enum(parse_variants(&g.stream().into_iter().collect::<Vec<_>>()))
    };

    Input { name, body }
}

fn parse_fields(tokens: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = skip_attributes(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(tokens, &mut i);
        let TokenTree::Ident(fname) = &tokens[i] else {
            panic!("expected field name, got {:?}", tokens[i].to_string());
        };
        let name = fname.to_string();
        i += 1;
        assert!(is_punct(&tokens[i], ':'), "expected : after field name {name}");
        i += 1;
        // Skip the type: consume until a comma at angle-bracket depth zero.
        // Groups are atomic token trees, so commas inside `(A, B)` or
        // `[T; N]` are invisible here; only `<...>` needs depth tracking.
        let mut depth = 0i32;
        while i < tokens.len() {
            if is_punct(&tokens[i], '<') {
                depth += 1;
            } else if is_punct(&tokens[i], '>') {
                depth -= 1;
            } else if is_punct(&tokens[i], ',') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
        fields.push(Field { name, default: attrs.default, skip_if: attrs.skip_if });
    }
    fields
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(vname) = &tokens[i] else {
            panic!("expected variant name, got {:?}", tokens[i].to_string());
        };
        let name = vname.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let top_commas = {
                    let mut depth = 0i32;
                    let mut commas = 0usize;
                    for t in &inner {
                        if is_punct(t, '<') {
                            depth += 1;
                        } else if is_punct(t, '>') {
                            depth -= 1;
                        } else if is_punct(t, ',') && depth == 0 {
                            commas += 1;
                        }
                    }
                    commas
                };
                assert_eq!(top_commas, 0, "only newtype tuple variants are supported ({name})");
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_fields(&g.stream().into_iter().collect::<Vec<_>>()))
            }
            _ => VariantKind::Unit,
        };
        if i < tokens.len() {
            assert!(
                is_punct(&tokens[i], ','),
                "expected , after variant {name} (discriminants are not supported)"
            );
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---- code generation -------------------------------------------------------

const IMPL_ATTRS: &str =
    "#[automatically_derived]\n#[allow(unused_mut, unused_variables, clippy::all)]\n";

/// Emit the statements serializing `fields` (accessed via `access`, e.g.
/// `&self.` or `` for pattern bindings) into a local `__fields` vector.
fn gen_fields_to_object(fields: &[Field], access: &str, out: &mut String) {
    out.push_str("let mut __fields: Vec<(String, serde::Value)> = Vec::new();\n");
    for f in fields {
        let expr = format!("{}{}", access, f.name);
        let push = format!(
            "__fields.push((\"{n}\".to_string(), serde::Serialize::to_value(&{expr})));\n",
            n = f.name
        );
        match &f.skip_if {
            Some(path) => {
                out.push_str(&format!("if !{path}(&{expr}) {{ {push} }}\n"));
            }
            None => out.push_str(&push),
        }
    }
}

fn gen_fields_from_object(fields: &[Field], type_name: &str, out: &mut String) {
    for f in fields {
        let helper = if f.default { "__field_default" } else { "__field" };
        out.push_str(&format!(
            "{n}: serde::{helper}(__fields, \"{n}\", \"{type_name}\")?,\n",
            n = f.name
        ));
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.body {
        Body::Struct(fields) => {
            gen_fields_to_object(fields, "self.", &mut body);
            body.push_str("serde::Value::Object(__fields)\n");
        }
        Body::UnitStruct => {
            body.push_str("serde::Value::Object(Vec::new())\n");
        }
        Body::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => body.push_str(&format!(
                        "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Newtype => body.push_str(&format!(
                        "{name}::{vn}(__x) => serde::Value::Object(vec![(\"{vn}\".to_string(), \
                         serde::Serialize::to_value(__x))]),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let pattern: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        body.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n",
                            pattern.join(", ")
                        ));
                        gen_fields_to_object(fields, "", &mut body);
                        body.push_str(&format!(
                            "serde::Value::Object(vec![(\"{vn}\".to_string(), \
                             serde::Value::Object(__fields))])\n}}\n"
                        ));
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "{IMPL_ATTRS}impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let mut body = String::new();
    match &input.body {
        Body::Struct(fields) => {
            body.push_str(&format!("let __fields = serde::__object(__v, \"{name}\")?;\n"));
            body.push_str(&format!("Ok({name} {{\n"));
            gen_fields_from_object(fields, name, &mut body);
            body.push_str("})\n");
        }
        Body::UnitStruct => {
            body.push_str(&format!("serde::__object(__v, \"{name}\")?;\nOk({name} {{}})\n"));
        }
        Body::Enum(variants) => {
            body.push_str("match __v {\n");
            // Unit variants arrive as bare strings.
            body.push_str("serde::Value::Str(__s) => match __s.as_str() {\n");
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    body.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n", vn = v.name));
                }
            }
            body.push_str(&format!(
                "__other => Err(serde::Error::custom(format!(\
                 \"unknown variant {{__other:?}} for {name}\"))),\n}}\n"
            ));
            // Payload variants arrive as single-key objects.
            body.push_str(
                "serde::Value::Object(__o) if __o.len() == 1 => {\n\
                 let (__k, __pv) = &__o[0];\nmatch __k.as_str() {\n",
            );
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Newtype => body.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(__pv)?)),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        body.push_str(&format!(
                            "\"{vn}\" => {{\nlet __fields = \
                             serde::__object(__pv, \"{name}::{vn}\")?;\nOk({name}::{vn} {{\n"
                        ));
                        gen_fields_from_object(fields, &format!("{name}::{vn}"), &mut body);
                        body.push_str("})\n}\n");
                    }
                }
            }
            body.push_str(&format!(
                "__other => Err(serde::Error::custom(format!(\
                 \"unknown variant {{__other:?}} for {name}\"))),\n}}\n}}\n"
            ));
            body.push_str(&format!(
                "__other => Err(serde::Error::custom(format!(\
                 \"expected enum {name} as a string or single-key object\"))),\n}}\n"
            ));
        }
    }
    format!(
        "{IMPL_ATTRS}impl serde::Deserialize for {name} {{\n\
         fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n{body}}}\n}}\n"
    )
}
