//! Offline stand-in for `criterion`.
//!
//! Provides the benchmarking API surface this workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`/`finish`, [`Bencher::iter`], and the `criterion_group!` /
//! `criterion_main!` macros — with honest wall-clock measurement but none of
//! the statistical machinery. Two modes:
//!
//! - **bench mode** (`--bench` among the args, as `cargo bench` passes):
//!   each benchmark is warmed up once, then timed over enough iterations to
//!   fill a short measurement window; mean time per iteration is printed.
//! - **test mode** (no `--bench`, as when `cargo test` executes a
//!   `harness = false` bench target): every closure runs exactly once so the
//!   suite doubles as a smoke test and finishes fast.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Runs benchmark closures and reports per-iteration timing.
pub struct Bencher {
    bench_mode: bool,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`. In test mode it runs exactly once.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.bench_mode {
            black_box(routine());
            return;
        }
        // Warmup.
        black_box(routine());
        // Measure: fill a fixed window, bounded by sample count.
        let window = Duration::from_millis(300);
        let max_iters = self.sample_size.max(1) as u64 * 10;
        let started = Instant::now();
        let mut iters = 0u64;
        while started.elapsed() < window && iters < max_iters {
            black_box(routine());
            iters += 1;
        }
        let per_iter = started.elapsed() / iters.max(1) as u32;
        println!("    time: {per_iter:>12.2?}/iter over {iters} iterations");
    }
}

/// The benchmark driver (a far smaller stand-in for criterion's).
pub struct Criterion {
    bench_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Self { bench_mode, default_sample_size: 100 }
    }
}

impl Criterion {
    /// Run a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("bench: {name}");
        let mut b =
            Bencher { bench_mode: self.bench_mode, sample_size: self.default_sample_size };
        f(&mut b);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the sample-size hint for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("bench: {}/{name}", self.name);
        let mut b = Bencher {
            bench_mode: self.criterion.bench_mode,
            sample_size: self.sample_size.unwrap_or(self.criterion.default_sample_size),
        };
        f(&mut b);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group, as criterion's macro
/// does. Only the positional form is supported.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(10);
        group.bench_function("noop2", |b| b.iter(|| 2 + 2));
        group.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn runs_in_test_mode() {
        smoke();
    }
}
