//! Property test: write_log → parse_log is lossless for non-merge history.

use coevo_heartbeat::{Date, DateTime};
use coevo_vcs::{parse_log, write_log, ChangeStatus, Commit, FileChange, Repository};
use proptest::prelude::*;

fn path_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("schema.sql".to_string()),
        "[a-z]{1,8}/[a-z]{1,8}\\.(js|py|rb|sql|md)",
        "[a-z]{1,10}\\.[a-z]{1,3}",
    ]
}

fn change_strategy() -> impl Strategy<Value = FileChange> {
    (path_strategy(), 0u8..6, path_strategy()).prop_map(|(p, kind, p2)| match kind {
        0 => FileChange::added(&p),
        1 => FileChange::deleted(&p),
        2 => FileChange::new(ChangeStatus::TypeChanged, &p),
        3 => FileChange::new(ChangeStatus::Renamed { from: p2, similarity: 93 }, &p),
        4 => FileChange::new(ChangeStatus::Copied { from: p2, similarity: 51 }, &p),
        _ => FileChange::modified(&p),
    })
}

fn message_strategy() -> impl Strategy<Value = String> {
    // Message lines: printable, no leading/trailing whitespace issues.
    prop::collection::vec("[a-zA-Z0-9 ,.:;#_-]{0,40}", 0..4)
        .prop_map(|lines| lines.join("\n").trim_end().to_string())
}

prop_compose! {
    fn commit_strategy()(
        day in 0i64..15_000,
        secs in 0u32..86_400,
        msg in message_strategy(),
        changes in prop::collection::vec(change_strategy(), 1..6),
        author in "[A-Za-z]{2,10} [A-Za-z]{2,10}",
    ) -> Commit {
        let date = Date::from_days_from_epoch(10_000 + day);
        let dt = DateTime::new(date, (secs / 3600) as u8, ((secs / 60) % 60) as u8, (secs % 60) as u8).unwrap();
        Commit::builder(&format!("{author} <{}@example.org>", author.to_lowercase().replace(' ', ".")), dt)
            .message(&msg)
            .changes(changes)
            .build()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn log_round_trip(mut commits in prop::collection::vec(commit_strategy(), 0..12)) {
        commits.sort_by_key(|c| c.date.unix_seconds());
        let mut repo = Repository::new("owner/proj");
        for c in commits {
            repo.push_commit(c);
        }
        let text = write_log(&repo);
        let parsed = parse_log(&text).expect("parse back");
        prop_assert_eq!(parsed.commits.len(), repo.commits.len());
        for (orig, back) in repo.commits.iter().zip(parsed.commits.iter()) {
            prop_assert_eq!(&orig.id, &back.id);
            prop_assert_eq!(&orig.author, &back.author);
            prop_assert_eq!(orig.date, back.date);
            prop_assert_eq!(orig.message.trim_end(), back.message.as_str());
            prop_assert_eq!(&orig.changes, &back.changes);
        }
    }

    #[test]
    fn parser_never_panics(input in "\\PC{0,600}") {
        let _ = parse_log(&input);
    }
}
