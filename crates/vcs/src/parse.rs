//! Parsing `git log --name-status --date=iso` output.
//!
//! Accepts real `git log` output (the study's extraction command) as well as
//! the output of [`crate::write::write_log`]. Tolerated variations: `Merge:`
//! lines, extended headers (`Commit:`, `Signed-off-by` style trailers inside
//! the message), empty messages, and CRLF line endings. Commits are returned
//! oldest-first (the model's canonical order), i.e. the reverse of git's
//! print order.

use crate::model::{ChangeStatus, Commit, FileChange, Repository};
use coevo_heartbeat::DateTime;
use std::fmt;

/// Error from log parsing, with the 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct LogParseError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LogParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "git log parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LogParseError {}

/// Parse a full `git log --name-status` dump into a repository with commits
/// ordered oldest-first.
pub fn parse_log(text: &str) -> Result<Repository, LogParseError> {
    let mut repo = Repository::new("");
    let mut current: Option<PartialCommit> = None;

    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw_line.strip_suffix('\r').unwrap_or(raw_line);

        if let Some(id) = line.strip_prefix("commit ") {
            if let Some(pc) = current.take() {
                repo.commits.push(pc.finish(lineno)?);
            }
            // `git log --decorate` appends refs: `commit abc (HEAD -> main)`.
            let id = id.split_whitespace().next().unwrap_or("").to_string();
            if id.is_empty() {
                return Err(err(lineno, "empty commit id"));
            }
            current = Some(PartialCommit::new(id));
            continue;
        }

        let Some(pc) = current.as_mut() else {
            if line.trim().is_empty() {
                continue;
            }
            return Err(err(lineno, "content before first 'commit' header"));
        };

        if let Some(rest) = line.strip_prefix("Author: ") {
            pc.author = rest.trim().to_string();
        } else if let Some(rest) = line.strip_prefix("Date: ") {
            pc.date = Some(
                DateTime::parse(rest.trim())
                    .map_err(|e| err(lineno, &format!("bad date: {e}")))?,
            );
        } else if line.starts_with("Merge:") {
            pc.is_merge = true;
        } else if let Some(msg) = line.strip_prefix("    ") {
            // Message line (blank message lines arrive as exactly 4 spaces).
            if pc.message_started {
                pc.message.push('\n');
            }
            pc.message_started = true;
            pc.message.push_str(msg);
        } else if line.is_empty() {
            // Separator between header/message/changes blocks.
        } else if let Some((ins, del, path)) = parse_numstat_line(line) {
            // `--numstat` output: merge line counts into an existing
            // name-status entry for the same path, or record a fresh
            // modification carrying only line counts (plain `--numstat`
            // logs without `--name-status`).
            match pc.changes.iter_mut().find(|c| c.path == path) {
                Some(c) => {
                    c.insertions = ins;
                    c.deletions = del;
                }
                None => {
                    let mut c = FileChange::modified(&path);
                    c.insertions = ins;
                    c.deletions = del;
                    pc.changes.push(c);
                }
            }
        } else if let Some(change) = parse_name_status_line(line) {
            pc.changes.push(change);
        } else if line.contains(':') {
            // Unknown header (e.g. `AuthorDate:`, `Commit:`): tolerated.
        } else {
            return Err(err(lineno, &format!("unrecognized line {line:?}")));
        }
    }

    if let Some(pc) = current.take() {
        let last = text.lines().count();
        repo.commits.push(pc.finish(last)?);
    }
    repo.commits.reverse(); // git prints newest first; model is oldest first
    Ok(repo)
}

/// `git log --numstat` line: `<ins>\t<del>\t<path>` with `-` for binary
/// files. Rename entries print `a => b` path syntax; the destination is
/// kept.
fn parse_numstat_line(line: &str) -> Option<(Option<u32>, Option<u32>, String)> {
    let mut parts = line.splitn(3, '\t');
    let ins = parts.next()?;
    let del = parts.next()?;
    let path = parts.next()?;
    let parse_count = |s: &str| -> Option<Option<u32>> {
        if s == "-" {
            Some(None) // binary file: counts unavailable
        } else {
            s.parse::<u32>().ok().map(Some)
        }
    };
    let ins = parse_count(ins)?;
    let del = parse_count(del)?;
    // Rename syntax: `old => new` or `dir/{old => new}/x`.
    let path = if let Some(idx) = path.find(" => ") {
        match (path.rfind('{'), path.find('}')) {
            (Some(open), Some(close)) if open < idx && idx < close => {
                // `dir/{old => new}/rest`
                let prefix = &path[..open];
                let new_mid = &path[idx + 4..close];
                let suffix = &path[close + 1..];
                format!("{prefix}{new_mid}{suffix}").replace("//", "/")
            }
            _ => path[idx + 4..].to_string(),
        }
    } else {
        path.to_string()
    };
    Some((ins, del, path))
}

fn parse_name_status_line(line: &str) -> Option<FileChange> {
    let mut parts = line.split('\t');
    let status = parts.next()?;
    let first_path = parts.next()?;
    let second_path = parts.next();

    let status_char = status.chars().next()?;
    let similarity: u8 = status[1..].parse().unwrap_or(100);
    match (status_char, second_path) {
        ('A', None) => Some(FileChange::added(first_path)),
        ('M', None) => Some(FileChange::modified(first_path)),
        ('D', None) => Some(FileChange::deleted(first_path)),
        ('T', None) => Some(FileChange::new(ChangeStatus::TypeChanged, first_path)),
        ('R', Some(to)) => Some(FileChange::new(
            ChangeStatus::Renamed { from: first_path.to_string(), similarity },
            to,
        )),
        ('C', Some(to)) => Some(FileChange::new(
            ChangeStatus::Copied { from: first_path.to_string(), similarity },
            to,
        )),
        _ => None,
    }
}

struct PartialCommit {
    id: String,
    author: String,
    date: Option<DateTime>,
    message: String,
    message_started: bool,
    changes: Vec<FileChange>,
    is_merge: bool,
}

impl PartialCommit {
    fn new(id: String) -> Self {
        Self {
            id,
            author: String::new(),
            date: None,
            message: String::new(),
            message_started: false,
            changes: Vec::new(),
            is_merge: false,
        }
    }

    fn finish(self, lineno: usize) -> Result<Commit, LogParseError> {
        let date = self
            .date
            .ok_or_else(|| err(lineno, &format!("commit {} has no Date: line", self.id)))?;
        Ok(Commit {
            id: self.id,
            author: self.author,
            date,
            message: self.message.trim_end().to_string(),
            changes: self.changes,
            is_merge: self.is_merge,
        })
    }
}

fn err(line: usize, message: &str) -> LogParseError {
    LogParseError { line, message: message.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Repository;
    use crate::write::write_log;

    const REAL_STYLE_LOG: &str = "\
commit 9fceb02d0ae598e95dc970b74767f19372d61af8
Author: Panos V <pv@example.org>
Date:   2016-03-04 18:12:44 +0200

    add invoice table
    
    also touch parser

M\tschema.sql
M\tsrc/parser.js
A\tsrc/invoice.js

commit 1111111111111111111111111111111111111111
Author: George K <gk@example.org>
Date:   2015-12-01 09:00:00 +0000

    initial

A\tschema.sql
A\tREADME.md
";

    #[test]
    fn parses_real_style_log() {
        let repo = parse_log(REAL_STYLE_LOG).unwrap();
        assert_eq!(repo.commits.len(), 2);
        // Oldest first after parsing.
        assert_eq!(repo.commits[0].message, "initial");
        assert_eq!(repo.commits[0].changes.len(), 2);
        assert_eq!(repo.commits[1].message, "add invoice table\n\nalso touch parser");
        assert_eq!(repo.commits[1].changes.len(), 3);
        assert_eq!(repo.commits[1].date.utc_offset_minutes, 120);
    }

    #[test]
    fn round_trip_write_parse() {
        use crate::model::{Commit, FileChange};
        use coevo_heartbeat::DateTime;
        let mut r = Repository::new("o/p");
        for (i, day) in [1u8, 5, 9].iter().enumerate() {
            r.push_commit(
                Commit::builder(
                    "Dev <d@x.io>",
                    DateTime::parse(&format!("2017-03-0{day} 12:00:00 +0100")).unwrap(),
                )
                .message(&format!("change {i}"))
                .change(FileChange::modified("schema.sql"))
                .change(FileChange::modified(&format!("src/f{i}.js")))
                .build(),
            );
        }
        let parsed = parse_log(&write_log(&r)).unwrap();
        assert_eq!(parsed.commits.len(), 3);
        for (orig, back) in r.commits.iter().zip(parsed.commits.iter()) {
            assert_eq!(orig.id, back.id);
            assert_eq!(orig.author, back.author);
            assert_eq!(orig.date, back.date);
            assert_eq!(orig.message, back.message);
            assert_eq!(orig.changes, back.changes);
        }
    }

    #[test]
    fn decorated_commit_header() {
        let log = "commit abc123 (HEAD -> main, origin/main)\nAuthor: A <a@b.c>\nDate:   2020-01-01 00:00:00 +0000\n\n    msg\n\nM\tf\n";
        let repo = parse_log(log).unwrap();
        assert_eq!(repo.commits[0].id, "abc123");
    }

    #[test]
    fn merge_lines_set_flag() {
        let log = "commit abc\nMerge: 123 456\nAuthor: A <a@b.c>\nDate:   2020-01-01 00:00:00 +0000\n\n    Merge pull request\n\n";
        let repo = parse_log(log).unwrap();
        assert!(repo.commits[0].is_merge);
    }

    #[test]
    fn rename_and_copy_entries() {
        let log = "commit abc\nAuthor: A <a@b.c>\nDate:   2020-01-01 00:00:00 +0000\n\n    r\n\nR095\told.sql\tnew.sql\nC050\ta.js\tb.js\n";
        let repo = parse_log(log).unwrap();
        let ch = &repo.commits[0].changes;
        assert_eq!(
            ch[0].status,
            ChangeStatus::Renamed { from: "old.sql".into(), similarity: 95 }
        );
        assert_eq!(ch[0].path, "new.sql");
        assert_eq!(ch[1].status, ChangeStatus::Copied { from: "a.js".into(), similarity: 50 });
    }

    #[test]
    fn missing_date_is_error() {
        let log = "commit abc\nAuthor: A <a@b.c>\n\n    msg\n";
        let e = parse_log(log).unwrap_err();
        assert!(e.message.contains("no Date"));
    }

    #[test]
    fn bad_date_is_error() {
        let log = "commit abc\nAuthor: A <a@b.c>\nDate:   tomorrow\n";
        assert!(parse_log(log).is_err());
    }

    #[test]
    fn content_before_commit_is_error() {
        assert!(parse_log("M\tfile\n").is_err());
    }

    #[test]
    fn empty_input_is_empty_repo() {
        let repo = parse_log("").unwrap();
        assert!(repo.commits.is_empty());
        let repo = parse_log("\n\n\n").unwrap();
        assert!(repo.commits.is_empty());
    }

    #[test]
    fn crlf_tolerated() {
        let log = "commit abc\r\nAuthor: A <a@b.c>\r\nDate:   2020-01-01 00:00:00 +0000\r\n\r\n    m\r\n\r\nM\tf\r\n";
        let repo = parse_log(log).unwrap();
        assert_eq!(repo.commits[0].changes.len(), 1);
    }

    #[test]
    fn numstat_lines_fill_line_counts() {
        // `git log --name-status --numstat` style: both blocks present.
        let log = "commit abc\nAuthor: A <a@b.c>\nDate:   2020-01-01 00:00:00 +0000\n\n    m\n\nM\tsrc/a.js\n12\t3\tsrc/a.js\n";
        let repo = parse_log(log).unwrap();
        let c = &repo.commits[0].changes[0];
        assert_eq!(c.path, "src/a.js");
        assert_eq!(c.insertions, Some(12));
        assert_eq!(c.deletions, Some(3));
        assert_eq!(repo.commits[0].line_churn(), Some(15));
    }

    #[test]
    fn numstat_only_log() {
        let log = "commit abc\nAuthor: A <a@b.c>\nDate:   2020-01-01 00:00:00 +0000\n\n    m\n\n5\t1\ta.py\n-\t-\timg.png\n";
        let repo = parse_log(log).unwrap();
        let ch = &repo.commits[0].changes;
        assert_eq!(ch.len(), 2);
        assert_eq!(ch[0].insertions, Some(5));
        // Binary: counts unknown.
        assert_eq!(ch[1].insertions, None);
        assert_eq!(ch[1].path, "img.png");
    }

    #[test]
    fn numstat_rename_syntax() {
        let log = "commit abc\nAuthor: A <a@b.c>\nDate:   2020-01-01 00:00:00 +0000\n\n    m\n\n3\t3\tsrc/{old => new}/mod.rs\n1\t0\tplain => renamed\n";
        let repo = parse_log(log).unwrap();
        let ch = &repo.commits[0].changes;
        assert_eq!(ch[0].path, "src/new/mod.rs");
        assert_eq!(ch[1].path, "renamed");
    }

    #[test]
    fn paths_with_spaces() {
        let log = "commit abc\nAuthor: A <a@b.c>\nDate:   2020-01-01 00:00:00 +0000\n\n    m\n\nM\tdocs/my file.md\n";
        let repo = parse_log(log).unwrap();
        assert_eq!(repo.commits[0].changes[0].path, "docs/my file.md");
    }
}
