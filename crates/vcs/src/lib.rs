//! # coevo-vcs — git substrate
//!
//! The paper measures project evolution as "the number of files updated in
//! each commit", extracted with `git log --name-status --no-merges
//! --date=iso`. This crate provides the pieces of git that the study needs,
//! built from scratch:
//!
//! - an in-memory [`Repository`]/[`Commit`] model;
//! - a writer emitting the exact `git log --name-status --date=iso` text
//!   format ([`write_log`]), so synthetic corpora exercise the same parsing
//!   path as real clones;
//! - a parser for that format ([`parse_log`]) accepting real `git log`
//!   output;
//! - monthly activity extraction ([`monthly::project_heartbeat`],
//!   [`monthly::file_touch_dates`]) feeding the heartbeat pipeline.
//!
//! ```
//! use coevo_vcs::{Commit, FileChange, Repository, write_log, parse_log};
//! use coevo_heartbeat::DateTime;
//!
//! let mut repo = Repository::new("acme/app");
//! repo.push_commit(
//!     Commit::builder("Ada <ada@acme.io>", DateTime::parse("2015-01-03 10:00:00 +0000").unwrap())
//!         .message("initial import")
//!         .change(FileChange::added("schema.sql"))
//!         .change(FileChange::added("src/main.js"))
//!         .build(),
//! );
//! let log = write_log(&repo);
//! let parsed = parse_log(&log).unwrap();
//! assert_eq!(parsed.commits.len(), 1);
//! assert_eq!(parsed.commits[0].changes.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod model;
pub mod monthly;
pub mod parse;
pub mod write;

pub use model::{ChangeStatus, Commit, CommitBuilder, FileChange, Repository};
pub use parse::{parse_log, LogParseError};
pub use write::write_log;
