//! Writing the `git log --name-status --date=iso` text format.
//!
//! The writer mirrors git's real output closely enough that our parser —
//! and the original study's extraction scripts — would treat synthetic and
//! real logs identically: newest-first commit order, `commit <sha>` header,
//! `Author:`/`Date:` fields, four-space-indented message lines, and
//! tab-separated name-status entries.

use crate::model::{ChangeStatus, Repository};
use std::fmt::Write as _;

/// Render the repository history as `git log --name-status --no-merges
/// --date=iso` would print it (newest commit first, merges omitted).
pub fn write_log(repo: &Repository) -> String {
    let mut out = String::new();
    for commit in repo.non_merge_commits().collect::<Vec<_>>().into_iter().rev() {
        let _ = writeln!(out, "commit {}", commit.id);
        let _ = writeln!(out, "Author: {}", commit.author);
        let _ = writeln!(out, "Date:   {}", commit.date);
        out.push('\n');
        for line in commit.message.lines() {
            let _ = writeln!(out, "    {line}");
        }
        if commit.message.is_empty() {
            out.push('\n');
        }
        out.push('\n');
        for change in &commit.changes {
            match &change.status {
                ChangeStatus::Renamed { from, .. } | ChangeStatus::Copied { from, .. } => {
                    let _ =
                        writeln!(out, "{}\t{}\t{}", change.status.letter(), from, change.path);
                }
                _ => {
                    let _ = writeln!(out, "{}\t{}", change.status.letter(), change.path);
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Commit, FileChange};
    use coevo_heartbeat::DateTime;

    fn dt(s: &str) -> DateTime {
        DateTime::parse(s).unwrap()
    }

    #[test]
    fn format_matches_git() {
        let mut r = Repository::new("o/p");
        r.push_commit(
            Commit::builder("Ada Lovelace <ada@x.io>", dt("2015-01-03 10:00:00 +0200"))
                .message("initial import")
                .change(FileChange::added("schema.sql"))
                .build(),
        );
        let log = write_log(&r);
        assert!(log.starts_with("commit "));
        assert!(log.contains("Author: Ada Lovelace <ada@x.io>\n"));
        assert!(log.contains("Date:   2015-01-03 10:00:00 +0200\n"));
        assert!(log.contains("    initial import\n"));
        assert!(log.contains("A\tschema.sql\n"));
    }

    #[test]
    fn newest_first_ordering() {
        let mut r = Repository::new("o/p");
        r.push_commit(
            Commit::builder("A <a@b.c>", dt("2015-01-01 00:00:00 +0000"))
                .message("first")
                .change(FileChange::added("a"))
                .build(),
        );
        r.push_commit(
            Commit::builder("A <a@b.c>", dt("2015-02-01 00:00:00 +0000"))
                .message("second")
                .change(FileChange::modified("a"))
                .build(),
        );
        let log = write_log(&r);
        let first_pos = log.find("first").unwrap();
        let second_pos = log.find("second").unwrap();
        assert!(second_pos < first_pos, "newest commit must come first");
    }

    #[test]
    fn merges_are_omitted() {
        let mut r = Repository::new("o/p");
        r.push_commit(
            Commit::builder("A <a@b.c>", dt("2015-01-01 00:00:00 +0000"))
                .message("work")
                .change(FileChange::added("a"))
                .build(),
        );
        r.push_commit(
            Commit::builder("A <a@b.c>", dt("2015-01-02 00:00:00 +0000"))
                .message("Merge branch x")
                .merge(true)
                .build(),
        );
        let log = write_log(&r);
        assert!(!log.contains("Merge branch"));
    }

    #[test]
    fn renames_print_both_paths() {
        let mut r = Repository::new("o/p");
        r.push_commit(
            Commit::builder("A <a@b.c>", dt("2015-01-01 00:00:00 +0000"))
                .change(FileChange::renamed("db/old.sql", "db/new.sql"))
                .build(),
        );
        let log = write_log(&r);
        assert!(log.contains("R100\tdb/old.sql\tdb/new.sql\n"));
    }

    #[test]
    fn multiline_messages_indent_every_line() {
        let mut r = Repository::new("o/p");
        r.push_commit(
            Commit::builder("A <a@b.c>", dt("2015-01-01 00:00:00 +0000"))
                .message("title\n\nbody line")
                .change(FileChange::added("a"))
                .build(),
        );
        let log = write_log(&r);
        assert!(log.contains("    title\n"));
        assert!(log.contains("    body line\n"));
    }
}
