//! Monthly activity extraction: from a repository to the study's heartbeats.

use crate::model::Repository;
use coevo_heartbeat::{Date, Heartbeat};

/// The **Project (Monthly) Heartbeat**: number of files updated per month
/// across all non-merge commits. Returns `None` for a repository with no
/// commits.
pub fn project_heartbeat(repo: &Repository) -> Option<Heartbeat> {
    Heartbeat::from_events(repo.non_merge_commits().map(|c| (c.date.date, c.files_updated())))
}

/// Like [`project_heartbeat`] but counting line churn (insertions +
/// deletions) instead of file counts — the finer unit of change from the
/// paper's future-work section. Commits lacking numstat data contribute
/// their file count as a fallback so mixed histories stay measurable.
pub fn project_heartbeat_lines(repo: &Repository) -> Option<Heartbeat> {
    Heartbeat::from_events(
        repo.non_merge_commits()
            .map(|c| (c.date.date, c.line_churn().unwrap_or_else(|| c.files_updated()))),
    )
}

/// The dates of the commits that touched a specific path (e.g. the schema
/// DDL file), oldest first — the raw material of a schema history.
pub fn file_touch_dates(repo: &Repository, path: &str) -> Vec<Date> {
    let mut dates: Vec<Date> = repo.commits_touching(path).map(|c| c.date.date).collect();
    dates.sort();
    dates
}

/// Commit statistics the paper reports for its case study: total commits,
/// total file updates, and commits touching a given path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepoStats {
    /// The commits.
    pub commits: usize,
    /// The file updates.
    pub file_updates: u64,
    /// The path commits.
    pub path_commits: usize,
}

/// Compute [`RepoStats`] for a repository and a tracked path.
pub fn repo_stats(repo: &Repository, path: &str) -> RepoStats {
    RepoStats {
        commits: repo.non_merge_commits().count(),
        file_updates: repo.total_file_updates(),
        path_commits: repo.commits_touching(path).count(),
    }
}

/// Author concentration: the fraction of non-merge commits made by the most
/// prolific author (the paper's case study notes "90% of the studied updates
/// were performed by the same developer"). `None` for empty repositories.
pub fn author_concentration(repo: &Repository) -> Option<f64> {
    use std::collections::HashMap;
    let mut counts: HashMap<&str, usize> = HashMap::new();
    let mut total = 0usize;
    for c in repo.non_merge_commits() {
        *counts.entry(c.author.as_str()).or_insert(0) += 1;
        total += 1;
    }
    if total == 0 {
        return None;
    }
    let max = counts.values().copied().max().unwrap_or(0);
    Some(max as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Commit, FileChange};
    use coevo_heartbeat::{DateTime, YearMonth};

    fn commit(date: &str, files: &[&str]) -> Commit {
        let mut b = Commit::builder("D <d@x.io>", DateTime::parse(date).unwrap());
        for f in files {
            b = b.change(FileChange::modified(f));
        }
        b.build()
    }

    fn repo() -> Repository {
        let mut r = Repository::new("o/p");
        r.push_commit(commit("2015-01-03 10:00:00 +0000", &["schema.sql", "a.js"]));
        r.push_commit(commit("2015-01-20 10:00:00 +0000", &["a.js"]));
        r.push_commit(commit("2015-03-07 10:00:00 +0000", &["schema.sql", "a.js", "b.js"]));
        r
    }

    #[test]
    fn project_heartbeat_counts_files_per_month() {
        let hb = project_heartbeat(&repo()).unwrap();
        assert_eq!(hb.start(), YearMonth::new(2015, 1).unwrap());
        assert_eq!(hb.activity(), &[3, 0, 3]);
    }

    #[test]
    fn empty_repo_has_no_heartbeat() {
        assert!(project_heartbeat(&Repository::new("x")).is_none());
    }

    #[test]
    fn merge_commits_excluded() {
        let mut r = repo();
        r.push_commit(
            Commit::builder(
                "D <d@x.io>",
                DateTime::parse("2015-03-20 10:00:00 +0000").unwrap(),
            )
            .merge(true)
            .change(FileChange::modified("a.js"))
            .build(),
        );
        let hb = project_heartbeat(&r).unwrap();
        assert_eq!(hb.activity(), &[3, 0, 3]);
    }

    #[test]
    fn file_touch_dates_filters_and_sorts() {
        let dates = file_touch_dates(&repo(), "schema.sql");
        assert_eq!(dates.len(), 2);
        assert!(dates[0] < dates[1]);
        assert_eq!(dates[0].month, 1);
        assert_eq!(dates[1].month, 3);
    }

    #[test]
    fn stats_match_case_study_shape() {
        let s = repo_stats(&repo(), "schema.sql");
        assert_eq!(s.commits, 3);
        assert_eq!(s.file_updates, 6);
        assert_eq!(s.path_commits, 2);
    }

    #[test]
    fn author_concentration_measures_dominance() {
        let mut r = Repository::new("o/p");
        for (author, date) in [
            ("A <a@x.io>", "2015-01-01 10:00:00 +0000"),
            ("A <a@x.io>", "2015-01-02 10:00:00 +0000"),
            ("A <a@x.io>", "2015-01-03 10:00:00 +0000"),
            ("B <b@x.io>", "2015-01-04 10:00:00 +0000"),
        ] {
            r.push_commit(
                Commit::builder(author, DateTime::parse(date).unwrap())
                    .change(FileChange::modified("f"))
                    .build(),
            );
        }
        assert_eq!(author_concentration(&r), Some(0.75));
        assert_eq!(author_concentration(&Repository::new("x")), None);
    }

    #[test]
    fn line_heartbeat_uses_numstat_with_fallback() {
        let mut r = Repository::new("o/p");
        r.push_commit(
            Commit::builder(
                "D <d@x.io>",
                DateTime::parse("2015-01-03 10:00:00 +0000").unwrap(),
            )
            .change(FileChange::modified("a").with_lines(100, 20))
            .build(),
        );
        r.push_commit(commit("2015-01-20 10:00:00 +0000", &["a", "b"])); // no numstat → 2 files
        let hb = project_heartbeat_lines(&r).unwrap();
        assert_eq!(hb.activity(), &[122]);
    }
}
