//! The commit/repository object model.

use coevo_heartbeat::DateTime;
use serde::{Deserialize, Serialize};

/// The `--name-status` change letter of one file in one commit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChangeStatus {
    /// File added (`A`).
    Added,
    /// File modified (`M`).
    Modified,
    /// File deleted (`D`).
    Deleted,
    /// Renamed with a similarity score (git prints `R100\told\tnew`).
    /// The from.
    Renamed {
        /// The old name.
        from: String,
        /// Git similarity score (0–100).
        similarity: u8,
    },
    /// Copied with a similarity score (`C075\tsrc\tdst`).
    /// The from.
    Copied {
        /// The old name.
        from: String,
        /// Git similarity score (0–100).
        similarity: u8,
    },
    /// Type change (`T`), e.g. symlink ↔ file.
    TypeChanged,
}

impl ChangeStatus {
    /// The status letter as printed by `git log --name-status`.
    pub fn letter(&self) -> String {
        match self {
            ChangeStatus::Added => "A".into(),
            ChangeStatus::Modified => "M".into(),
            ChangeStatus::Deleted => "D".into(),
            ChangeStatus::Renamed { similarity, .. } => format!("R{similarity:03}"),
            ChangeStatus::Copied { similarity, .. } => format!("C{similarity:03}"),
            ChangeStatus::TypeChanged => "T".into(),
        }
    }
}

/// One changed file in a commit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileChange {
    /// The status.
    pub status: ChangeStatus,
    /// Path after the change (the rename/copy destination).
    pub path: String,
    /// Lines added/removed, when numstat information is available. The paper
    /// uses file counts; line counts serve the finer-unit extension.
    pub insertions: Option<u32>,
    /// The deletions.
    pub deletions: Option<u32>,
}

impl FileChange {
    /// Construct a new instance.
    pub fn new(status: ChangeStatus, path: &str) -> Self {
        Self { status, path: path.to_string(), insertions: None, deletions: None }
    }

    /// A file added by the commit.
    pub fn added(path: &str) -> Self {
        Self::new(ChangeStatus::Added, path)
    }

    /// A file modified by the commit.
    pub fn modified(path: &str) -> Self {
        Self::new(ChangeStatus::Modified, path)
    }

    /// A file deleted by the commit.
    pub fn deleted(path: &str) -> Self {
        Self::new(ChangeStatus::Deleted, path)
    }

    /// A file renamed by the commit (similarity 100).
    pub fn renamed(from: &str, to: &str) -> Self {
        Self::new(ChangeStatus::Renamed { from: from.to_string(), similarity: 100 }, to)
    }

    /// Attach line-change counts (the finer change unit of §8's future work).
    pub fn with_lines(mut self, insertions: u32, deletions: u32) -> Self {
        self.insertions = Some(insertions);
        self.deletions = Some(deletions);
        self
    }
}

/// One commit: identity, authorship, timestamp, message, changed files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Commit {
    /// 40-hex commit id. Synthetic repositories derive it deterministically
    /// from the commit contents.
    pub id: String,
    /// `Name <email>` as git prints it.
    pub author: String,
    /// The commit timestamp.
    pub date: DateTime,
    /// Human-readable description.
    pub message: String,
    /// The changes.
    pub changes: Vec<FileChange>,
    /// Merge commits are excluded by the study's `--no-merges`; the model
    /// keeps the flag so the writer/parser can honor it.
    pub is_merge: bool,
}

impl Commit {
    /// Start building a commit; the id is derived from content at `build()`.
    pub fn builder(author: &str, date: DateTime) -> CommitBuilder {
        CommitBuilder {
            author: author.to_string(),
            date,
            message: String::new(),
            changes: Vec::new(),
            is_merge: false,
        }
    }

    /// Number of files updated in this commit — the paper's unit of project
    /// change.
    pub fn files_updated(&self) -> u64 {
        self.changes.len() as u64
    }

    /// True if the commit touches `path` (as destination or rename source).
    pub fn touches(&self, path: &str) -> bool {
        self.changes.iter().any(|c| {
            c.path == path
                || matches!(&c.status,
                    ChangeStatus::Renamed { from, .. } | ChangeStatus::Copied { from, .. }
                        if from == path)
        })
    }

    /// Total line churn (insertions + deletions) when numstat data exists.
    pub fn line_churn(&self) -> Option<u64> {
        let mut total = 0u64;
        for c in &self.changes {
            total += c.insertions? as u64 + c.deletions? as u64;
        }
        Some(total)
    }
}

/// Builder for [`Commit`], deriving a deterministic content-hash id.
pub struct CommitBuilder {
    author: String,
    date: DateTime,
    message: String,
    changes: Vec<FileChange>,
    is_merge: bool,
}

impl CommitBuilder {
    /// Human-readable description.
    pub fn message(mut self, msg: &str) -> Self {
        self.message = msg.to_string();
        self
    }

    /// Append one file change.
    pub fn change(mut self, change: FileChange) -> Self {
        self.changes.push(change);
        self
    }

    /// Append several file changes.
    pub fn changes(mut self, changes: impl IntoIterator<Item = FileChange>) -> Self {
        self.changes.extend(changes);
        self
    }

    /// Mark the commit as a merge (excluded by `--no-merges`).
    pub fn merge(mut self, is_merge: bool) -> Self {
        self.is_merge = is_merge;
        self
    }

    /// Finish the commit, deriving its deterministic content-hash id.
    pub fn build(self) -> Commit {
        let id = content_hash_hex(&self.author, &self.date, &self.message, &self.changes);
        Commit {
            id,
            author: self.author,
            date: self.date,
            message: self.message,
            changes: self.changes,
            is_merge: self.is_merge,
        }
    }
}

/// A repository: named, with commits stored oldest-first.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Repository {
    /// `owner/name` as on GitHub.
    pub name: String,
    /// Oldest-first commit sequence.
    pub commits: Vec<Commit>,
}

impl Repository {
    /// Construct a new instance.
    pub fn new(name: &str) -> Self {
        Self { name: name.to_string(), commits: Vec::new() }
    }

    /// Append a commit (assumed chronologically after the existing ones).
    pub fn push_commit(&mut self, commit: Commit) {
        self.commits.push(commit);
    }

    /// Non-merge commits, oldest first (the study's view of history).
    pub fn non_merge_commits(&self) -> impl Iterator<Item = &Commit> {
        self.commits.iter().filter(|c| !c.is_merge)
    }

    /// Commits touching a specific path, oldest first.
    pub fn commits_touching<'a>(&'a self, path: &'a str) -> impl Iterator<Item = &'a Commit> {
        self.non_merge_commits().filter(move |c| c.touches(path))
    }

    /// Total number of file updates across non-merge commits.
    pub fn total_file_updates(&self) -> u64 {
        self.non_merge_commits().map(|c| c.files_updated()).sum()
    }
}

/// A small deterministic 160-bit content hash rendered as 40 hex chars.
/// This is *not* cryptographic — it only needs to be stable and well spread
/// so synthetic commit ids look and behave like shas.
fn content_hash_hex(
    author: &str,
    date: &DateTime,
    message: &str,
    changes: &[FileChange],
) -> String {
    let mut h =
        [0xcbf2_9ce4_8422_2325u64 ^ 0x9e37_79b9, 0x100_0000_01b3, 0xdead_beef_cafe_f00d];
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            for (i, hi) in h.iter_mut().enumerate() {
                *hi ^= (b as u64).rotate_left((i as u32) * 7);
                *hi = hi.wrapping_mul(0x100_0000_01b3).rotate_left(17);
            }
        }
    };
    mix(author.as_bytes());
    mix(date.to_string().as_bytes());
    mix(message.as_bytes());
    for c in changes {
        mix(c.status.letter().as_bytes());
        mix(c.path.as_bytes());
    }
    format!("{:016x}{:016x}{:08x}", h[0], h[1], (h[2] >> 32) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dt(s: &str) -> DateTime {
        DateTime::parse(s).unwrap()
    }

    fn sample_commit() -> Commit {
        Commit::builder("Ada <ada@x.io>", dt("2015-01-03 10:00:00 +0000"))
            .message("init")
            .change(FileChange::added("schema.sql"))
            .change(FileChange::modified("src/a.js"))
            .build()
    }

    #[test]
    fn commit_ids_are_40_hex_and_deterministic() {
        let a = sample_commit();
        let b = sample_commit();
        assert_eq!(a.id.len(), 40);
        assert!(a.id.bytes().all(|b| b.is_ascii_hexdigit()));
        assert_eq!(a.id, b.id);
    }

    #[test]
    fn different_content_different_id() {
        let a = sample_commit();
        let b = Commit::builder("Ada <ada@x.io>", dt("2015-01-03 10:00:00 +0000"))
            .message("init!")
            .change(FileChange::added("schema.sql"))
            .change(FileChange::modified("src/a.js"))
            .build();
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn files_updated_counts_changes() {
        assert_eq!(sample_commit().files_updated(), 2);
    }

    #[test]
    fn touches_includes_rename_source() {
        let c = Commit::builder("A <a@b.c>", dt("2020-01-01 00:00:00 +0000"))
            .change(FileChange::renamed("old.sql", "new.sql"))
            .build();
        assert!(c.touches("old.sql"));
        assert!(c.touches("new.sql"));
        assert!(!c.touches("other.sql"));
    }

    #[test]
    fn status_letters() {
        assert_eq!(ChangeStatus::Added.letter(), "A");
        assert_eq!(ChangeStatus::Modified.letter(), "M");
        assert_eq!(ChangeStatus::Deleted.letter(), "D");
        assert_eq!(ChangeStatus::Renamed { from: "x".into(), similarity: 87 }.letter(), "R087");
        assert_eq!(ChangeStatus::Copied { from: "x".into(), similarity: 100 }.letter(), "C100");
        assert_eq!(ChangeStatus::TypeChanged.letter(), "T");
    }

    #[test]
    fn repository_filters_merges() {
        let mut r = Repository::new("o/p");
        r.push_commit(sample_commit());
        r.push_commit(
            Commit::builder("B <b@x.io>", dt("2015-01-04 10:00:00 +0000"))
                .message("Merge branch 'dev'")
                .merge(true)
                .build(),
        );
        assert_eq!(r.commits.len(), 2);
        assert_eq!(r.non_merge_commits().count(), 1);
        assert_eq!(r.total_file_updates(), 2);
    }

    #[test]
    fn commits_touching_path() {
        let mut r = Repository::new("o/p");
        r.push_commit(sample_commit());
        r.push_commit(
            Commit::builder("B <b@x.io>", dt("2015-02-01 10:00:00 +0000"))
                .change(FileChange::modified("src/a.js"))
                .build(),
        );
        assert_eq!(r.commits_touching("schema.sql").count(), 1);
        assert_eq!(r.commits_touching("src/a.js").count(), 2);
    }

    #[test]
    fn line_churn_requires_full_numstat() {
        let full = Commit::builder("A <a@b.c>", dt("2020-01-01 00:00:00 +0000"))
            .change(FileChange::modified("a").with_lines(10, 3))
            .change(FileChange::modified("b").with_lines(1, 1))
            .build();
        assert_eq!(full.line_churn(), Some(15));
        let partial = Commit::builder("A <a@b.c>", dt("2020-01-01 00:00:00 +0000"))
            .change(FileChange::modified("a").with_lines(10, 3))
            .change(FileChange::modified("b"))
            .build();
        assert_eq!(partial.line_churn(), None);
    }
}
