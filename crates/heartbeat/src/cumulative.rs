//! Cumulative fractional progress — Equation 1 of the paper.
//!
//! ```text
//! cumPct_i = (1/TotalActivity) * Σ_{k=0..i} activity_k
//! ```
//!
//! and the analogous *time progress* series, which assigns to each month the
//! fraction of the project's lifetime elapsed.

/// The cumulative fractional activity of a heartbeat (Eq. 1). Monotone
/// non-decreasing, ending at 1.0 whenever total activity is non-zero. An
/// all-zero series yields all zeros (there is no activity to accumulate).
pub fn cumulative_fraction(activity: &[u64]) -> Vec<f64> {
    let total: u64 = activity.iter().sum();
    if total == 0 {
        return vec![0.0; activity.len()];
    }
    let total = total as f64;
    let mut acc = 0u64;
    activity
        .iter()
        .map(|&a| {
            acc += a;
            acc as f64 / total
        })
        .collect()
}

/// Time progress for a lifetime of `months` time-points: element `i` is the
/// fraction of life elapsed at the *end* of month `i`, i.e. `(i+1)/months`.
///
/// The end-of-month convention mirrors the activity series: the cumulative
/// activity at index `i` includes everything that happened *during* month
/// `i`, so the comparable time progress is the time elapsed once month `i`
/// has completed. With it, a single-month project has progress `[1.0]`, and
/// the last month of any project has progress 1.0 — matching the paper's
/// observation that "it is only the last month where all cumulative
/// heartbeats end up in 100%".
pub fn time_progress(months: usize) -> Vec<f64> {
    (0..months).map(|i| (i + 1) as f64 / months as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-12)
    }

    #[test]
    fn paper_example() {
        let cf = cumulative_fraction(&[40, 25, 20, 15]);
        assert!(close(&cf, &[0.40, 0.65, 0.85, 1.0]), "{cf:?}");
    }

    #[test]
    fn empty_input() {
        assert!(cumulative_fraction(&[]).is_empty());
        assert!(time_progress(0).is_empty());
    }

    #[test]
    fn all_zeros() {
        assert_eq!(cumulative_fraction(&[0, 0]), vec![0.0, 0.0]);
    }

    #[test]
    fn single_burst_at_start() {
        let cf = cumulative_fraction(&[10, 0, 0]);
        assert!(close(&cf, &[1.0, 1.0, 1.0]));
    }

    #[test]
    fn single_burst_at_end() {
        let cf = cumulative_fraction(&[0, 0, 10]);
        assert!(close(&cf, &[0.0, 0.0, 1.0]));
    }

    #[test]
    fn monotone_and_ends_at_one() {
        let cf = cumulative_fraction(&[3, 1, 4, 1, 5, 9, 2, 6]);
        for w in cf.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((cf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_progress_shape() {
        assert!(close(&time_progress(1), &[1.0]));
        assert!(close(&time_progress(4), &[0.25, 0.5, 0.75, 1.0]));
        let tp = time_progress(10);
        assert!((tp[0] - 0.1).abs() < 1e-12);
        assert!((tp[9] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn large_totals_no_overflow() {
        let cf = cumulative_fraction(&[u64::MAX / 2, u64::MAX / 2]);
        assert!((cf[1] - 1.0).abs() < 1e-9);
    }
}
