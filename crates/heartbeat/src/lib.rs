//! # coevo-heartbeat — time and time-series substrate
//!
//! The study's unit of time is the **month** ("a reasonable, common chronon"
//! per the paper's construct-validity discussion). This crate provides:
//!
//! - civil [`Date`]/[`DateTime`] types with ISO-8601 parsing matching the
//!   output of `git log --date=iso` (no external time library);
//! - [`YearMonth`] quantization and month arithmetic;
//! - [`Heartbeat`]: a monthly activity series anchored at a start month;
//! - cumulative fractional progress (Eq. 1 of the paper) and time-progress
//!   series;
//! - alignment of schema and project heartbeats onto a common month axis.
//!
//! ```
//! use coevo_heartbeat::{Date, Heartbeat, YearMonth};
//!
//! let events = [
//!     (Date::new(2015, 1, 10).unwrap(), 4u64),
//!     (Date::new(2015, 1, 20).unwrap(), 1),
//!     (Date::new(2015, 4, 2).unwrap(), 5),
//! ];
//! let hb = Heartbeat::from_events(events.iter().copied()).unwrap();
//! assert_eq!(hb.start(), YearMonth::new(2015, 1).unwrap());
//! assert_eq!(hb.months(), 4); // Jan, Feb, Mar, Apr
//! assert_eq!(hb.activity(), &[5, 0, 0, 5]);
//! assert_eq!(hb.cumulative_fraction(), vec![0.5, 0.5, 0.5, 1.0]);
//! ```

#![warn(missing_docs)]

pub mod align;
pub mod cumulative;
pub mod date;
pub mod month;
pub mod series;
pub mod window;

pub use align::{align_pair, AlignedPair, JointProgress};
pub use cumulative::{cumulative_fraction, time_progress};
pub use date::{Date, DateError, DateTime};
pub use month::YearMonth;
pub use series::{Heartbeat, HeartbeatError, MAX_HEARTBEAT_MONTHS};
pub use window::{windowed_activity, windowed_pair};
