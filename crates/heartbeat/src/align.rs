//! Aligning schema and project heartbeats onto one month axis.
//!
//! The paper compares, per project, three cumulative fractional series over
//! the *project's* lifetime: project activity, schema activity, and time.
//! The DDL file may be born after the project (months before its birth carry
//! zero schema progress) and either series may end before the other (the
//! tail is padded with quiet months, during which cumulative progress holds
//! at its final value).

use crate::cumulative::{cumulative_fraction, time_progress};
use crate::month::YearMonth;
use crate::series::Heartbeat;
use serde::{Deserialize, Serialize};

/// Two heartbeats re-anchored to a common start month and padded to a common
/// length.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlignedPair {
    /// The start.
    pub start: YearMonth,
    /// The project.
    pub project: Heartbeat,
    /// The schema.
    pub schema: Heartbeat,
}

/// Align a project heartbeat and a schema heartbeat onto the axis spanning
/// from the earlier of the two start months through the later of the two end
/// months. (In the study the project's initial commit also creates the
/// repository, so the project start is almost always the axis origin.)
pub fn align_pair(project: &Heartbeat, schema: &Heartbeat) -> AlignedPair {
    let start = project.start().min(schema.start());
    let end = project.end().max(schema.end());
    let mut p = project.clone();
    let mut s = schema.clone();
    p.rebase_start(start);
    s.rebase_start(start);
    p.extend_through(end);
    s.extend_through(end);
    AlignedPair { start, project: p, schema: s }
}

/// The joint (cumulative fractional) progress of a project: the three series
/// the paper plots in its joint progress diagrams, on a shared month axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointProgress {
    /// First month of the shared axis.
    pub start: YearMonth,
    /// Cumulative fractional project (source) activity per month.
    pub project: Vec<f64>,
    /// Cumulative fractional schema activity per month.
    pub schema: Vec<f64>,
    /// Cumulative fractional time progress per month.
    pub time: Vec<f64>,
}

impl JointProgress {
    /// Build from raw (unaligned) heartbeats.
    pub fn from_heartbeats(project: &Heartbeat, schema: &Heartbeat) -> Self {
        let aligned = align_pair(project, schema);
        let months = aligned.project.months();
        Self {
            start: aligned.start,
            project: cumulative_fraction(aligned.project.activity()),
            schema: cumulative_fraction(aligned.schema.activity()),
            time: time_progress(months),
        }
    }

    /// Number of months on the shared axis.
    pub fn months(&self) -> usize {
        self.time.len()
    }

    /// Month label for index `i`.
    pub fn month_at(&self, i: usize) -> YearMonth {
        self.start.plus(i as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ym(y: i32, m: u8) -> YearMonth {
        YearMonth::new(y, m).unwrap()
    }

    #[test]
    fn same_axis_is_identity() {
        let p = Heartbeat::new(ym(2020, 1), vec![1, 2, 3]);
        let s = Heartbeat::new(ym(2020, 1), vec![3, 0, 0]);
        let a = align_pair(&p, &s);
        assert_eq!(a.project, p);
        assert_eq!(a.schema, s);
    }

    #[test]
    fn late_schema_birth_pads_front() {
        let p = Heartbeat::new(ym(2020, 1), vec![1, 1, 1, 1]);
        let s = Heartbeat::new(ym(2020, 3), vec![5, 5]);
        let a = align_pair(&p, &s);
        assert_eq!(a.start, ym(2020, 1));
        assert_eq!(a.schema.activity(), &[0, 0, 5, 5]);
        assert_eq!(a.project.activity(), &[1, 1, 1, 1]);
    }

    #[test]
    fn early_schema_end_pads_tail() {
        let p = Heartbeat::new(ym(2020, 1), vec![1, 1, 1, 1, 1]);
        let s = Heartbeat::new(ym(2020, 1), vec![9]);
        let a = align_pair(&p, &s);
        assert_eq!(a.schema.activity(), &[9, 0, 0, 0, 0]);
    }

    #[test]
    fn schema_outliving_project_extends_axis() {
        let p = Heartbeat::new(ym(2020, 1), vec![1, 1]);
        let s = Heartbeat::new(ym(2020, 1), vec![1, 1, 1, 1]);
        let a = align_pair(&p, &s);
        assert_eq!(a.project.months(), 4);
        assert_eq!(a.project.activity(), &[1, 1, 0, 0]);
    }

    #[test]
    fn joint_progress_series_lengths_match() {
        let p = Heartbeat::new(ym(2020, 1), vec![2, 2, 2, 2]);
        let s = Heartbeat::new(ym(2020, 2), vec![4, 4]);
        let j = JointProgress::from_heartbeats(&p, &s);
        assert_eq!(j.months(), 4);
        assert_eq!(j.project.len(), 4);
        assert_eq!(j.schema.len(), 4);
        assert_eq!(j.time.len(), 4);
        // Schema has no progress before its birth month.
        assert_eq!(j.schema[0], 0.0);
        assert!((j.schema[1] - 0.5).abs() < 1e-12);
        // Everything ends at 100%.
        assert!((j.project[3] - 1.0).abs() < 1e-12);
        assert!((j.schema[3] - 1.0).abs() < 1e-12);
        assert!((j.time[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn month_labels_follow_axis() {
        let p = Heartbeat::new(ym(2019, 12), vec![1, 1, 1]);
        let s = Heartbeat::new(ym(2020, 1), vec![1]);
        let j = JointProgress::from_heartbeats(&p, &s);
        assert_eq!(j.month_at(0), ym(2019, 12));
        assert_eq!(j.month_at(2), ym(2020, 2));
    }
}
