//! Civil dates and datetimes, with the ISO parsing needed for `git log`.
//!
//! Implemented from scratch (no chrono): the study needs only ordering,
//! month extraction, and day arithmetic — all derivable from the classic
//! days-from-civil algorithm (Howard Hinnant's `chrono`-compatible formulas).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from date construction or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DateError {
    /// Month outside 1..=12 or day outside the month's length.
    /// The what.
    OutOfRange {
        /// What kind of object was involved.
        what: &'static str,
        /// The offending value.
        value: i64,
    },
    /// Text that does not match the expected ISO layout.
    Malformed(String),
}

impl fmt::Display for DateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OutOfRange { what, value } => write!(f, "{what} out of range: {value}"),
            Self::Malformed(s) => write!(f, "malformed date/time: {s:?}"),
        }
    }
}

impl std::error::Error for DateError {}

/// A civil (proleptic Gregorian) calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    /// The year.
    pub year: i32,
    /// The month.
    pub month: u8,
    /// The day.
    pub day: u8,
}

impl Date {
    /// Construct a validated date.
    pub fn new(year: i32, month: u8, day: u8) -> Result<Self, DateError> {
        if !(1..=12).contains(&month) {
            return Err(DateError::OutOfRange { what: "month", value: month as i64 });
        }
        let dim = days_in_month(year, month);
        if day == 0 || day > dim {
            return Err(DateError::OutOfRange { what: "day", value: day as i64 });
        }
        Ok(Self { year, month, day })
    }

    /// Days since 1970-01-01 (negative before), via the days-from-civil
    /// algorithm.
    pub fn days_from_epoch(&self) -> i64 {
        let y = if self.month <= 2 { self.year as i64 - 1 } else { self.year as i64 };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let mp = (self.month as i64 + 9) % 12; // [0, 11], March = 0
        let doy = (153 * mp + 2) / 5 + self.day as i64 - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146097 + doe - 719468
    }

    /// Inverse of [`days_from_epoch`](Self::days_from_epoch).
    pub fn from_days_from_epoch(days: i64) -> Self {
        let z = days + 719468;
        let era = if z >= 0 { z } else { z - 146096 } / 146097;
        let doe = z - era * 146097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
        let year = if m <= 2 { y + 1 } else { y } as i32;
        Self { year, month: m, day: d }
    }

    /// The date `days` days later (or earlier, if negative).
    pub fn plus_days(&self, days: i64) -> Self {
        Self::from_days_from_epoch(self.days_from_epoch() + days)
    }

    /// Signed day difference `self - other`.
    pub fn days_since(&self, other: &Date) -> i64 {
        self.days_from_epoch() - other.days_from_epoch()
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Result<Self, DateError> {
        let mut parts = s.splitn(3, '-');
        // A leading '-' would make the first part empty; negative years do
        // not occur in git logs, so reject them.
        let y = parse_int(parts.next(), s)?;
        let m = parse_int(parts.next(), s)?;
        let d = parse_int(parts.next(), s)?;
        Date::new(y as i32, m as u8, d as u8).map_err(|_| DateError::Malformed(s.to_string()))
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A civil datetime with an optional UTC offset — the shape of
/// `git log --date=iso` output (`2015-06-12 14:33:02 +0200`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DateTime {
    /// The commit timestamp.
    pub date: Date,
    /// The hour.
    pub hour: u8,
    /// The minute.
    pub minute: u8,
    /// The second.
    pub second: u8,
    /// Offset from UTC in minutes (e.g. +0200 → 120). Zero when absent.
    pub utc_offset_minutes: i32,
}

impl DateTime {
    /// Midnight local on the given date.
    pub fn midnight(date: Date) -> Self {
        Self { date, hour: 0, minute: 0, second: 0, utc_offset_minutes: 0 }
    }

    /// Construct a validated datetime.
    pub fn new(date: Date, hour: u8, minute: u8, second: u8) -> Result<Self, DateError> {
        if hour > 23 {
            return Err(DateError::OutOfRange { what: "hour", value: hour as i64 });
        }
        if minute > 59 {
            return Err(DateError::OutOfRange { what: "minute", value: minute as i64 });
        }
        if second > 60 {
            // allow leap second notation
            return Err(DateError::OutOfRange { what: "second", value: second as i64 });
        }
        Ok(Self { date, hour, minute, second, utc_offset_minutes: 0 })
    }

    /// Parse the `--date=iso` git format: `YYYY-MM-DD HH:MM:SS +ZZZZ`, with
    /// the time and offset parts optional (`YYYY-MM-DD` alone is accepted);
    /// also tolerates a `T` separator and a trailing `Z`.
    pub fn parse(s: &str) -> Result<Self, DateError> {
        let s = s.trim();
        let (date_part, rest) = match s.find([' ', 'T']) {
            Some(idx) => (&s[..idx], s[idx + 1..].trim()),
            None => (s, ""),
        };
        let date = Date::parse(date_part)?;
        if rest.is_empty() {
            return Ok(Self::midnight(date));
        }
        let (time_part, offset_part) = match rest.find([' ', '+']) {
            Some(idx) if rest.as_bytes()[idx] == b' ' => (&rest[..idx], rest[idx + 1..].trim()),
            Some(idx) => (&rest[..idx], &rest[idx..]),
            None => (rest, ""),
        };
        let time_part = time_part.trim_end_matches('Z');
        let mut hms = time_part.splitn(3, ':');
        let h = parse_int(hms.next(), s)?;
        let m = parse_int(hms.next(), s)?;
        let sec = match hms.next() {
            Some(v) => {
                // Tolerate fractional seconds.
                let v = v.split('.').next().unwrap_or("0");
                v.parse::<i64>().map_err(|_| DateError::Malformed(s.to_string()))?
            }
            None => 0,
        };
        let mut dt = Self::new(date, h as u8, m as u8, sec as u8)?;
        if !offset_part.is_empty() {
            dt.utc_offset_minutes = parse_offset(offset_part, s)?;
        }
        Ok(dt)
    }

    /// Seconds since the Unix epoch, ignoring leap seconds, adjusted to UTC.
    pub fn unix_seconds(&self) -> i64 {
        let days = self.date.days_from_epoch();
        days * 86_400 + self.hour as i64 * 3_600 + self.minute as i64 * 60 + self.second as i64
            - self.utc_offset_minutes as i64 * 60
    }
}

impl PartialOrd for DateTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DateTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.unix_seconds().cmp(&other.unix_seconds())
    }
}

impl fmt::Display for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let off = self.utc_offset_minutes;
        let sign = if off < 0 { '-' } else { '+' };
        let a = off.unsigned_abs();
        write!(
            f,
            "{} {:02}:{:02}:{:02} {}{:02}{:02}",
            self.date,
            self.hour,
            self.minute,
            self.second,
            sign,
            a / 60,
            a % 60
        )
    }
}

/// Days in the given month, accounting for leap years.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Gregorian leap-year rule.
pub fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn parse_int(part: Option<&str>, whole: &str) -> Result<i64, DateError> {
    part.ok_or_else(|| DateError::Malformed(whole.to_string()))?
        .parse::<i64>()
        .map_err(|_| DateError::Malformed(whole.to_string()))
}

fn parse_offset(s: &str, whole: &str) -> Result<i32, DateError> {
    let bytes = s.as_bytes();
    if bytes.is_empty() {
        return Ok(0);
    }
    let (sign, digits) = match bytes[0] {
        b'+' => (1, &s[1..]),
        b'-' => (-1, &s[1..]),
        _ => (1, s),
    };
    // Accept "+0200", "+02:00", "+02".
    let digits = digits.replace(':', "");
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return Err(DateError::Malformed(whole.to_string()));
    }
    let v: i32 = digits.parse().map_err(|_| DateError::Malformed(whole.to_string()))?;
    let (h, m) = if digits.len() <= 2 { (v, 0) } else { (v / 100, v % 100) };
    Ok(sign * (h * 60 + m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date::new(1970, 1, 1).unwrap().days_from_epoch(), 0);
        assert_eq!(Date::new(1970, 1, 2).unwrap().days_from_epoch(), 1);
        assert_eq!(Date::new(1969, 12, 31).unwrap().days_from_epoch(), -1);
    }

    #[test]
    fn known_dates() {
        // 2000-03-01 is day 11017.
        assert_eq!(Date::new(2000, 3, 1).unwrap().days_from_epoch(), 11017);
        // Unix billennium: 2001-09-09 (1e9 seconds / 86400 = 11574 days).
        assert_eq!(Date::new(2001, 9, 9).unwrap().days_from_epoch(), 11574);
    }

    #[test]
    fn round_trip_days() {
        for days in [-100_000i64, -1, 0, 1, 365, 10_000, 20_000, 100_000] {
            let d = Date::from_days_from_epoch(days);
            assert_eq!(d.days_from_epoch(), days, "{d}");
        }
    }

    #[test]
    fn leap_years() {
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(is_leap(2024));
        assert!(!is_leap(2023));
        assert_eq!(days_in_month(2024, 2), 29);
        assert_eq!(days_in_month(2023, 2), 28);
        assert_eq!(days_in_month(2023, 4), 30);
        assert_eq!(days_in_month(2023, 12), 31);
    }

    #[test]
    fn invalid_dates_rejected() {
        assert!(Date::new(2023, 13, 1).is_err());
        assert!(Date::new(2023, 0, 1).is_err());
        assert!(Date::new(2023, 2, 29).is_err());
        assert!(Date::new(2024, 2, 29).is_ok());
        assert!(Date::new(2023, 4, 31).is_err());
    }

    #[test]
    fn date_parsing() {
        assert_eq!(Date::parse("2015-06-12").unwrap(), Date::new(2015, 6, 12).unwrap());
        assert!(Date::parse("2015-6").is_err());
        assert!(Date::parse("not-a-date").is_err());
        assert!(Date::parse("2015-13-01").is_err());
    }

    #[test]
    fn git_iso_datetime_parsing() {
        let dt = DateTime::parse("2015-06-12 14:33:02 +0200").unwrap();
        assert_eq!(dt.date, Date::new(2015, 6, 12).unwrap());
        assert_eq!((dt.hour, dt.minute, dt.second), (14, 33, 2));
        assert_eq!(dt.utc_offset_minutes, 120);
    }

    #[test]
    fn datetime_variants() {
        assert!(DateTime::parse("2015-06-12").is_ok());
        assert!(DateTime::parse("2015-06-12T14:33:02Z").is_ok());
        assert!(DateTime::parse("2015-06-12 14:33:02 -0530").is_ok());
        let dt = DateTime::parse("2015-06-12 14:33:02 -0530").unwrap();
        assert_eq!(dt.utc_offset_minutes, -330);
        assert!(DateTime::parse("garbage").is_err());
    }

    #[test]
    fn datetime_ordering_respects_offset() {
        // 14:00 +0200 is 12:00 UTC; 13:00 +0000 is 13:00 UTC.
        let a = DateTime::parse("2015-06-12 14:00:00 +0200").unwrap();
        let b = DateTime::parse("2015-06-12 13:00:00 +0000").unwrap();
        assert!(a < b);
    }

    #[test]
    fn datetime_display_round_trips() {
        let dt = DateTime::parse("2015-06-12 14:33:02 +0200").unwrap();
        let dt2 = DateTime::parse(&dt.to_string()).unwrap();
        assert_eq!(dt, dt2);
        let neg = DateTime::parse("2015-06-12 14:33:02 -0700").unwrap();
        assert_eq!(DateTime::parse(&neg.to_string()).unwrap(), neg);
    }

    #[test]
    fn plus_days_crosses_boundaries() {
        let d = Date::new(2023, 12, 31).unwrap();
        assert_eq!(d.plus_days(1), Date::new(2024, 1, 1).unwrap());
        assert_eq!(d.plus_days(60), Date::new(2024, 2, 29).unwrap());
        assert_eq!(d.plus_days(-365), Date::new(2022, 12, 31).unwrap());
    }

    #[test]
    fn days_since() {
        let a = Date::new(2024, 3, 1).unwrap();
        let b = Date::new(2024, 2, 1).unwrap();
        assert_eq!(a.days_since(&b), 29);
        assert_eq!(b.days_since(&a), -29);
    }

    #[test]
    fn unix_seconds_known_value() {
        // 2001-09-09 01:46:40 UTC == 1_000_000_000.
        let dt = DateTime::parse("2001-09-09 01:46:40 +0000").unwrap();
        assert_eq!(dt.unix_seconds(), 1_000_000_000);
    }
}
