//! Alternative time quantization: fixed-length day windows instead of
//! calendar months — the ablation knob for the paper's construct-validity
//! choice of "the month as chronon".

use crate::date::Date;

/// Bucket dated events into consecutive `window_days`-day windows starting
/// at the earliest event. Returns `None` for empty input.
pub fn windowed_activity<I>(events: I, window_days: i64) -> Option<(Date, Vec<u64>)>
where
    I: IntoIterator<Item = (Date, u64)>,
{
    assert!(window_days > 0, "window must be positive");
    let events: Vec<(Date, u64)> = events.into_iter().collect();
    let first = events.iter().map(|(d, _)| *d).min()?;
    let last = events.iter().map(|(d, _)| *d).max()?;
    let base = first.days_from_epoch();
    let buckets = ((last.days_from_epoch() - base) / window_days + 1) as usize;
    let mut out = vec![0u64; buckets];
    for (date, amount) in events {
        let idx = ((date.days_from_epoch() - base) / window_days) as usize;
        out[idx] += amount;
    }
    Some((first, out))
}

/// Bucket two event streams onto one shared window axis (anchored at the
/// earlier of the two first events, padded to the later last event).
/// Returns `None` if either stream is empty.
pub fn windowed_pair<A, B>(a: A, b: B, window_days: i64) -> Option<(Date, Vec<u64>, Vec<u64>)>
where
    A: IntoIterator<Item = (Date, u64)>,
    B: IntoIterator<Item = (Date, u64)>,
{
    assert!(window_days > 0, "window must be positive");
    let a: Vec<(Date, u64)> = a.into_iter().collect();
    let b: Vec<(Date, u64)> = b.into_iter().collect();
    let first = a.iter().chain(b.iter()).map(|(d, _)| *d).min()?;
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let last = a.iter().chain(b.iter()).map(|(d, _)| *d).max()?;
    let base = first.days_from_epoch();
    let buckets = ((last.days_from_epoch() - base) / window_days + 1) as usize;
    let mut va = vec![0u64; buckets];
    let mut vb = vec![0u64; buckets];
    for (date, amount) in a {
        va[((date.days_from_epoch() - base) / window_days) as usize] += amount;
    }
    for (date, amount) in b {
        vb[((date.days_from_epoch() - base) / window_days) as usize] += amount;
    }
    Some((first, va, vb))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(days: i64) -> Date {
        Date::from_days_from_epoch(18_000 + days)
    }

    #[test]
    fn thirty_day_windows() {
        let (start, act) =
            windowed_activity(vec![(d(0), 3), (d(29), 2), (d(30), 7), (d(65), 1)], 30).unwrap();
        assert_eq!(start, d(0));
        assert_eq!(act, vec![5, 7, 1]);
    }

    #[test]
    fn single_event() {
        let (_, act) = windowed_activity(vec![(d(5), 9)], 7).unwrap();
        assert_eq!(act, vec![9]);
    }

    #[test]
    fn empty_is_none() {
        assert!(windowed_activity(Vec::<(Date, u64)>::new(), 30).is_none());
    }

    #[test]
    fn totals_conserved_across_window_sizes() {
        let events: Vec<(Date, u64)> = (0..50).map(|i| (d(i * 3), (i % 5) as u64)).collect();
        let total: u64 = events.iter().map(|(_, a)| a).sum();
        for w in [1, 7, 30, 365] {
            let (_, act) = windowed_activity(events.clone(), w).unwrap();
            assert_eq!(act.iter().sum::<u64>(), total, "window {w}");
        }
    }

    #[test]
    fn pair_shares_axis() {
        let (start, a, b) =
            windowed_pair(vec![(d(10), 1)], vec![(d(0), 2), (d(45), 3)], 30).unwrap();
        assert_eq!(start, d(0));
        assert_eq!(a.len(), b.len());
        assert_eq!(a, vec![1, 0]);
        assert_eq!(b, vec![2, 3]);
    }

    #[test]
    fn pair_empty_side_is_none() {
        assert!(windowed_pair(vec![(d(0), 1)], Vec::<(Date, u64)>::new(), 30).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let _ = windowed_activity(vec![(d(0), 1)], 0);
    }
}
