//! Month quantization: the study's chronon.

use crate::date::{Date, DateError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A calendar month (`2015-06`), the time unit of every heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct YearMonth {
    /// The year.
    pub year: i32,
    /// The month.
    pub month: u8,
}

impl YearMonth {
    /// Construct a validated year-month.
    pub fn new(year: i32, month: u8) -> Result<Self, DateError> {
        if !(1..=12).contains(&month) {
            return Err(DateError::OutOfRange { what: "month", value: month as i64 });
        }
        Ok(Self { year, month })
    }

    /// The month containing a date.
    pub fn of(date: Date) -> Self {
        Self { year: date.year, month: date.month }
    }

    /// Linear month index (year*12 + month-1) used for arithmetic.
    pub fn index(&self) -> i64 {
        self.year as i64 * 12 + (self.month as i64 - 1)
    }

    /// Inverse of [`index`](Self::index).
    pub fn from_index(idx: i64) -> Self {
        let year = idx.div_euclid(12) as i32;
        let month = (idx.rem_euclid(12) + 1) as u8;
        Self { year, month }
    }

    /// The month `n` months later (negative = earlier).
    pub fn plus(&self, n: i64) -> Self {
        Self::from_index(self.index() + n)
    }

    /// Signed number of months from `other` to `self`.
    pub fn months_since(&self, other: &YearMonth) -> i64 {
        self.index() - other.index()
    }

    /// First day of the month.
    pub fn first_day(&self) -> Date {
        Date { year: self.year, month: self.month, day: 1 }
    }

    /// Parse `YYYY-MM`.
    pub fn parse(s: &str) -> Result<Self, DateError> {
        let mut parts = s.splitn(2, '-');
        let y: i32 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| DateError::Malformed(s.to_string()))?;
        let m: u8 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| DateError::Malformed(s.to_string()))?;
        Self::new(y, m).map_err(|_| DateError::Malformed(s.to_string()))
    }
}

impl fmt::Display for YearMonth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}", self.year, self.month)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for (y, m) in [(1970, 1), (2015, 6), (1999, 12), (2024, 2)] {
            let ym = YearMonth::new(y, m).unwrap();
            assert_eq!(YearMonth::from_index(ym.index()), ym);
        }
    }

    #[test]
    fn plus_wraps_years() {
        let jan = YearMonth::new(2020, 1).unwrap();
        assert_eq!(jan.plus(11), YearMonth::new(2020, 12).unwrap());
        assert_eq!(jan.plus(12), YearMonth::new(2021, 1).unwrap());
        assert_eq!(jan.plus(-1), YearMonth::new(2019, 12).unwrap());
        assert_eq!(jan.plus(25), YearMonth::new(2022, 2).unwrap());
    }

    #[test]
    fn months_since_is_signed() {
        let a = YearMonth::new(2021, 3).unwrap();
        let b = YearMonth::new(2020, 11).unwrap();
        assert_eq!(a.months_since(&b), 4);
        assert_eq!(b.months_since(&a), -4);
        assert_eq!(a.months_since(&a), 0);
    }

    #[test]
    fn of_date() {
        let d = Date::new(2015, 6, 12).unwrap();
        assert_eq!(YearMonth::of(d), YearMonth::new(2015, 6).unwrap());
    }

    #[test]
    fn ordering_is_chronological() {
        let a = YearMonth::new(2019, 12).unwrap();
        let b = YearMonth::new(2020, 1).unwrap();
        assert!(a < b);
    }

    #[test]
    fn parse_and_display() {
        let ym = YearMonth::parse("2015-06").unwrap();
        assert_eq!(ym, YearMonth::new(2015, 6).unwrap());
        assert_eq!(ym.to_string(), "2015-06");
        assert!(YearMonth::parse("2015").is_err());
        assert!(YearMonth::parse("2015-13").is_err());
    }

    #[test]
    fn validation() {
        assert!(YearMonth::new(2020, 0).is_err());
        assert!(YearMonth::new(2020, 13).is_err());
        assert!(YearMonth::new(2020, 12).is_ok());
    }
}
