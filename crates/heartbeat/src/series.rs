//! Monthly heartbeats: the linear sequence of per-month activity counts.

use crate::cumulative::cumulative_fraction;
use crate::date::Date;
use crate::month::YearMonth;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The widest month span a heartbeat may cover (10 000 years). A span
/// beyond this is always a data error — a mistyped year in a commit date —
/// and would otherwise allocate an absurd activity vector.
pub const MAX_HEARTBEAT_MONTHS: usize = 120_000;

/// Why a heartbeat could not be built from events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeartbeatError {
    /// No events were given; a heartbeat needs at least a birth month.
    Empty,
    /// The events span more months than [`MAX_HEARTBEAT_MONTHS`] — an
    /// out-of-range date. Carries the span and the two offending months.
    SpanExceeded {
        /// The span the events would cover, in months.
        months: usize,
        /// The earliest event month.
        first: YearMonth,
        /// The latest event month.
        last: YearMonth,
    },
}

impl fmt::Display for HeartbeatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "no events: a heartbeat needs at least a birth month"),
            Self::SpanExceeded { months, first, last } => write!(
                f,
                "events span {months} months ({first}..{last}), beyond the \
                 {MAX_HEARTBEAT_MONTHS}-month limit — out-of-range date?"
            ),
        }
    }
}

impl std::error::Error for HeartbeatError {}

/// A monthly activity series anchored at a start month. Element `i` is the
/// activity in month `start + i`; months without updates hold zero, matching
/// the paper's definition of a heartbeat ("with zero activity for the months
/// without updates").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Heartbeat {
    start: YearMonth,
    activity: Vec<u64>,
}

impl Heartbeat {
    /// Build from an explicit start month and per-month values.
    ///
    /// Trailing months are kept as given (a project's lifetime may end with
    /// quiet months); an empty activity vector is normalized to one month of
    /// zero activity.
    pub fn new(start: YearMonth, activity: Vec<u64>) -> Self {
        let activity = if activity.is_empty() { vec![0] } else { activity };
        Self { start, activity }
    }

    /// Bucket dated events into months. Returns `None` when the events
    /// cannot form a heartbeat; the thin `Option` wrapper over
    /// [`Heartbeat::try_from_events`], which reports *why*.
    pub fn from_events<I>(events: I) -> Option<Self>
    where
        I: IntoIterator<Item = (Date, u64)>,
    {
        Self::try_from_events(events).ok()
    }

    /// Bucket dated events into months, with typed errors: no events at all
    /// ([`HeartbeatError::Empty`]) or a month span wide enough to imply an
    /// out-of-range date ([`HeartbeatError::SpanExceeded`]). The series
    /// spans from the month of the earliest event through the month of the
    /// latest.
    pub fn try_from_events<I>(events: I) -> Result<Self, HeartbeatError>
    where
        I: IntoIterator<Item = (Date, u64)>,
    {
        let events: Vec<(Date, u64)> = events.into_iter().collect();
        let months_of = |events: &[(Date, u64)]| {
            let mut ms = events.iter().map(|(d, _)| YearMonth::of(*d));
            let first = ms.next()?;
            let (min, max) = ms.fold((first, first), |(lo, hi), m| (lo.min(m), hi.max(m)));
            Some((min, max))
        };
        let (first, last) = months_of(&events).ok_or(HeartbeatError::Empty)?;
        let months = (last.months_since(&first) + 1) as usize;
        if months > MAX_HEARTBEAT_MONTHS {
            return Err(HeartbeatError::SpanExceeded { months, first, last });
        }
        let mut activity = vec![0u64; months];
        for (date, amount) in events {
            let idx = YearMonth::of(date).months_since(&first) as usize;
            activity[idx] += amount;
        }
        Ok(Self { start: first, activity })
    }

    /// The first month of the series.
    pub fn start(&self) -> YearMonth {
        self.start
    }

    /// The last month of the series.
    pub fn end(&self) -> YearMonth {
        self.start.plus(self.activity.len() as i64 - 1)
    }

    /// Number of months covered (≥ 1).
    pub fn months(&self) -> usize {
        self.activity.len()
    }

    /// Per-month activity values.
    pub fn activity(&self) -> &[u64] {
        &self.activity
    }

    /// Total lifetime activity.
    pub fn total(&self) -> u64 {
        self.activity.iter().sum()
    }

    /// The month label of element `i`.
    pub fn month_at(&self, i: usize) -> YearMonth {
        self.start.plus(i as i64)
    }

    /// Activity in a specific calendar month (zero if outside the series).
    pub fn at(&self, month: YearMonth) -> u64 {
        let off = month.months_since(&self.start);
        if off < 0 {
            return 0;
        }
        self.activity.get(off as usize).copied().unwrap_or(0)
    }

    /// Cumulative fractional activity (Eq. 1 of the paper). All-zero series
    /// yield an all-zero progression (no activity ever accumulates).
    pub fn cumulative_fraction(&self) -> Vec<f64> {
        cumulative_fraction(&self.activity)
    }

    /// Extend (or truncate never — only extend) the series to cover through
    /// `month`, padding with zeros. No-op if already covered.
    pub fn extend_through(&mut self, month: YearMonth) {
        let need = month.months_since(&self.start) + 1;
        if need > self.activity.len() as i64 {
            self.activity.resize(need as usize, 0);
        }
    }

    /// Re-anchor the series to start at an earlier month, padding the front
    /// with zeros. No-op if `month` is not earlier than the current start.
    pub fn rebase_start(&mut self, month: YearMonth) {
        let shift = self.start.months_since(&month);
        if shift > 0 {
            let mut v = vec![0u64; shift as usize];
            v.extend_from_slice(&self.activity);
            self.activity = v;
            self.start = month;
        }
    }

    /// Number of months with non-zero activity.
    pub fn active_months(&self) -> usize {
        self.activity.iter().filter(|&&a| a > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u8, day: u8) -> Date {
        Date::new(y, m, day).unwrap()
    }

    fn ym(y: i32, m: u8) -> YearMonth {
        YearMonth::new(y, m).unwrap()
    }

    #[test]
    fn from_events_buckets_and_pads() {
        let hb = Heartbeat::from_events(vec![
            (d(2015, 1, 5), 2),
            (d(2015, 1, 25), 3),
            (d(2015, 3, 1), 7),
        ])
        .unwrap();
        assert_eq!(hb.start(), ym(2015, 1));
        assert_eq!(hb.end(), ym(2015, 3));
        assert_eq!(hb.activity(), &[5, 0, 7]);
        assert_eq!(hb.total(), 12);
        assert_eq!(hb.active_months(), 2);
    }

    #[test]
    fn from_events_unordered_input() {
        let hb = Heartbeat::from_events(vec![(d(2016, 2, 1), 1), (d(2015, 11, 1), 1)]).unwrap();
        assert_eq!(hb.start(), ym(2015, 11));
        assert_eq!(hb.months(), 4);
        assert_eq!(hb.activity(), &[1, 0, 0, 1]);
    }

    #[test]
    fn from_events_empty_is_none() {
        assert!(Heartbeat::from_events(Vec::<(Date, u64)>::new()).is_none());
        assert_eq!(
            Heartbeat::try_from_events(Vec::<(Date, u64)>::new()),
            Err(HeartbeatError::Empty)
        );
    }

    #[test]
    fn try_from_events_matches_from_events() {
        let events = vec![(d(2015, 1, 5), 2), (d(2016, 3, 1), 7)];
        assert_eq!(
            Heartbeat::try_from_events(events.clone()).ok(),
            Heartbeat::from_events(events)
        );
    }

    #[test]
    fn try_from_events_rejects_absurd_spans() {
        let events = vec![(d(2015, 1, 5), 2), (d(99_999, 1, 1), 1)];
        let err = Heartbeat::try_from_events(events.clone()).unwrap_err();
        let HeartbeatError::SpanExceeded { months, first, last } = err else {
            panic!("expected SpanExceeded, got {err:?}");
        };
        assert!(months > MAX_HEARTBEAT_MONTHS);
        assert_eq!(first, ym(2015, 1));
        assert_eq!(last, YearMonth::new(99_999, 1).unwrap());
        // The Option wrapper maps the error to None.
        assert!(Heartbeat::from_events(events).is_none());
        // Errors render something actionable.
        let msg = HeartbeatError::Empty.to_string();
        assert!(msg.contains("birth month"), "{msg}");
    }

    #[test]
    fn single_event() {
        let hb = Heartbeat::from_events(vec![(d(2020, 5, 15), 9)]).unwrap();
        assert_eq!(hb.months(), 1);
        assert_eq!(hb.total(), 9);
        assert_eq!(hb.cumulative_fraction(), vec![1.0]);
    }

    #[test]
    fn empty_new_is_one_quiet_month() {
        let hb = Heartbeat::new(ym(2020, 1), vec![]);
        assert_eq!(hb.months(), 1);
        assert_eq!(hb.total(), 0);
    }

    #[test]
    fn at_outside_range_is_zero() {
        let hb = Heartbeat::new(ym(2020, 1), vec![1, 2]);
        assert_eq!(hb.at(ym(2019, 12)), 0);
        assert_eq!(hb.at(ym(2020, 1)), 1);
        assert_eq!(hb.at(ym(2020, 2)), 2);
        assert_eq!(hb.at(ym(2020, 3)), 0);
    }

    #[test]
    fn cumulative_fraction_matches_paper_example() {
        // Paper §3.2: monthly percentages 40/25/20/15 → cumulative 40/65/85/100.
        let hb = Heartbeat::new(ym(2020, 1), vec![40, 25, 20, 15]);
        let cf = hb.cumulative_fraction();
        let expect = [0.40, 0.65, 0.85, 1.0];
        for (got, want) in cf.iter().zip(expect.iter()) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn all_zero_series_has_zero_progress() {
        let hb = Heartbeat::new(ym(2020, 1), vec![0, 0, 0]);
        assert_eq!(hb.cumulative_fraction(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn extend_through_pads_with_zeros() {
        let mut hb = Heartbeat::new(ym(2020, 1), vec![5]);
        hb.extend_through(ym(2020, 4));
        assert_eq!(hb.activity(), &[5, 0, 0, 0]);
        // No-op when already covered.
        hb.extend_through(ym(2020, 2));
        assert_eq!(hb.months(), 4);
    }

    #[test]
    fn rebase_start_pads_front() {
        let mut hb = Heartbeat::new(ym(2020, 3), vec![7, 1]);
        hb.rebase_start(ym(2020, 1));
        assert_eq!(hb.start(), ym(2020, 1));
        assert_eq!(hb.activity(), &[0, 0, 7, 1]);
        // No-op when month is later than start.
        hb.rebase_start(ym(2020, 6));
        assert_eq!(hb.start(), ym(2020, 1));
    }

    #[test]
    fn month_at_indexing() {
        let hb = Heartbeat::new(ym(2019, 11), vec![1, 1, 1]);
        assert_eq!(hb.month_at(0), ym(2019, 11));
        assert_eq!(hb.month_at(2), ym(2020, 1));
    }
}
