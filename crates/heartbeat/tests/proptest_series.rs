//! Property tests over dates, months, and cumulative series invariants.

use coevo_heartbeat::align::JointProgress;
use coevo_heartbeat::{
    cumulative_fraction, time_progress, Date, DateTime, Heartbeat, YearMonth,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn date_days_round_trip(days in -200_000i64..200_000) {
        let d = Date::from_days_from_epoch(days);
        prop_assert_eq!(d.days_from_epoch(), days);
        // And the components are valid.
        prop_assert!(Date::new(d.year, d.month, d.day).is_ok());
    }

    #[test]
    fn date_ordering_matches_day_number(a in -100_000i64..100_000, b in -100_000i64..100_000) {
        let da = Date::from_days_from_epoch(a);
        let db = Date::from_days_from_epoch(b);
        prop_assert_eq!(da.cmp(&db), a.cmp(&b));
    }

    #[test]
    fn datetime_display_parse_round_trip(
        days in 0i64..40_000,
        h in 0u8..24, m in 0u8..60, s in 0u8..60,
        off in -14i32..=14,
    ) {
        let mut dt = DateTime::new(Date::from_days_from_epoch(days), h, m, s).unwrap();
        dt.utc_offset_minutes = off * 60;
        let parsed = DateTime::parse(&dt.to_string()).unwrap();
        prop_assert_eq!(parsed, dt);
    }

    #[test]
    fn month_index_round_trip(idx in -50_000i64..50_000) {
        let ym = YearMonth::from_index(idx);
        prop_assert_eq!(ym.index(), idx);
    }

    #[test]
    fn month_plus_is_additive(idx in -10_000i64..10_000, a in -500i64..500, b in -500i64..500) {
        let ym = YearMonth::from_index(idx);
        prop_assert_eq!(ym.plus(a).plus(b), ym.plus(a + b));
    }

    #[test]
    fn cumulative_is_monotone_and_bounded(activity in prop::collection::vec(0u64..1000, 1..120)) {
        let cf = cumulative_fraction(&activity);
        prop_assert_eq!(cf.len(), activity.len());
        for w in cf.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
        for &v in &cf {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        }
        let total: u64 = activity.iter().sum();
        if total > 0 {
            prop_assert!((cf.last().unwrap() - 1.0).abs() < 1e-9);
        } else {
            prop_assert!(cf.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn time_progress_is_strictly_increasing(months in 1usize..200) {
        let tp = time_progress(months);
        prop_assert_eq!(tp.len(), months);
        for w in tp.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        prop_assert!((tp.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn heartbeat_from_events_conserves_total(
        events in prop::collection::vec((0i64..20_000, 0u64..50), 1..60)
    ) {
        let evts: Vec<(Date, u64)> = events
            .iter()
            .map(|&(d, a)| (Date::from_days_from_epoch(d), a))
            .collect();
        let total: u64 = evts.iter().map(|(_, a)| a).sum();
        let hb = Heartbeat::from_events(evts).unwrap();
        prop_assert_eq!(hb.total(), total);
        // Axis invariants.
        prop_assert!(hb.months() >= 1);
        prop_assert!(hb.end() >= hb.start());
    }

    #[test]
    fn joint_progress_axes_always_agree(
        p_start in 0i64..600, p_act in prop::collection::vec(0u64..30, 1..80),
        s_offset in 0i64..40, s_act in prop::collection::vec(0u64..30, 1..80),
    ) {
        let p0 = YearMonth::from_index(24_000 + p_start);
        let p = Heartbeat::new(p0, p_act);
        let s = Heartbeat::new(p0.plus(s_offset), s_act);
        let j = JointProgress::from_heartbeats(&p, &s);
        prop_assert_eq!(j.project.len(), j.schema.len());
        prop_assert_eq!(j.project.len(), j.time.len());
        prop_assert!(j.months() >= p.months());
        // Time always ends at 1; activity ends at 1 iff total > 0.
        prop_assert!((j.time.last().unwrap() - 1.0).abs() < 1e-12);
    }
}
