//! Parse-error types for the DDL lexer and parser.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ParseError>;

/// What went wrong while lexing or parsing a DDL script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// A character the lexer cannot start any token with.
    UnexpectedChar(char),
    /// A string / quoted identifier / comment that never terminates.
    UnterminatedLiteral(&'static str),
    /// The parser found a token it did not expect.
    /// The expected.
    UnexpectedToken {
        /// What the parser expected.
        expected: String,
        /// What was found instead.
        found: String,
    },
    /// Input ended in the middle of a statement.
    /// The expected.
    UnexpectedEof {
        /// What the parser expected.
        expected: String,
    },
    /// A statement references a table that does not exist (during apply).
    UnknownTable(String),
    /// A statement references a column that does not exist (during apply).
    /// The table name.
    UnknownColumn {
        /// The table name, as written.
        table: String,
        /// The column name.
        column: String,
    },
    /// A duplicate object definition (e.g. two tables with the same name).
    /// The what.
    Duplicate {
        /// What kind of object was involved.
        what: &'static str,
        /// The object name.
        name: String,
    },
    /// A numeric literal that does not fit the expected representation.
    BadNumber(String),
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            Self::UnterminatedLiteral(what) => write!(f, "unterminated {what}"),
            Self::UnexpectedToken { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            Self::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            Self::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            Self::UnknownColumn { table, column } => {
                write!(f, "unknown column {column:?} in table {table:?}")
            }
            Self::Duplicate { what, name } => write!(f, "duplicate {what} {name:?}"),
            Self::BadNumber(s) => write!(f, "malformed number {s:?}"),
        }
    }
}

/// A parse error with source position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The kind of this item.
    pub kind: ParseErrorKind,
    /// 1-based line in the source text.
    pub line: u32,
    /// 1-based column in the source text.
    pub column: u32,
}

impl ParseError {
    /// Construct a new instance.
    pub fn new(kind: ParseErrorKind, line: u32, column: u32) -> Self {
        Self { kind, line, column }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at line {}, column {}", self.kind, self.line, self.column)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new(ParseErrorKind::UnexpectedChar('\u{7f}'), 3, 14);
        let s = e.to_string();
        assert!(s.contains("line 3"), "{s}");
        assert!(s.contains("column 14"), "{s}");
    }

    #[test]
    fn display_unexpected_token() {
        let e = ParseError::new(
            ParseErrorKind::UnexpectedToken {
                expected: "identifier".into(),
                found: "','".into(),
            },
            1,
            1,
        );
        assert!(e.to_string().contains("expected identifier"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        let e = ParseError::new(ParseErrorKind::UnknownTable("t".into()), 1, 1);
        takes_err(&e);
    }
}
