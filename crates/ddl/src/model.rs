//! The logical schema object model.
//!
//! This is the measurement construct of the study: relations, their typed
//! attributes, and primary-key participation. Tables keep their columns in
//! declaration order (order changes are not evolution events in the paper,
//! but the printer preserves them); lookups are case-insensitive, matching
//! SQL's treatment of unquoted identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed SQL data type: base name plus optional parameters, e.g.
/// `VARCHAR(255)`, `DECIMAL(10,2)`, `INT`, `ENUM('a','b')`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SqlType {
    /// Uppercased base type name, possibly multi-word (`DOUBLE PRECISION`).
    pub name: String,
    /// Raw parameter list text items, e.g. `["255"]`, `["10", "2"]`,
    /// `["'a'", "'b'"]` for enums.
    pub params: Vec<String>,
    /// Trailing modifiers that are part of the type in MySQL
    /// (`UNSIGNED`, `ZEROFILL`) — uppercased.
    pub modifiers: Vec<String>,
}

impl SqlType {
    /// A parameterless type.
    pub fn simple(name: &str) -> Self {
        Self { name: name.to_ascii_uppercase(), params: Vec::new(), modifiers: Vec::new() }
    }

    /// A type with parameters, e.g. `SqlType::with_params("VARCHAR", &["255"])`.
    pub fn with_params(name: &str, params: &[&str]) -> Self {
        Self {
            name: name.to_ascii_uppercase(),
            params: params.iter().map(|s| s.to_string()).collect(),
            modifiers: Vec::new(),
        }
    }

    /// Two types are *equivalent* for evolution measurement if their base
    /// name, parameters, and modifiers match. (`INT` vs `INTEGER` and other
    /// alias pairs are normalized at parse time.)
    pub fn equivalent(&self, other: &SqlType) -> bool {
        self == other
    }
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.params.is_empty() {
            write!(f, "({})", self.params.join(","))?;
        }
        for m in &self.modifiers {
            write!(f, " {m}")?;
        }
        Ok(())
    }
}

/// A column (attribute) of a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Name as written (original case preserved).
    pub name: String,
    /// The declared SQL data type.
    pub sql_type: SqlType,
    /// The nullable.
    pub nullable: bool,
    /// Whether a DEFAULT clause is present (the expression itself is kept as
    /// raw text for printing; it does not participate in evolution metrics).
    pub default: Option<String>,
    /// MySQL AUTO_INCREMENT / Postgres SERIAL-derived identity flag.
    pub auto_increment: bool,
    /// Declared inline as `PRIMARY KEY` on the column.
    pub inline_primary_key: bool,
    /// Declared inline as `UNIQUE` on the column.
    pub unique: bool,
    /// COMMENT 'text' if present (MySQL).
    pub comment: Option<String>,
}

impl Column {
    /// A nullable column of the given type with no constraints.
    pub fn new(name: &str, sql_type: SqlType) -> Self {
        Self {
            name: name.to_string(),
            sql_type,
            nullable: true,
            default: None,
            auto_increment: false,
            inline_primary_key: false,
            unique: false,
            comment: None,
        }
    }

    /// Case-insensitive name comparison key.
    pub fn key(&self) -> String {
        self.name.to_ascii_lowercase()
    }
}

/// A table-level constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TableConstraint {
    /// A table-level `PRIMARY KEY` constraint.
    PrimaryKey {
        /// The object name.
        name: Option<String>,
        /// The column names.
        columns: Vec<String>,
    },
    /// A `UNIQUE` constraint.
    Unique {
        /// The object name.
        name: Option<String>,
        /// The column names.
        columns: Vec<String>,
    },
    /// A `FOREIGN KEY` reference.
    ForeignKey(ForeignKey),
    /// CHECK constraints are retained as raw text (never diffed).
    /// The name, as written in the source.
    Check {
        /// The object name.
        name: Option<String>,
        /// The expr.
        expr: String,
    },
}

/// A foreign-key reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// The name, as written in the source.
    pub name: Option<String>,
    /// The referenced column names.
    pub columns: Vec<String>,
    /// The foreign table.
    pub foreign_table: String,
    /// The foreign columns.
    pub foreign_columns: Vec<String>,
    /// Raw text of ON DELETE / ON UPDATE actions, if any.
    pub actions: Vec<String>,
}

/// A secondary index (MySQL `KEY`/`INDEX` entries and `CREATE INDEX`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexDef {
    /// The name, as written in the source.
    pub name: Option<String>,
    /// The referenced column names.
    pub columns: Vec<String>,
    /// The unique.
    pub unique: bool,
}

/// A relation: named, with ordered typed attributes and constraints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Name as written (original case preserved); schema-qualified prefixes
    /// (`public.`) are stripped at parse time.
    pub name: String,
    /// The referenced column names.
    pub columns: Vec<Column>,
    /// The constraints.
    pub constraints: Vec<TableConstraint>,
    /// The indexes.
    pub indexes: Vec<IndexDef>,
}

impl Table {
    /// Construct a new instance.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            columns: Vec::new(),
            constraints: Vec::new(),
            indexes: Vec::new(),
        }
    }

    /// Case-insensitive name comparison key.
    pub fn key(&self) -> String {
        self.name.to_ascii_lowercase()
    }

    /// Look up a column case-insensitively.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Mutable case-insensitive column lookup.
    pub fn column_mut(&mut self, name: &str) -> Option<&mut Column> {
        self.columns.iter_mut().find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// The effective primary-key column names (lowercased), merging inline
    /// `PRIMARY KEY` column flags and table-level PRIMARY KEY constraints.
    pub fn primary_key(&self) -> Vec<String> {
        let mut pk: Vec<String> = self
            .columns
            .iter()
            .filter(|c| c.inline_primary_key)
            .map(|c| c.key())
            .collect();
        for constraint in &self.constraints {
            if let TableConstraint::PrimaryKey { columns, .. } = constraint {
                for col in columns {
                    let k = col.to_ascii_lowercase();
                    if !pk.contains(&k) {
                        pk.push(k);
                    }
                }
            }
        }
        pk
    }

    /// All foreign keys (table-level only; inline REFERENCES are promoted to
    /// table constraints by the parser).
    pub fn foreign_keys(&self) -> impl Iterator<Item = &ForeignKey> {
        self.constraints.iter().filter_map(|c| match c {
            TableConstraint::ForeignKey(fk) => Some(fk),
            _ => None,
        })
    }
}

/// A whole logical schema: an ordered collection of tables.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Schema {
    /// The referenced tables.
    pub tables: Vec<Table>,
}

impl Schema {
    /// Construct a new instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a table case-insensitively.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Mutable case-insensitive table lookup.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.iter_mut().find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Remove a table by name (case-insensitive); returns it if present.
    pub fn remove_table(&mut self, name: &str) -> Option<Table> {
        let idx = self.tables.iter().position(|t| t.name.eq_ignore_ascii_case(name))?;
        Some(self.tables.remove(idx))
    }

    /// Total number of attributes across all tables — the paper's measure of
    /// schema size.
    pub fn attribute_count(&self) -> usize {
        self.tables.iter().map(|t| t.columns.len()).sum()
    }

    /// True if the schema defines no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users_table() -> Table {
        let mut t = Table::new("Users");
        let mut id = Column::new("id", SqlType::simple("int"));
        id.inline_primary_key = true;
        id.nullable = false;
        t.columns.push(id);
        t.columns.push(Column::new("email", SqlType::with_params("varchar", &["255"])));
        t
    }

    #[test]
    fn sql_type_display() {
        assert_eq!(SqlType::simple("int").to_string(), "INT");
        assert_eq!(SqlType::with_params("varchar", &["255"]).to_string(), "VARCHAR(255)");
        let mut t = SqlType::with_params("decimal", &["10", "2"]);
        t.modifiers.push("UNSIGNED".into());
        assert_eq!(t.to_string(), "DECIMAL(10,2) UNSIGNED");
    }

    #[test]
    fn case_insensitive_lookups() {
        let mut s = Schema::new();
        s.tables.push(users_table());
        assert!(s.table("users").is_some());
        assert!(s.table("USERS").is_some());
        assert!(s.table("nope").is_none());
        let t = s.table("users").unwrap();
        assert!(t.column("EMAIL").is_some());
        assert!(t.column("missing").is_none());
    }

    #[test]
    fn primary_key_merges_inline_and_table_level() {
        let mut t = users_table();
        assert_eq!(t.primary_key(), vec!["id".to_string()]);
        t.constraints.push(TableConstraint::PrimaryKey {
            name: None,
            columns: vec!["email".into()],
        });
        assert_eq!(t.primary_key(), vec!["id".to_string(), "email".to_string()]);
    }

    #[test]
    fn primary_key_dedupes() {
        let mut t = users_table();
        t.constraints.push(TableConstraint::PrimaryKey {
            name: None,
            columns: vec!["ID".into()],
        });
        assert_eq!(t.primary_key(), vec!["id".to_string()]);
    }

    #[test]
    fn remove_table_returns_removed() {
        let mut s = Schema::new();
        s.tables.push(users_table());
        let removed = s.remove_table("USERS").unwrap();
        assert_eq!(removed.name, "Users");
        assert!(s.is_empty());
        assert!(s.remove_table("users").is_none());
    }

    #[test]
    fn attribute_count_sums_tables() {
        let mut s = Schema::new();
        s.tables.push(users_table());
        s.tables.push(users_table());
        assert_eq!(s.attribute_count(), 4);
    }

    #[test]
    fn foreign_keys_iterates_only_fks() {
        let mut t = users_table();
        t.constraints.push(TableConstraint::Check { name: None, expr: "id > 0".into() });
        t.constraints.push(TableConstraint::ForeignKey(ForeignKey {
            name: None,
            columns: vec!["email".into()],
            foreign_table: "emails".into(),
            foreign_columns: vec!["addr".into()],
            actions: vec![],
        }));
        assert_eq!(t.foreign_keys().count(), 1);
    }
}
