//! The logical schema object model.
//!
//! This is the measurement construct of the study: relations, their typed
//! attributes, and primary-key participation. Tables keep their columns in
//! declaration order (order changes are not evolution events in the paper,
//! but the printer preserves them); lookups are case-insensitive, matching
//! SQL's treatment of unquoted identifiers.
//!
//! Every name is an [`Ident`]: original spelling plus a precomputed
//! case-folded key, and — when the parse went through an [`Interner`]
//! (see [`crate::parse_schema_interned`]) — a [`Symbol`] so two schemas
//! parsed through the same interner can compare names as integers.
//!
//! [`Interner`]: crate::intern::Interner

use crate::fingerprint::{self, Fingerprint};
use crate::intern::{Ident, Symbol};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A parsed SQL data type: base name plus optional parameters, e.g.
/// `VARCHAR(255)`, `DECIMAL(10,2)`, `INT`, `ENUM('a','b')`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SqlType {
    /// Uppercased base type name, possibly multi-word (`DOUBLE PRECISION`).
    pub name: Ident,
    /// Raw parameter list text items, e.g. `["255"]`, `["10", "2"]`,
    /// `["'a'", "'b'"]` for enums. Interned: the handful of distinct
    /// parameter spellings a project uses (`10`, `2`, `255`, …) are shared
    /// `Arc<str>`s, so re-parsing a parameterized column allocates nothing
    /// for its parameters on a warm interner.
    pub params: Vec<Ident>,
    /// Trailing modifiers that are part of the type in MySQL
    /// (`UNSIGNED`, `ZEROFILL`) — uppercased.
    pub modifiers: Vec<String>,
}

impl SqlType {
    /// A parameterless type.
    pub fn simple(name: &str) -> Self {
        Self {
            name: Ident::from(name.to_ascii_uppercase()),
            params: Vec::new(),
            modifiers: Vec::new(),
        }
    }

    /// A type with parameters, e.g. `SqlType::with_params("VARCHAR", &["255"])`.
    pub fn with_params(name: &str, params: &[&str]) -> Self {
        Self {
            name: Ident::from(name.to_ascii_uppercase()),
            params: params.iter().map(|s| Ident::new(s)).collect(),
            modifiers: Vec::new(),
        }
    }

    /// Two types are *equivalent* for evolution measurement if their base
    /// name, parameters, and modifiers match. (`INT` vs `INTEGER` and other
    /// alias pairs are normalized at parse time.)
    pub fn equivalent(&self, other: &SqlType) -> bool {
        self == other
    }
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.params.is_empty() {
            write!(f, "({})", self.params.join(","))?;
        }
        for m in &self.modifiers {
            write!(f, " {m}")?;
        }
        Ok(())
    }
}

/// A column (attribute) of a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Name as written (original case preserved).
    pub name: Ident,
    /// The declared SQL data type.
    pub sql_type: SqlType,
    /// The nullable.
    pub nullable: bool,
    /// Whether a DEFAULT clause is present (the expression itself is kept as
    /// raw text for printing; it does not participate in evolution metrics).
    pub default: Option<String>,
    /// MySQL AUTO_INCREMENT / Postgres SERIAL-derived identity flag.
    pub auto_increment: bool,
    /// Declared inline as `PRIMARY KEY` on the column.
    pub inline_primary_key: bool,
    /// Declared inline as `UNIQUE` on the column.
    pub unique: bool,
    /// COMMENT 'text' if present (MySQL).
    pub comment: Option<String>,
}

impl Column {
    /// A nullable column of the given type with no constraints.
    pub fn new(name: impl Into<Ident>, sql_type: SqlType) -> Self {
        Self {
            name: name.into(),
            sql_type,
            nullable: true,
            default: None,
            auto_increment: false,
            inline_primary_key: false,
            unique: false,
            comment: None,
        }
    }

    /// Case-insensitive name comparison key. Precomputed at [`Ident`]
    /// construction — this borrows; it never allocates.
    pub fn key(&self) -> &str {
        self.name.key()
    }
}

/// A table-level constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TableConstraint {
    /// A table-level `PRIMARY KEY` constraint.
    PrimaryKey {
        /// The object name.
        name: Option<Ident>,
        /// The column names.
        columns: Vec<Ident>,
    },
    /// A `UNIQUE` constraint.
    Unique {
        /// The object name.
        name: Option<Ident>,
        /// The column names.
        columns: Vec<Ident>,
    },
    /// A `FOREIGN KEY` reference.
    ForeignKey(ForeignKey),
    /// CHECK constraints are retained as raw text (never diffed).
    /// The name, as written in the source.
    Check {
        /// The object name.
        name: Option<Ident>,
        /// The expr.
        expr: String,
    },
}

/// A foreign-key reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// The name, as written in the source.
    pub name: Option<Ident>,
    /// The referenced column names.
    pub columns: Vec<Ident>,
    /// The foreign table.
    pub foreign_table: Ident,
    /// The foreign columns.
    pub foreign_columns: Vec<Ident>,
    /// Raw text of ON DELETE / ON UPDATE actions, if any.
    pub actions: Vec<String>,
}

/// A secondary index (MySQL `KEY`/`INDEX` entries and `CREATE INDEX`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexDef {
    /// The name, as written in the source.
    pub name: Option<Ident>,
    /// The referenced column names.
    pub columns: Vec<Ident>,
    /// The unique.
    pub unique: bool,
}

/// Sort `(symbol, declaration index)` pairs so a binary search can resolve a
/// symbol to the *last* declaration carrying it (matching folded-key maps).
fn build_sym_index(syms: impl ExactSizeIterator<Item = u32>) -> Vec<(u32, usize)> {
    let mut v: Vec<(u32, usize)> = syms.enumerate().map(|(i, s)| (s, i)).collect();
    v.sort_unstable();
    v
}

/// Last declaration index carrying `sym`, if any.
fn sym_lookup(v: &[(u32, usize)], sym: u32) -> Option<usize> {
    let end = v.partition_point(|&(s, _)| s <= sym);
    if end > 0 && v[end - 1].0 == sym {
        Some(v[end - 1].1)
    } else {
        None
    }
}

/// The shared interner id of a sequence of idents: nonzero only when every
/// ident was interned and all by the same interner. `empty_default` is used
/// for an empty sequence.
fn common_iid<'a>(mut idents: impl Iterator<Item = &'a Ident>, empty_default: u32) -> u32 {
    match idents.next() {
        None => empty_default,
        Some(first) => {
            let iid = first.interner_id();
            if iid != 0 && idents.all(|i| i.interner_id() == iid) {
                iid
            } else {
                0
            }
        }
    }
}

/// Parse-time cache of a table's derived lookup data: its case-folded name
/// key, the folded key and [`Symbol`] of every column (declaration order),
/// key → index and symbol → index maps, the resolved primary key, and the
/// table's structural [`Fingerprint`].
///
/// Seals are *derived* state — they never serialize, never participate in
/// equality, and are dropped by every `&mut` accessor so they can only
/// describe the current structure. A hand-built or deserialized table simply
/// has no seal; all consumers fall back to computing the same data on the
/// fly.
///
/// The folded keys are `Arc<str>` clones of the idents' own folded text, so
/// sealing bumps refcounts instead of copying strings.
#[derive(Debug, Clone)]
pub struct TableSeal {
    key: Arc<str>,
    /// `(folded key, symbol)` of every column, declaration order. One vector
    /// instead of two parallel ones: sealing a table costs a fixed, small
    /// number of allocations, and this is on the per-version cold path.
    cols: Vec<(Arc<str>, u32)>,
    by_key: BTreeMap<Arc<str>, usize>,
    by_sym: Vec<(u32, usize)>,
    /// Shared interner id of all column names (0 = mixed or uninterned;
    /// symbol comparisons are only meaningful when both sides share a
    /// nonzero id).
    iid: u32,
    pk: PkSeal,
    fingerprint: Fingerprint,
}

/// The resolved effective primary key of a sealed table, in one of two
/// representations — never both, so the common case allocates one vector.
#[derive(Debug, Clone)]
enum PkSeal {
    /// Every pk name resolved to a declared column and the seal's interner
    /// id is nonzero: stored as symbols. The diff fast path borrows this
    /// slice directly; folded keys are recovered through `by_sym` on demand.
    Syms(Vec<u32>),
    /// Fallback with string semantics: folded keys (uninterned or
    /// mixed-interner tables, or a PK naming a column never declared).
    Keys(Vec<Arc<str>>),
}

impl TableSeal {
    fn build(table: &Table) -> Self {
        let cols: Vec<(Arc<str>, u32)> =
            table.columns.iter().map(|c| (c.name.key_arc(), c.name.symbol().0)).collect();
        let iid = common_iid(table.columns.iter().map(|c| &c.name), table.name.interner_id());
        // Duplicate keys: last declaration wins, matching the `collect()`
        // semantics of the map the diff core used to rebuild per call.
        let by_key: BTreeMap<Arc<str>, usize> =
            cols.iter().enumerate().map(|(i, (k, _))| (k.clone(), i)).collect();
        let by_sym = build_sym_index(cols.iter().map(|&(_, s)| s));
        // Resolve the effective primary key directly against the folded keys
        // instead of materializing [`Table::primary_key`]'s `Vec<String>`:
        // same order and dedup semantics (inline flags first, then table
        // constraints, constraint keys deduped against what's already there),
        // but the common case allocates one vector of symbols. Within one
        // nonzero interner id two names fold equal exactly when their
        // symbols are equal, so the symbol form loses no information; the
        // first unresolved name (or an uninterned table) downgrades to keys.
        let mut pk = if iid != 0 { PkSeal::Syms(Vec::new()) } else { PkSeal::Keys(Vec::new()) };
        for (i, c) in table.columns.iter().enumerate() {
            if c.inline_primary_key {
                match &mut pk {
                    PkSeal::Syms(v) => v.push(cols[i].1),
                    PkSeal::Keys(v) => v.push(cols[i].0.clone()),
                }
            }
        }
        for constraint in &table.constraints {
            let TableConstraint::PrimaryKey { columns, .. } = constraint else {
                continue;
            };
            for col in columns {
                let k = col.key();
                let resolved = by_key.get(k).copied();
                let dup = match (&pk, resolved) {
                    // Every pushed symbol came from a declared column, so an
                    // unresolved key cannot duplicate one.
                    (PkSeal::Syms(v), Some(i)) => v.contains(&cols[i].1),
                    (PkSeal::Syms(_), None) => false,
                    (PkSeal::Keys(v), _) => v.iter().any(|p| &**p == k),
                };
                if dup {
                    continue;
                }
                match resolved {
                    Some(i) => match &mut pk {
                        PkSeal::Syms(v) => v.push(cols[i].1),
                        PkSeal::Keys(v) => v.push(cols[i].0.clone()),
                    },
                    None => {
                        // PK references a column the table does not declare
                        // (tolerated by the model): no symbol to compare by,
                        // so the whole pk downgrades to string semantics.
                        if let PkSeal::Syms(syms) = &pk {
                            let keys = syms
                                .iter()
                                .map(|&s| {
                                    let i = sym_lookup(&by_sym, s)
                                        .expect("pk symbol sealed from a declared column");
                                    cols[i].0.clone()
                                })
                                .collect();
                            pk = PkSeal::Keys(keys);
                        }
                        match &mut pk {
                            PkSeal::Keys(v) => v.push(Arc::from(k)),
                            PkSeal::Syms(_) => unreachable!("downgraded above"),
                        }
                    }
                }
            }
        }
        Self {
            key: table.name.key_arc(),
            cols,
            by_key,
            by_sym,
            iid,
            pk,
            fingerprint: fingerprint::of_table(table),
        }
    }

    /// The table's case-folded name key.
    pub fn table_key(&self) -> &str {
        &self.key
    }

    /// The case-folded key of column `i` (declaration order).
    pub fn column_key(&self, i: usize) -> &str {
        &self.cols[i].0
    }

    /// The symbol of column `i` (declaration order). Only meaningful when
    /// [`interner_id`](Self::interner_id) is nonzero.
    pub fn column_sym(&self, i: usize) -> Symbol {
        Symbol(self.cols[i].1)
    }

    /// Index of the column with the given folded key (last declaration wins
    /// on duplicates).
    pub fn column_index(&self, key: &str) -> Option<usize> {
        self.by_key.get(key).copied()
    }

    /// Index of the column with the given symbol (last declaration wins on
    /// duplicates). Only meaningful when the caller verified both sides
    /// share this seal's nonzero [`interner_id`](Self::interner_id).
    pub fn column_index_by_sym(&self, sym: Symbol) -> Option<usize> {
        sym_lookup(&self.by_sym, sym.0)
    }

    /// Shared interner id of all column-name idents; 0 when the columns are
    /// uninterned or mixed across interners (then symbol lookups must not
    /// be used).
    pub fn interner_id(&self) -> u32 {
        self.iid
    }

    /// Number of columns in the effective primary key.
    pub fn pk_len(&self) -> usize {
        match &self.pk {
            PkSeal::Syms(v) => v.len(),
            PkSeal::Keys(v) => v.len(),
        }
    }

    /// The case-folded key of primary-key column `j` (pk order, deduped) —
    /// the precomputed equivalent of indexing [`Table::primary_key`],
    /// borrowing instead of allocating.
    pub fn pk_key(&self, j: usize) -> &str {
        match &self.pk {
            PkSeal::Syms(v) => {
                let i = sym_lookup(&self.by_sym, v[j])
                    .expect("pk symbol sealed from a declared column");
                &self.cols[i].0
            }
            PkSeal::Keys(v) => &v[j],
        }
    }

    /// The effective primary-key column keys (lowercased, deduped, in
    /// order).
    pub fn pk_keys(&self) -> impl ExactSizeIterator<Item = &str> {
        (0..self.pk_len()).map(|j| self.pk_key(j))
    }

    /// Symbols of the primary-key columns, present only when every pk name
    /// resolved to a declared column and the seal's interner id is nonzero.
    pub fn pk_syms(&self) -> Option<&[u32]> {
        match &self.pk {
            PkSeal::Syms(v) => Some(v),
            PkSeal::Keys(_) => None,
        }
    }

    /// Number of columns covered by the seal.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when the sealed table has no columns.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// The table's structural fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }
}

/// Parse-time cache of a schema's derived lookup data: case-folded
/// table-key → index and symbol → index maps and the schema's structural
/// [`Fingerprint`]. Same lifecycle rules as [`TableSeal`].
#[derive(Debug, Clone)]
pub struct SchemaSeal {
    by_key: BTreeMap<Arc<str>, usize>,
    by_sym: Vec<(u32, usize)>,
    /// Shared interner id of all table-name idents (0 = mixed/uninterned).
    iid: u32,
    fingerprint: Fingerprint,
}

impl SchemaSeal {
    fn build(schema: &Schema) -> Self {
        Self {
            by_key: schema
                .tables
                .iter()
                .enumerate()
                .map(|(i, t)| (t.name.key_arc(), i))
                .collect(),
            by_sym: build_sym_index(schema.tables.iter().map(|t| t.name.symbol().0)),
            iid: common_iid(schema.tables.iter().map(|t| &t.name), 0),
            fingerprint: fingerprint::of_schema(schema),
        }
    }

    /// Index of the table with the given folded key (last declaration wins
    /// on duplicates).
    pub fn table_index(&self, key: &str) -> Option<usize> {
        self.by_key.get(key).copied()
    }

    /// Index of the table with the given symbol (last declaration wins on
    /// duplicates). Only meaningful when the caller verified both sides
    /// share this seal's nonzero [`interner_id`](Self::interner_id).
    pub fn table_index_by_sym(&self, sym: Symbol) -> Option<usize> {
        sym_lookup(&self.by_sym, sym.0)
    }

    /// Shared interner id of all table-name idents; 0 when the tables are
    /// uninterned or mixed across interners.
    pub fn interner_id(&self) -> u32 {
        self.iid
    }

    /// The schema's structural fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }
}

// Seals are derived state: always skipped on serialize (the closure below is
// constantly true), absent on deserialize (`default`). The trait impls exist
// only to satisfy the derive's bounds and are never reached.
fn seal_never_serialized<T>(_: &T) -> bool {
    true
}

impl Serialize for TableSeal {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl Deserialize for TableSeal {
    fn from_value(_: &serde::Value) -> std::result::Result<Self, serde::Error> {
        Err(serde::Error::custom("TableSeal is derived state and never serialized"))
    }
}

impl Serialize for SchemaSeal {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl Deserialize for SchemaSeal {
    fn from_value(_: &serde::Value) -> std::result::Result<Self, serde::Error> {
        Err(serde::Error::custom("SchemaSeal is derived state and never serialized"))
    }
}

/// A relation: named, with ordered typed attributes and constraints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Name as written (original case preserved); schema-qualified prefixes
    /// (`public.`) are stripped at parse time.
    pub name: Ident,
    /// The referenced column names.
    pub columns: Vec<Column>,
    /// The constraints.
    pub constraints: Vec<TableConstraint>,
    /// The indexes.
    pub indexes: Vec<IndexDef>,
    #[serde(default, skip_serializing_if = "seal_never_serialized")]
    seal: Option<TableSeal>,
}

// Equality ignores the seal: a sealed table equals its unsealed twin.
impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.columns == other.columns
            && self.constraints == other.constraints
            && self.indexes == other.indexes
    }
}

impl Table {
    /// Construct a new instance.
    pub fn new(name: impl Into<Ident>) -> Self {
        Self {
            name: name.into(),
            columns: Vec::new(),
            constraints: Vec::new(),
            indexes: Vec::new(),
            seal: None,
        }
    }

    /// Case-insensitive name comparison key. Precomputed at [`Ident`]
    /// construction — this borrows; it never allocates.
    pub fn key(&self) -> &str {
        self.name.key()
    }

    /// Look up a column case-insensitively.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Mutable case-insensitive column lookup. Drops the seal: the caller
    /// may change the structure through the returned reference.
    pub fn column_mut(&mut self, name: &str) -> Option<&mut Column> {
        self.seal = None;
        self.columns.iter_mut().find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Precompute the seal (key map + fingerprint) for the current structure.
    /// Called by the parser once a table's statements are fully applied.
    pub fn seal(&mut self) {
        self.seal = Some(TableSeal::build(self));
    }

    /// Drop the seal. Must be called before mutating structure through the
    /// `pub` fields directly (the accessor methods do this themselves).
    pub fn unseal(&mut self) {
        self.seal = None;
    }

    /// The seal, if this table has been sealed and not mutated since.
    pub fn seal_data(&self) -> Option<&TableSeal> {
        self.seal.as_ref()
    }

    /// The table's structural fingerprint: cached when sealed, otherwise
    /// computed on the fly.
    pub fn fingerprint(&self) -> Fingerprint {
        match &self.seal {
            Some(s) => s.fingerprint,
            None => fingerprint::of_table(self),
        }
    }

    /// The effective primary-key column names (lowercased), merging inline
    /// `PRIMARY KEY` column flags and table-level PRIMARY KEY constraints.
    pub fn primary_key(&self) -> Vec<String> {
        let mut pk: Vec<String> = self
            .columns
            .iter()
            .filter(|c| c.inline_primary_key)
            .map(|c| c.key().to_string())
            .collect();
        for constraint in &self.constraints {
            if let TableConstraint::PrimaryKey { columns, .. } = constraint {
                for col in columns {
                    let k = col.key();
                    if !pk.iter().any(|p| p == k) {
                        pk.push(k.to_string());
                    }
                }
            }
        }
        pk
    }

    /// All foreign keys (table-level only; inline REFERENCES are promoted to
    /// table constraints by the parser).
    pub fn foreign_keys(&self) -> impl Iterator<Item = &ForeignKey> {
        self.constraints.iter().filter_map(|c| match c {
            TableConstraint::ForeignKey(fk) => Some(fk),
            _ => None,
        })
    }
}

/// A whole logical schema: an ordered collection of tables.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Schema {
    /// The referenced tables.
    pub tables: Vec<Table>,
    #[serde(default, skip_serializing_if = "seal_never_serialized")]
    seal: Option<SchemaSeal>,
}

// Equality ignores the seal: a sealed schema equals its unsealed twin.
impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.tables == other.tables
    }
}

/// The canonical empty schema, shared by every history's creation delta.
static EMPTY_SCHEMA: Schema = Schema::new();

impl Schema {
    /// Construct a new instance.
    pub const fn new() -> Self {
        Self { tables: Vec::new(), seal: None }
    }

    /// A schema owning the given tables (unsealed).
    pub fn from_tables(tables: Vec<Table>) -> Self {
        Self { tables, seal: None }
    }

    /// A shared reference to the canonical empty schema — avoids allocating
    /// a sentinel per diff/history.
    pub fn empty_ref() -> &'static Schema {
        &EMPTY_SCHEMA
    }

    /// Look up a table case-insensitively.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Mutable case-insensitive table lookup. Drops the schema seal and the
    /// found table's seal: the caller may change structure through the
    /// returned reference.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.seal = None;
        let t = self.tables.iter_mut().find(|t| t.name.eq_ignore_ascii_case(name))?;
        t.seal = None;
        Some(t)
    }

    /// Remove a table by name (case-insensitive); returns it if present.
    /// Drops the schema seal (the removed table keeps its own seal — its
    /// structure is unchanged).
    pub fn remove_table(&mut self, name: &str) -> Option<Table> {
        let idx = self.tables.iter().position(|t| t.name.eq_ignore_ascii_case(name))?;
        self.seal = None;
        Some(self.tables.remove(idx))
    }

    /// Precompute the seal for the current structure, sealing every table
    /// first. Called by the parser once all statements are applied.
    pub fn seal(&mut self) {
        for t in &mut self.tables {
            if t.seal.is_none() {
                t.seal();
            }
        }
        self.seal = Some(SchemaSeal::build(self));
    }

    /// Drop the schema-level seal. Must be called before mutating structure
    /// through the `pub` fields directly (the accessor methods do this
    /// themselves).
    pub fn unseal(&mut self) {
        self.seal = None;
    }

    /// The seal, if this schema has been sealed and not mutated since.
    pub fn seal_data(&self) -> Option<&SchemaSeal> {
        self.seal.as_ref()
    }

    /// The schema's structural fingerprint: cached when sealed, otherwise
    /// computed on the fly.
    pub fn fingerprint(&self) -> Fingerprint {
        match &self.seal {
            Some(s) => s.fingerprint,
            None => fingerprint::of_schema(self),
        }
    }

    /// Total number of attributes across all tables — the paper's measure of
    /// schema size.
    pub fn attribute_count(&self) -> usize {
        self.tables.iter().map(|t| t.columns.len()).sum()
    }

    /// True if the schema defines no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::Interner;

    fn users_table() -> Table {
        let mut t = Table::new("Users");
        let mut id = Column::new("id", SqlType::simple("int"));
        id.inline_primary_key = true;
        id.nullable = false;
        t.columns.push(id);
        t.columns.push(Column::new("email", SqlType::with_params("varchar", &["255"])));
        t
    }

    #[test]
    fn sql_type_display() {
        assert_eq!(SqlType::simple("int").to_string(), "INT");
        assert_eq!(SqlType::with_params("varchar", &["255"]).to_string(), "VARCHAR(255)");
        let mut t = SqlType::with_params("decimal", &["10", "2"]);
        t.modifiers.push("UNSIGNED".into());
        assert_eq!(t.to_string(), "DECIMAL(10,2) UNSIGNED");
    }

    #[test]
    fn case_insensitive_lookups() {
        let mut s = Schema::new();
        s.tables.push(users_table());
        assert!(s.table("users").is_some());
        assert!(s.table("USERS").is_some());
        assert!(s.table("nope").is_none());
        let t = s.table("users").unwrap();
        assert!(t.column("EMAIL").is_some());
        assert!(t.column("missing").is_none());
    }

    #[test]
    fn primary_key_merges_inline_and_table_level() {
        let mut t = users_table();
        assert_eq!(t.primary_key(), vec!["id".to_string()]);
        t.constraints
            .push(TableConstraint::PrimaryKey { name: None, columns: vec!["email".into()] });
        assert_eq!(t.primary_key(), vec!["id".to_string(), "email".to_string()]);
    }

    #[test]
    fn primary_key_dedupes() {
        let mut t = users_table();
        t.constraints
            .push(TableConstraint::PrimaryKey { name: None, columns: vec!["ID".into()] });
        assert_eq!(t.primary_key(), vec!["id".to_string()]);
    }

    #[test]
    fn remove_table_returns_removed() {
        let mut s = Schema::new();
        s.tables.push(users_table());
        let removed = s.remove_table("USERS").unwrap();
        assert_eq!(removed.name, "Users");
        assert!(s.is_empty());
        assert!(s.remove_table("users").is_none());
    }

    #[test]
    fn attribute_count_sums_tables() {
        let mut s = Schema::new();
        s.tables.push(users_table());
        s.tables.push(users_table());
        assert_eq!(s.attribute_count(), 4);
    }

    #[test]
    fn seal_caches_keys_and_fingerprint() {
        let mut s = Schema::new();
        s.tables.push(users_table());
        let unsealed_fp = s.fingerprint();
        s.seal();
        let seal = s.seal_data().unwrap();
        assert_eq!(seal.fingerprint(), unsealed_fp);
        assert_eq!(seal.table_index("users"), Some(0));
        assert_eq!(seal.table_index("nope"), None);
        let t = &s.tables[0];
        let ts = t.seal_data().unwrap();
        assert_eq!(ts.table_key(), "users");
        assert_eq!(ts.column_key(0), "id");
        assert_eq!(ts.column_key(1), "email");
        assert_eq!(ts.column_index("email"), Some(1));
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.fingerprint(), t.fingerprint());
    }

    #[test]
    fn mut_accessors_drop_the_seal() {
        let mut s = Schema::new();
        s.tables.push(users_table());
        s.seal();
        let before = s.fingerprint();
        s.table_mut("users").unwrap().column_mut("email").unwrap().nullable = false;
        assert!(s.seal_data().is_none());
        assert!(s.tables[0].seal_data().is_none());
        assert_ne!(s.fingerprint(), before);

        let mut s2 = Schema::new();
        s2.tables.push(users_table());
        s2.seal();
        s2.remove_table("users");
        assert!(s2.seal_data().is_none());
    }

    #[test]
    fn equality_ignores_the_seal() {
        let mut sealed = Schema::new();
        sealed.tables.push(users_table());
        let unsealed = sealed.clone();
        sealed.seal();
        assert_eq!(sealed, unsealed);
        assert_eq!(sealed.fingerprint(), unsealed.fingerprint());
    }

    #[test]
    fn duplicate_column_keys_last_declaration_wins() {
        let mut t = Table::new("t");
        t.columns.push(Column::new("A", SqlType::simple("INT")));
        t.columns.push(Column::new("a", SqlType::simple("TEXT")));
        t.seal();
        assert_eq!(t.seal_data().unwrap().column_index("a"), Some(1));
    }

    #[test]
    fn empty_ref_is_shared_and_empty() {
        let e = Schema::empty_ref();
        assert!(e.is_empty());
        assert!(std::ptr::eq(Schema::empty_ref(), e));
        assert_eq!(*e, Schema::new());
    }

    #[test]
    fn foreign_keys_iterates_only_fks() {
        let mut t = users_table();
        t.constraints.push(TableConstraint::Check { name: None, expr: "id > 0".into() });
        t.constraints.push(TableConstraint::ForeignKey(ForeignKey {
            name: None,
            columns: vec!["email".into()],
            foreign_table: "emails".into(),
            foreign_columns: vec!["addr".into()],
            actions: vec![],
        }));
        assert_eq!(t.foreign_keys().count(), 1);
    }

    #[test]
    fn sealed_interned_table_exposes_symbols() {
        let interner = Interner::new();
        let mut t = Table::new(interner.ident("Users"));
        t.columns.push(Column::new(interner.ident("Id"), SqlType::simple("INT")));
        t.columns.push(Column::new(interner.ident("Email"), SqlType::simple("TEXT")));
        t.columns[0].inline_primary_key = true;
        t.seal();
        let seal = t.seal_data().unwrap();
        assert_eq!(seal.interner_id(), interner.id());
        assert_eq!(seal.column_index_by_sym(seal.column_sym(1)), Some(1));
        assert_eq!(seal.pk_len(), 1);
        assert_eq!(seal.pk_key(0), "id");
        assert_eq!(seal.pk_keys().collect::<Vec<_>>(), ["id"]);
        assert_eq!(seal.pk_syms().unwrap(), &[seal.column_sym(0).0]);
    }

    #[test]
    fn uninterned_seal_has_no_symbol_index() {
        let mut t = users_table();
        t.seal();
        let seal = t.seal_data().unwrap();
        assert_eq!(seal.interner_id(), 0);
        assert_eq!(seal.pk_syms(), None);
    }

    #[test]
    fn column_key_borrows_precomputed_fold() {
        let c = Column::new("UserName", SqlType::simple("INT"));
        assert_eq!(c.key(), "username");
        // Same pointer every call: the key is precomputed, not rebuilt.
        assert!(std::ptr::eq(c.key(), c.key()));
    }
}
