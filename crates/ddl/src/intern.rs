//! Symbol interning for identifiers on the cold path.
//!
//! Parsing a project's full DDL history touches the same identifiers over
//! and over — every version repeats most table, column, and type names. An
//! [`Interner`] deduplicates them: each distinct spelling is allocated once,
//! case-folded once, and assigned a small integer [`Symbol`] per distinct
//! *folded* form, so the diff hot loop can compare names as integers instead
//! of re-folding and comparing strings.
//!
//! ## Validity invariants
//!
//! - An [`Ident`] owns its text (`Arc<str>`) and stays valid forever — it
//!   does **not** borrow from the interner, so `Arc<Schema>` values outlive
//!   the per-parse interner that built them.
//! - A [`Symbol`] is only meaningful *relative to the interner that issued
//!   it*. Two idents compare by symbol exactly when both carry the same
//!   nonzero [`Ident::interner_id`]; interner ids are globally unique per
//!   process (never reused), so stale cross-interner comparisons cannot
//!   alias. Uninterned idents (hand-built or deserialized models) carry id 0
//!   and always fall back to string comparison.
//! - Within one interner, `a.symbol() == b.symbol()` ⇔ `a.key() == b.key()`
//!   (case-insensitive name equality).

use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::ops::Deref;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a as a [`Hasher`]: identifiers are short (a handful of bytes), where
/// FNV beats SipHash by a wide margin, and interner lookups sit directly on
/// the per-token parse path. Collision quality is ample for identifier sets.
#[derive(Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// A small integer naming one distinct case-folded identifier spelling
/// within a single [`Interner`]. Only comparable between idents with equal
/// nonzero [`Ident::interner_id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

/// Interner ids are process-global and start at 1; id 0 marks an uninterned
/// [`Ident`].
static NEXT_INTERNER_ID: AtomicU32 = AtomicU32::new(1);

#[derive(Default)]
struct InternerInner {
    /// Exact spelling → fully built ident (cloning is two `Arc` bumps).
    by_text: FnvMap<Arc<str>, Ident>,
    /// Case-folded spelling → its symbol.
    by_folded: FnvMap<Arc<str>, u32>,
}

/// A per-project identifier interner, shared read-mostly behind `Arc` by the
/// engine workers that parse a project's versions.
pub struct Interner {
    id: u32,
    inner: Mutex<InternerInner>,
}

impl Default for Interner {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("id", &self.id)
            .field("symbols", &self.symbol_count())
            .finish()
    }
}

impl Interner {
    /// A fresh interner with a process-unique nonzero id.
    pub fn new() -> Self {
        Self {
            id: NEXT_INTERNER_ID.fetch_add(1, Ordering::Relaxed),
            inner: Mutex::new(InternerInner::default()),
        }
    }

    /// This interner's process-unique id (always nonzero).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Intern `text`: the first occurrence of a spelling allocates and
    /// case-folds it; every later occurrence is two `Arc` clones.
    pub fn ident(&self, text: &str) -> Ident {
        let mut inner = self.inner.lock().expect("interner poisoned");
        if let Some(proto) = inner.by_text.get(text) {
            return proto.clone();
        }
        let text_arc: Arc<str> = Arc::from(text);
        let folded: Arc<str> = match fold(text) {
            Some(lower) => Arc::from(lower.as_str()),
            None => Arc::clone(&text_arc),
        };
        let sym = match inner.by_folded.get(&*folded) {
            Some(&s) => s,
            None => {
                let s = inner.by_folded.len() as u32;
                inner.by_folded.insert(Arc::clone(&folded), s);
                s
            }
        };
        let ident = Ident { text: Arc::clone(&text_arc), folded, iid: self.id, sym };
        inner.by_text.insert(text_arc, ident.clone());
        ident
    }

    /// Number of distinct case-folded spellings interned so far.
    pub fn symbol_count(&self) -> usize {
        self.inner.lock().expect("interner poisoned").by_folded.len()
    }
}

/// Lowercase `text` if it contains any ASCII uppercase; `None` when it is
/// already fully folded (the common case — folding then shares the text
/// allocation).
fn fold(text: &str) -> Option<String> {
    if text.bytes().any(|b| b.is_ascii_uppercase()) {
        Some(text.to_ascii_lowercase())
    } else {
        None
    }
}

/// An identifier: exact spelling plus its precomputed case-folded key and
/// (when interned) a per-interner [`Symbol`].
///
/// Equality, ordering, and hashing all follow the *exact* text, like the
/// `String` fields this type replaced; the folded key is exposed via
/// [`Ident::key`] for the case-insensitive comparisons SQL requires.
#[derive(Clone)]
pub struct Ident {
    text: Arc<str>,
    folded: Arc<str>,
    iid: u32,
    sym: u32,
}

impl Ident {
    /// An uninterned ident (interner id 0): used by hand-built models,
    /// deserialization, and the legacy parse path.
    pub fn new(text: &str) -> Self {
        let text_arc: Arc<str> = Arc::from(text);
        let folded = match fold(text) {
            Some(lower) => Arc::from(lower.as_str()),
            None => Arc::clone(&text_arc),
        };
        Self { text: text_arc, folded, iid: 0, sym: 0 }
    }

    /// The exact spelling.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// The case-folded comparison key, computed once at construction.
    pub fn key(&self) -> &str {
        &self.folded
    }

    /// The folded key's shared allocation (cheap to clone into seals).
    pub fn key_arc(&self) -> Arc<str> {
        Arc::clone(&self.folded)
    }

    /// This ident's symbol. Only meaningful against idents with the same
    /// nonzero [`Ident::interner_id`].
    pub fn symbol(&self) -> Symbol {
        Symbol(self.sym)
    }

    /// Id of the interner that issued this ident (0 = uninterned).
    pub fn interner_id(&self) -> u32 {
        self.iid
    }
}

impl Deref for Ident {
    type Target = str;

    fn deref(&self) -> &str {
        &self.text
    }
}

impl AsRef<str> for Ident {
    fn as_ref(&self) -> &str {
        &self.text
    }
}

impl Borrow<str> for Ident {
    fn borrow(&self) -> &str {
        &self.text
    }
}

impl From<&str> for Ident {
    fn from(text: &str) -> Self {
        Self::new(text)
    }
}

impl From<String> for Ident {
    fn from(text: String) -> Self {
        Self::new(&text)
    }
}

impl PartialEq for Ident {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.text, &other.text) || self.text == other.text
    }
}

impl Eq for Ident {}

impl PartialEq<str> for Ident {
    fn eq(&self, other: &str) -> bool {
        &*self.text == other
    }
}

impl PartialEq<&str> for Ident {
    fn eq(&self, other: &&str) -> bool {
        &*self.text == *other
    }
}

impl PartialEq<String> for Ident {
    fn eq(&self, other: &String) -> bool {
        &*self.text == other.as_str()
    }
}

impl PartialEq<Ident> for str {
    fn eq(&self, other: &Ident) -> bool {
        self == &*other.text
    }
}

impl PartialEq<Ident> for &str {
    fn eq(&self, other: &Ident) -> bool {
        *self == &*other.text
    }
}

impl PartialEq<Ident> for String {
    fn eq(&self, other: &Ident) -> bool {
        self.as_str() == &*other.text
    }
}

impl Hash for Ident {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash like the `String` this replaced, so `Borrow<str>` map lookups
        // stay consistent.
        (*self.text).hash(state);
    }
}

impl PartialOrd for Ident {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ident {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.text.cmp(&other.text)
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl fmt::Debug for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.text, f)
    }
}

// Serialized as a plain string, exactly like the `String` fields this type
// replaced; deserialized idents are uninterned (id 0).
impl serde::Serialize for Ident {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.text.to_string())
    }
}

impl serde::Deserialize for Ident {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) => Ok(Self::new(s)),
            other => Err(serde::Error::custom(format!("expected string ident, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedupes_spellings_and_shares_allocations() {
        let i = Interner::new();
        let a = i.ident("Users");
        let b = i.ident("Users");
        assert!(Arc::ptr_eq(&a.text, &b.text));
        assert!(Arc::ptr_eq(&a.folded, &b.folded));
        assert_eq!(a, b);
        assert_eq!(a.symbol(), b.symbol());
    }

    #[test]
    fn symbols_follow_the_folded_key() {
        let i = Interner::new();
        let a = i.ident("Users");
        let b = i.ident("users");
        let c = i.ident("USERS");
        let d = i.ident("orders");
        // Distinct spellings, one folded form, one symbol.
        assert_ne!(a, b);
        assert_eq!(a.key(), "users");
        assert_eq!(a.symbol(), b.symbol());
        assert_eq!(b.symbol(), c.symbol());
        assert_ne!(a.symbol(), d.symbol());
        assert_eq!(i.symbol_count(), 2);
    }

    #[test]
    fn lowercase_spellings_share_text_and_key_allocations() {
        let i = Interner::new();
        let a = i.ident("users");
        assert!(Arc::ptr_eq(&a.text, &a.folded));
        let b = Ident::new("users");
        assert!(Arc::ptr_eq(&b.text, &b.folded));
    }

    #[test]
    fn interner_ids_are_unique_and_nonzero() {
        let a = Interner::new();
        let b = Interner::new();
        assert_ne!(a.id(), 0);
        assert_ne!(a.id(), b.id());
        assert_eq!(a.ident("x").interner_id(), a.id());
        assert_eq!(Ident::new("x").interner_id(), 0);
    }

    #[test]
    fn equality_and_ordering_track_exact_text() {
        let a = Ident::new("Users");
        let b = Interner::new().ident("Users");
        assert_eq!(a, b); // interning does not affect equality
        assert_eq!(a, "Users");
        assert_ne!(a, "users");
        assert_eq!("Users", a);
        assert_eq!(a, "Users".to_string());
        assert!(Ident::new("a") < Ident::new("b"));
    }

    #[test]
    fn hash_matches_str_hash() {
        use std::collections::hash_map::DefaultHasher;
        fn h<T: Hash + ?Sized>(v: &T) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(&Ident::new("Users")), h("Users"));
    }

    #[test]
    fn display_and_deref() {
        let a = Ident::new("Users");
        assert_eq!(a.to_string(), "Users");
        assert_eq!(a.len(), 5); // str method via Deref
        assert!(a.eq_ignore_ascii_case("USERS"));
        assert_eq!(format!("{a:?}"), "\"Users\"");
    }

    #[test]
    fn serde_round_trips_as_plain_string() {
        use serde::{Deserialize, Serialize};
        let a = Interner::new().ident("Users");
        let v = a.to_value();
        assert_eq!(v, serde::Value::Str("Users".to_string()));
        let back = Ident::from_value(&v).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.interner_id(), 0);
        assert!(Ident::from_value(&serde::Value::Int(3)).is_err());
    }
}
