//! Stable 64-bit structural fingerprints of the schema model.
//!
//! A fingerprint is a content address: two model values have equal
//! fingerprints exactly when they are structurally equal (modulo 64-bit hash
//! collisions, which the diff engine neutralizes by confirming candidate
//! matches with a full equality walk — see `coevo-diff`). Fingerprints are
//! computed over the same fields [`PartialEq`] compares, with domain-separator
//! tags and length prefixes so field boundaries cannot alias, and they are
//! **stable**: independent of pointer identity, process, platform word order,
//! and whether the value was built by the parser, the printer round trip, or
//! by hand.
//!
//! The hash is FNV-1a (64-bit) — not cryptographic, but deterministic,
//! dependency-free, and fast enough that sealing a parsed schema is a small
//! fraction of parse time.

use crate::model::{Column, ForeignKey, IndexDef, Schema, SqlType, Table, TableConstraint};
use std::fmt;

/// A stable 64-bit structural hash of a model value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// An incremental FNV-1a (64-bit) hasher over tagged, length-prefixed input.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Start a fresh hasher.
    pub fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorb a single tag byte (domain separator).
    pub fn tag(&mut self, t: u8) {
        self.write(&[t]);
    }

    /// Absorb a `u64` in a fixed byte order.
    pub fn write_u64(&mut self, n: u64) {
        self.write(&n.to_le_bytes());
    }

    /// Absorb a length-prefixed string (prefixing prevents `"ab"+"c"` from
    /// aliasing `"a"+"bc"` across adjacent fields).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Absorb an optional length-prefixed string.
    pub fn write_opt_str(&mut self, s: Option<&str>) {
        match s {
            Some(s) => {
                self.tag(1);
                self.write_str(s);
            }
            None => self.tag(0),
        }
    }

    /// Absorb a boolean.
    pub fn write_bool(&mut self, b: bool) {
        self.tag(u8::from(b));
    }

    /// Finish, producing the fingerprint.
    pub fn finish(self) -> Fingerprint {
        Fingerprint(self.0)
    }
}

/// Hash arbitrary bytes (used for content-addressing raw DDL text).
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(bytes.len() as u64);
    h.write(bytes);
    h.finish().0
}

// Domain-separator tags, one per structural position. Never reuse a value.
const TAG_TYPE: u8 = 0x01;
const TAG_COLUMN: u8 = 0x02;
const TAG_TABLE: u8 = 0x03;
const TAG_SCHEMA: u8 = 0x04;
const TAG_PK: u8 = 0x05;
const TAG_UNIQUE: u8 = 0x06;
const TAG_FK: u8 = 0x07;
const TAG_CHECK: u8 = 0x08;
const TAG_INDEX: u8 = 0x09;

fn absorb_type(h: &mut Fnv1a, t: &SqlType) {
    h.tag(TAG_TYPE);
    h.write_str(&t.name);
    h.write_u64(t.params.len() as u64);
    for p in &t.params {
        h.write_str(p);
    }
    h.write_u64(t.modifiers.len() as u64);
    for m in &t.modifiers {
        h.write_str(m);
    }
}

fn absorb_column(h: &mut Fnv1a, c: &Column) {
    h.tag(TAG_COLUMN);
    h.write_str(&c.name);
    absorb_type(h, &c.sql_type);
    h.write_bool(c.nullable);
    h.write_opt_str(c.default.as_deref());
    h.write_bool(c.auto_increment);
    h.write_bool(c.inline_primary_key);
    h.write_bool(c.unique);
    h.write_opt_str(c.comment.as_deref());
}

fn absorb_name_columns<S: AsRef<str>>(h: &mut Fnv1a, name: Option<&str>, columns: &[S]) {
    h.write_opt_str(name);
    h.write_u64(columns.len() as u64);
    for c in columns {
        h.write_str(c.as_ref());
    }
}

fn absorb_constraint(h: &mut Fnv1a, c: &TableConstraint) {
    match c {
        TableConstraint::PrimaryKey { name, columns } => {
            h.tag(TAG_PK);
            absorb_name_columns(h, name.as_deref(), columns);
        }
        TableConstraint::Unique { name, columns } => {
            h.tag(TAG_UNIQUE);
            absorb_name_columns(h, name.as_deref(), columns);
        }
        TableConstraint::ForeignKey(fk) => absorb_foreign_key(h, fk),
        TableConstraint::Check { name, expr } => {
            h.tag(TAG_CHECK);
            h.write_opt_str(name.as_deref());
            h.write_str(expr);
        }
    }
}

fn absorb_foreign_key(h: &mut Fnv1a, fk: &ForeignKey) {
    h.tag(TAG_FK);
    absorb_name_columns(h, fk.name.as_deref(), &fk.columns);
    h.write_str(&fk.foreign_table);
    h.write_u64(fk.foreign_columns.len() as u64);
    for c in &fk.foreign_columns {
        h.write_str(c);
    }
    h.write_u64(fk.actions.len() as u64);
    for a in &fk.actions {
        h.write_str(a);
    }
}

fn absorb_index(h: &mut Fnv1a, i: &IndexDef) {
    h.tag(TAG_INDEX);
    absorb_name_columns(h, i.name.as_deref(), &i.columns);
    h.write_bool(i.unique);
}

fn absorb_table(h: &mut Fnv1a, t: &Table) {
    h.tag(TAG_TABLE);
    h.write_str(&t.name);
    h.write_u64(t.columns.len() as u64);
    for c in &t.columns {
        absorb_column(h, c);
    }
    h.write_u64(t.constraints.len() as u64);
    for c in &t.constraints {
        absorb_constraint(h, c);
    }
    h.write_u64(t.indexes.len() as u64);
    for i in &t.indexes {
        absorb_index(h, i);
    }
}

/// Fingerprint of a SQL type.
pub fn of_type(t: &SqlType) -> Fingerprint {
    let mut h = Fnv1a::new();
    absorb_type(&mut h, t);
    h.finish()
}

/// Fingerprint of a column, covering every field [`PartialEq`] compares.
pub fn of_column(c: &Column) -> Fingerprint {
    let mut h = Fnv1a::new();
    absorb_column(&mut h, c);
    h.finish()
}

/// Fingerprint of a table: name, columns (in order), constraints, indexes.
pub fn of_table(t: &Table) -> Fingerprint {
    let mut h = Fnv1a::new();
    absorb_table(&mut h, t);
    h.finish()
}

/// Fingerprint of a whole schema: the fingerprints of its tables, in
/// declaration order.
///
/// Hashing table *fingerprints* instead of re-absorbing every table keeps the
/// equality-tracking property (table fingerprints already track table
/// equality) while letting a sealed schema reuse its tables' cached values —
/// sealing otherwise hashes the whole model twice, once per table and once
/// here. [`Table::fingerprint`] computes on the fly when unsealed, so the
/// value is identical either way.
pub fn of_schema(s: &Schema) -> Fingerprint {
    let mut h = Fnv1a::new();
    h.tag(TAG_SCHEMA);
    h.write_u64(s.tables.len() as u64);
    for t in &s.tables {
        h.write_u64(t.fingerprint().0);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_schema, Dialect};

    fn schema(sql: &str) -> Schema {
        parse_schema(sql, Dialect::Generic).unwrap()
    }

    #[test]
    fn equal_schemas_have_equal_fingerprints() {
        let a = schema("CREATE TABLE t (a INT, b VARCHAR(10), PRIMARY KEY (a));");
        let b = schema("CREATE TABLE t (a INT, b VARCHAR(10), PRIMARY KEY (a));");
        assert_eq!(a, b);
        assert_eq!(of_schema(&a), of_schema(&b));
    }

    #[test]
    fn fingerprint_is_case_exact_like_equality() {
        // `==` on the model distinguishes identifier case (the printer
        // preserves it), so the fingerprint must too.
        let a = schema("CREATE TABLE Users (a INT);");
        let b = schema("CREATE TABLE users (a INT);");
        assert_ne!(a, b);
        assert_ne!(of_schema(&a), of_schema(&b));
    }

    #[test]
    fn every_structural_field_feeds_the_hash() {
        let base = schema("CREATE TABLE t (a INT);");
        for variant in [
            "CREATE TABLE t (a BIGINT);",
            "CREATE TABLE t (a INT NOT NULL);",
            "CREATE TABLE t (a INT DEFAULT 3);",
            "CREATE TABLE t (a INT PRIMARY KEY);",
            "CREATE TABLE t (a INT UNIQUE);",
            "CREATE TABLE t (a INT, b INT);",
            "CREATE TABLE t (a VARCHAR(9));",
            "CREATE TABLE t (a INT, PRIMARY KEY (a));",
            "CREATE TABLE t (a INT, CONSTRAINT u UNIQUE (a));",
            "CREATE TABLE t (a INT, CHECK (a > 0));",
            "CREATE TABLE t (a INT); CREATE INDEX i ON t (a);",
        ] {
            assert_ne!(
                of_schema(&base),
                of_schema(&schema(variant)),
                "variant collided: {variant}"
            );
        }
    }

    #[test]
    fn field_boundaries_do_not_alias() {
        // Length prefixes: the concatenated bytes are identical, the
        // structures are not.
        let a = SqlType::with_params("VARCHAR", &["12", "3"]);
        let b = SqlType::with_params("VARCHAR", &["1", "23"]);
        assert_ne!(of_type(&a), of_type(&b));

        let c = schema("CREATE TABLE ab (c INT);");
        let d = schema("CREATE TABLE a (bc INT);");
        assert_ne!(of_schema(&c), of_schema(&d));
    }

    #[test]
    fn known_value_is_stable_across_runs() {
        // Pins the byte-level definition: a change to the hashing scheme must
        // be deliberate (it invalidates any persisted content addresses).
        let fp = content_hash(b"CREATE TABLE t (a INT);");
        assert_eq!(fp, content_hash(b"CREATE TABLE t (a INT);"));
        assert_ne!(fp, content_hash(b"CREATE TABLE t (a INT); "));
    }

    #[test]
    fn column_and_type_fingerprints_track_equality() {
        let a = Column::new("x", SqlType::simple("INT"));
        let mut b = a.clone();
        assert_eq!(of_column(&a), of_column(&b));
        b.comment = Some("hi".into());
        assert_ne!(of_column(&a), of_column(&b));
        assert_eq!(of_type(&a.sql_type), of_type(&b.sql_type));
    }
}
