//! SQL dialect handling.
//!
//! The dataset of the paper keeps, per project, one DDL file in either MySQL
//! or PostgreSQL ("the choice of MySQL or Postgres, in that order, in the case
//! of more than one supported vendor"). The dialect influences lexing rules
//! (comment forms, quoting, escapes) and a few parser tolerances; the schema
//! *model* is dialect-independent.

use serde::{Deserialize, Serialize};

/// The SQL dialect of a DDL file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dialect {
    /// MySQL / MariaDB: backtick identifiers, `#` comments, backslash escapes
    /// in strings, `AUTO_INCREMENT`, `ENGINE=` table options.
    MySql,
    /// PostgreSQL: double-quoted identifiers, dollar-quoted strings, `SERIAL`
    /// pseudo-types, no backslash escapes by default.
    Postgres,
    /// A permissive union used when the vendor is unknown: accepts the quoting
    /// and comment forms of both, plus bracket identifiers.
    #[default]
    Generic,
}

impl Dialect {
    /// `# line comments` (MySQL only, plus Generic tolerance).
    pub fn hash_comments(self) -> bool {
        matches!(self, Dialect::MySql | Dialect::Generic)
    }

    /// Backslash escape sequences inside string literals.
    pub fn backslash_escapes(self) -> bool {
        matches!(self, Dialect::MySql | Dialect::Generic)
    }

    /// `$tag$ ... $tag$` dollar-quoted strings.
    pub fn dollar_quotes(self) -> bool {
        matches!(self, Dialect::Postgres | Dialect::Generic)
    }

    /// `[bracketed]` identifiers (SQL Server files that leak into corpora).
    pub fn bracket_idents(self) -> bool {
        matches!(self, Dialect::Generic)
    }

    /// Canonical lowercase name, used in corpus manifests.
    pub fn name(self) -> &'static str {
        match self {
            Dialect::MySql => "mysql",
            Dialect::Postgres => "postgres",
            Dialect::Generic => "generic",
        }
    }

    /// Parse a dialect name as it appears in manifests (case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "mysql" | "mariadb" => Some(Dialect::MySql),
            "postgres" | "postgresql" | "pgsql" => Some(Dialect::Postgres),
            "generic" | "ansi" => Some(Dialect::Generic),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_matrix() {
        assert!(Dialect::MySql.hash_comments());
        assert!(!Dialect::Postgres.hash_comments());
        assert!(Dialect::MySql.backslash_escapes());
        assert!(!Dialect::Postgres.backslash_escapes());
        assert!(Dialect::Postgres.dollar_quotes());
        assert!(!Dialect::MySql.dollar_quotes());
        assert!(Dialect::Generic.hash_comments());
        assert!(Dialect::Generic.dollar_quotes());
        assert!(Dialect::Generic.bracket_idents());
    }

    #[test]
    fn names_round_trip() {
        for d in [Dialect::MySql, Dialect::Postgres, Dialect::Generic] {
            assert_eq!(Dialect::from_name(d.name()), Some(d));
        }
        assert_eq!(Dialect::from_name("PostgreSQL"), Some(Dialect::Postgres));
        assert_eq!(Dialect::from_name("mariadb"), Some(Dialect::MySql));
        assert_eq!(Dialect::from_name("oracle"), None);
    }
}
