//! Recursive-descent parser for the DDL subset found in single-file schemas.
//!
//! The parser understands `CREATE TABLE`, `ALTER TABLE`, `DROP TABLE`, and
//! `CREATE INDEX` in both MySQL and PostgreSQL flavors, and *skips* every
//! other statement (INSERT/SET/USE/GRANT/…) by consuming tokens up to the
//! statement terminator. This skip-tolerance is essential: the corpus files
//! are full database dumps, not curated DDL.
//!
//! The parser is *streaming*: it pulls [`Token`]s from the zero-copy
//! [`Lexer`] on demand through a small lookahead buffer, so the whole token
//! vector is never materialized. Identifiers become [`Ident`]s, optionally
//! through a shared [`Interner`] (see [`parse_schema_interned`]) so the diff
//! hot loop can compare names as integers instead of re-folding strings.

use crate::dialect::Dialect;
use crate::error::{ParseError, ParseErrorKind, Result};
use crate::intern::{Ident, Interner};
use crate::lexer::Lexer;
use crate::model::{Column, ForeignKey, IndexDef, SqlType, Table, TableConstraint};
use crate::token::{OwnedToken, Token, TokenKind};
use std::borrow::Cow;
use std::collections::VecDeque;

/// One parsed top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A `CREATE TABLE` statement.
    CreateTable {
        /// The table name.
        table: Table,
        /// The if not exists.
        if_not_exists: bool,
    },
    /// An `ALTER TABLE` statement.
    AlterTable {
        /// Table name as written.
        table: Ident,
        /// The ops.
        ops: Vec<AlterOp>,
    },
    /// A `DROP TABLE` statement.
    DropTable {
        /// The names.
        names: Vec<Ident>,
        /// The if exists.
        if_exists: bool,
    },
    /// MySQL top-level `RENAME TABLE a TO b[, c TO d]`.
    RenameTable {
        /// The renames.
        renames: Vec<(Ident, Ident)>,
    },
    /// A `CREATE INDEX` statement.
    CreateIndex {
        /// The table name.
        table: Ident,
        /// The index.
        index: IndexDef,
    },
    /// A statement we recognized but do not model (INSERT, SET, …); the
    /// leading keyword is kept for diagnostics.
    Skipped {
        /// The leading.
        leading: String,
    },
}

/// One clause of an `ALTER TABLE` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum AlterOp {
    /// Add a column.
    AddColumn(Column),
    /// Drop a column.
    DropColumn(Ident),
    /// MySQL `MODIFY [COLUMN] name <new definition>`.
    ModifyColumn(Column),
    /// MySQL `CHANGE [COLUMN] old new <new definition>` (rename + redefine).
    /// The old name.
    ChangeColumn {
        /// The name before the change.
        old_name: Ident,
        /// The new definition.
        new: Column,
    },
    /// PostgreSQL `ALTER COLUMN name TYPE t`.
    /// 1-based source column.
    SetColumnType {
        /// The column name.
        column: Ident,
        /// The SQL data type.
        sql_type: SqlType,
    },
    /// `ALTER COLUMN name SET|DROP NOT NULL` (true = NOT NULL present).
    /// 1-based source column.
    SetColumnNotNull {
        /// The column name.
        column: Ident,
        /// The not null.
        not_null: bool,
    },
    /// `ALTER COLUMN name SET DEFAULT expr` / `DROP DEFAULT`.
    /// 1-based source column.
    SetColumnDefault {
        /// The column name.
        column: Ident,
        /// The default.
        default: Option<String>,
    },
    /// Rename a column.
    RenameColumn {
        /// The name before the change.
        old_name: Ident,
        /// The name after the change.
        new_name: Ident,
    },
    /// Rename the table.
    RenameTable {
        /// The name after the change.
        new_name: Ident,
    },
    /// Add a table-level constraint.
    AddConstraint(TableConstraint),
    /// MySQL `DROP PRIMARY KEY`.
    DropPrimaryKey,
    /// DROP CONSTRAINT / DROP FOREIGN KEY / DROP KEY / DROP INDEX name.
    DropConstraint(Ident),
    /// Add a secondary index.
    AddIndex(IndexDef),
    /// A clause we tolerate but do not model (ENGINE=, AUTO_INCREMENT=, …).
    Ignored,
}

/// Parse a full script into statements, streaming tokens from the lexer.
pub fn parse_statements(sql: &str, dialect: Dialect) -> Result<Vec<Statement>> {
    Parser::streaming(sql, dialect).parse_script()
}

/// Parse a full script and apply it to an empty schema, yielding the final
/// logical schema the script defines. The result is *sealed*: its key maps
/// and structural fingerprints are precomputed (see [`crate::fingerprint`]),
/// so downstream diffing never re-folds identifiers or rebuilds lookup maps.
///
/// Identifiers are interned into a fresh per-call [`Interner`]; to share one
/// interner across many versions of the same project (so the diff can compare
/// names as integers), use [`parse_schema_interned`].
pub fn parse_schema(sql: &str, dialect: Dialect) -> Result<crate::model::Schema> {
    let interner = Interner::new();
    parse_schema_interned(sql, dialect, &interner)
}

/// Like [`parse_schema`], but interning every identifier into the caller's
/// [`Interner`]. Schemas parsed through the same interner carry symbols from
/// one numbering, which enables the integer-compare fast path in the diff.
pub fn parse_schema_interned(
    sql: &str,
    dialect: Dialect,
    interner: &Interner,
) -> Result<crate::model::Schema> {
    let stmts = Parser::streaming(sql, dialect).with_interner(interner).parse_script()?;
    let mut schema = crate::apply::apply_statements_owned(stmts)?;
    schema.seal();
    Ok(schema)
}

/// The pre-interning parse path: eagerly tokenize the whole script into
/// owned tokens (one heap `String` per textual token), then parse without an
/// interner. Kept as the allocation-faithful baseline for the
/// allocation-profiling benchmarks and as a differential twin of the
/// streaming path.
pub fn parse_schema_legacy(sql: &str, dialect: Dialect) -> Result<crate::model::Schema> {
    let tokens = Lexer::new(sql, dialect).tokenize_owned()?;
    let stmts = Parser::from_owned_tokens(&tokens, dialect).parse_script()?;
    let mut schema = crate::apply::apply_statements(&stmts)?;
    schema.seal();
    Ok(schema)
}

/// Where the parser's tokens come from.
enum Source<'a> {
    /// Streaming straight from the zero-copy lexer.
    Lexer(Lexer<'a>),
    /// Replaying a pre-tokenized owned buffer (legacy path).
    Owned { toks: &'a [OwnedToken], pos: usize },
    /// No source: the lookahead buffer already holds every token.
    Done,
}

/// The recursive-descent parser over a streaming token source.
///
/// Lifetimes: `'a` is the source text (tokens borrow from it), `'i` is the
/// optional interner used to build [`Ident`]s.
pub struct Parser<'a, 'i> {
    source: Source<'a>,
    /// Lookahead buffer; `peek_at(n)` fills it to `n + 1` tokens.
    buf: VecDeque<Token<'a>>,
    /// Sticky EOF: once the source yields `Eof`, every further pull
    /// re-yields it (mirrors the old "never advance past the end" buffer).
    eof: Option<Token<'a>>,
    /// First lexer error, surfaced by `parse_script` (the streaming parser
    /// only discovers lex errors when it reaches them, but callers expect
    /// the tokenize-first behavior where a lex error always wins).
    lex_err: Option<ParseError>,
    dialect: Dialect,
    interner: Option<&'i Interner>,
}

impl<'a, 'i> Parser<'a, 'i> {
    /// Construct a parser over an eagerly tokenized buffer. The buffer must
    /// end with an `Eof` token (as [`Lexer::tokenize`] guarantees).
    pub fn new(tokens: Vec<Token<'a>>, dialect: Dialect) -> Self {
        Self {
            source: Source::Done,
            buf: tokens.into(),
            eof: None,
            lex_err: None,
            dialect,
            interner: None,
        }
    }

    /// Construct a streaming parser that pulls tokens from the lexer on
    /// demand and never materializes the whole token vector.
    pub fn streaming(sql: &'a str, dialect: Dialect) -> Self {
        Self {
            source: Source::Lexer(Lexer::new(sql, dialect)),
            buf: VecDeque::new(),
            eof: None,
            lex_err: None,
            dialect,
            interner: None,
        }
    }

    /// Construct a parser replaying pre-tokenized owned tokens (the legacy
    /// allocation-profile path).
    pub fn from_owned_tokens(tokens: &'a [OwnedToken], dialect: Dialect) -> Self {
        Self {
            source: Source::Owned { toks: tokens, pos: 0 },
            buf: VecDeque::new(),
            eof: None,
            lex_err: None,
            dialect,
            interner: None,
        }
    }

    /// Intern every identifier this parser produces into `interner`.
    pub fn with_interner(mut self, interner: &'i Interner) -> Self {
        self.interner = Some(interner);
        self
    }

    /// The dialect this parser was constructed for. The lexer already
    /// folded dialect-specific token forms (quoting, comments), so parsing
    /// itself is dialect-independent — but downstream consumers (error
    /// reporting, result-store digests) need to know which dialect a parse
    /// was keyed under.
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    // ---- token-stream helpers -------------------------------------------

    /// Pull the next token from the source. Lexer errors are stashed and
    /// turned into a synthetic `Eof` at the error position, so parsing stops
    /// there and `parse_script` can surface the lex error.
    fn pull(&mut self) -> Token<'a> {
        if let Some(t) = &self.eof {
            return t.clone();
        }
        match &mut self.source {
            Source::Lexer(lx) => match lx.next_token() {
                Ok(t) => t,
                Err(e) => {
                    let (line, column) = (e.line, e.column);
                    if self.lex_err.is_none() {
                        self.lex_err = Some(e);
                    }
                    Token { kind: TokenKind::Eof, line, column }
                }
            },
            Source::Owned { toks, pos } => {
                if *pos < toks.len() {
                    let t = toks[*pos].view();
                    *pos += 1;
                    t
                } else {
                    Token { kind: TokenKind::Eof, line: 1, column: 1 }
                }
            }
            Source::Done => Token { kind: TokenKind::Eof, line: 1, column: 1 },
        }
    }

    /// Ensure the lookahead buffer holds at least `n + 1` tokens. The
    /// already-buffered case is the overwhelmingly common one (the grammar
    /// rarely looks past one token), so it stays on the inlined fast path.
    #[inline]
    fn fill(&mut self, n: usize) {
        if self.buf.len() <= n {
            self.fill_slow(n);
        }
    }

    fn fill_slow(&mut self, n: usize) {
        while self.buf.len() <= n {
            let t = self.pull();
            if matches!(t.kind, TokenKind::Eof) && self.eof.is_none() {
                self.eof = Some(t.clone());
            }
            self.buf.push_back(t);
        }
    }

    #[inline]
    fn peek(&mut self) -> &TokenKind<'a> {
        self.fill(0);
        &self.buf[0].kind
    }

    fn peek_token(&mut self) -> &Token<'a> {
        self.fill(0);
        &self.buf[0]
    }

    #[inline]
    fn peek_at(&mut self, offset: usize) -> &TokenKind<'a> {
        self.fill(offset);
        &self.buf[offset].kind
    }

    #[inline]
    fn advance(&mut self) -> TokenKind<'a> {
        self.fill(0);
        if matches!(self.buf[0].kind, TokenKind::Eof) {
            return TokenKind::Eof;
        }
        self.buf.pop_front().expect("buffer filled").kind
    }

    fn at_eof(&mut self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn err_here(&mut self, expected: &str) -> ParseError {
        let t = self.peek_token();
        ParseError::new(
            ParseErrorKind::UnexpectedToken {
                expected: expected.to_string(),
                found: t.kind.to_string(),
            },
            t.line,
            t.column,
        )
    }

    /// Build an [`Ident`] for `text`, interning it when an interner is set.
    fn make_ident(&self, text: &str) -> Ident {
        match self.interner {
            Some(i) => i.ident(text),
            None => Ident::new(text),
        }
    }

    /// The identifier under the cursor, if the current token can be one.
    /// Does not advance.
    fn ident_here(&mut self) -> Option<Ident> {
        let interner = self.interner;
        self.peek().ident_text().map(|t| match interner {
            Some(i) => i.ident(t),
            None => Ident::new(t),
        })
    }

    /// Consume a bare keyword if present; returns whether it was consumed.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    /// Consume a run of keywords if all present in order.
    fn eat_kws(&mut self, kws: &[&str]) -> bool {
        for (i, kw) in kws.iter().enumerate() {
            if !self.peek_at(i).is_keyword(kw) {
                return false;
            }
        }
        for _ in kws {
            self.advance();
        }
        true
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err_here(&format!("keyword {kw}")))
        }
    }

    fn expect(&mut self, kind: &TokenKind<'a>, what: &str) -> Result<()> {
        if self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.err_here(what))
        }
    }

    /// Parse an identifier (word or quoted), stripping schema qualification
    /// (`db.table` → `table`).
    fn ident(&mut self) -> Result<Ident> {
        let mut name = match self.ident_here() {
            Some(id) => id,
            None => return Err(self.err_here("identifier")),
        };
        self.advance();
        while matches!(self.peek(), TokenKind::Dot) {
            self.advance();
            match self.ident_here() {
                Some(id) => {
                    name = id;
                    self.advance();
                }
                None => return Err(self.err_here("identifier after '.'")),
            }
        }
        Ok(name)
    }

    /// Skip tokens up to and including the next semicolon (or EOF).
    fn skip_to_semicolon(&mut self) {
        loop {
            match self.peek() {
                TokenKind::Semicolon => {
                    self.advance();
                    return;
                }
                TokenKind::Eof => return,
                _ => {
                    self.advance();
                }
            }
        }
    }

    /// Skip a balanced parenthesized token group, assuming we sit on `(`.
    fn skip_parens(&mut self) -> Result<()> {
        self.expect(&TokenKind::LParen, "'('")?;
        let mut depth = 1usize;
        loop {
            match self.peek() {
                TokenKind::LParen => {
                    depth += 1;
                    self.advance();
                }
                TokenKind::RParen => {
                    depth -= 1;
                    self.advance();
                    if depth == 0 {
                        return Ok(());
                    }
                }
                TokenKind::Eof => {
                    let t = self.peek_token();
                    return Err(ParseError::new(
                        ParseErrorKind::UnexpectedEof { expected: "')'".into() },
                        t.line,
                        t.column,
                    ));
                }
                _ => {
                    self.advance();
                }
            }
        }
    }

    /// Capture the raw text of a balanced parenthesized group (inclusive).
    fn capture_parens(&mut self) -> Result<String> {
        let mut out = String::from("(");
        self.expect(&TokenKind::LParen, "'('")?;
        let mut depth = 1usize;
        loop {
            match self.peek() {
                TokenKind::LParen => {
                    depth += 1;
                    out.push('(');
                    self.advance();
                }
                TokenKind::RParen => {
                    depth -= 1;
                    self.advance();
                    out.push(')');
                    if depth == 0 {
                        return Ok(out);
                    }
                }
                TokenKind::Eof => {
                    let t = self.peek_token();
                    return Err(ParseError::new(
                        ParseErrorKind::UnexpectedEof { expected: "')'".into() },
                        t.line,
                        t.column,
                    ));
                }
                other => {
                    if !out.ends_with('(') {
                        out.push(' ');
                    }
                    out.push_str(&raw_text(other));
                    self.advance();
                }
            }
        }
    }

    // ---- script ----------------------------------------------------------

    /// Parse every statement in the script.
    pub fn parse_script(&mut self) -> Result<Vec<Statement>> {
        let mut out = Vec::with_capacity(16);
        loop {
            // Tolerate stray semicolons between statements.
            while matches!(self.peek(), TokenKind::Semicolon) {
                self.advance();
            }
            if self.at_eof() {
                // A lexer error truncated the stream: surface it, like the
                // tokenize-first path would have before parsing began.
                if let Some(e) = self.lex_err.take() {
                    return Err(e);
                }
                return Ok(out);
            }
            match self.statement() {
                Ok(s) => out.push(s),
                // Prefer the lexer's own error over the parse error its
                // synthetic EOF provoked.
                Err(e) => return Err(self.lex_err.take().unwrap_or(e)),
            }
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.peek().is_keyword("CREATE") {
            self.create_statement()
        } else if self.peek().is_keyword("ALTER") && self.peek_at(1).is_keyword("TABLE") {
            self.alter_table()
        } else if self.peek().is_keyword("DROP") && self.peek_at(1).is_keyword("TABLE") {
            self.drop_table()
        } else if self.peek().is_keyword("RENAME") && self.peek_at(1).is_keyword("TABLE") {
            self.rename_table()
        } else {
            let leading = match self.peek().ident_text() {
                Some(t) => t.to_ascii_uppercase(),
                None => self.peek().to_string(),
            };
            self.skip_to_semicolon();
            Ok(Statement::Skipped { leading })
        }
    }

    fn create_statement(&mut self) -> Result<Statement> {
        // We sit on CREATE. Look ahead for what is being created. The
        // comparisons are case-insensitive in place — this runs once per
        // CREATE statement and must not allocate on the TABLE/INDEX path.
        const MODIFIERS: &[&str] = &[
            "TEMPORARY",
            "TEMP",
            "UNIQUE",
            "FULLTEXT",
            "SPATIAL",
            "OR",
            "REPLACE",
            "UNLOGGED",
            "GLOBAL",
            "LOCAL",
        ];
        let mut i = 1;
        // Modifiers that may precede the object keyword.
        while matches!(self.peek_at(i).ident_text(), Some(w) if MODIFIERS
            .iter()
            .any(|m| w.eq_ignore_ascii_case(m)))
        {
            i += 1;
        }
        let object = self.peek_at(i).ident_text();
        if object.is_some_and(|w| w.eq_ignore_ascii_case("TABLE")) {
            self.create_table()
        } else if object.is_some_and(|w| w.eq_ignore_ascii_case("INDEX")) {
            self.create_index()
        } else {
            let object = object.map(str::to_ascii_uppercase).unwrap_or_default();
            self.skip_to_semicolon();
            Ok(Statement::Skipped { leading: format!("CREATE {object}") })
        }
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_kw("CREATE")?;
        let _ = self.eat_kw("TEMPORARY") || self.eat_kw("TEMP") || self.eat_kw("UNLOGGED");
        self.expect_kw("TABLE")?;
        let if_not_exists = self.eat_kws(&["IF", "NOT", "EXISTS"]);
        let name = self.ident()?;
        let mut table = Table::new(name);

        // `CREATE TABLE t LIKE other;` or `AS SELECT`: skip, no columns known.
        if !matches!(self.peek(), TokenKind::LParen) {
            self.skip_to_semicolon();
            return Ok(Statement::CreateTable { table, if_not_exists });
        }

        self.advance(); // '('
                        // One up-front reservation instead of doubling through 4/8/16 as
                        // elements stream in; real tables cluster under a dozen columns.
        table.columns.reserve(12);
        loop {
            self.table_element(&mut table)?;
            match self.peek() {
                TokenKind::Comma => {
                    self.advance();
                }
                TokenKind::RParen => {
                    self.advance();
                    break;
                }
                _ => return Err(self.err_here("',' or ')' in table definition")),
            }
        }
        // Table options (ENGINE=… DEFAULT CHARSET=… etc.) up to semicolon.
        self.skip_to_semicolon();
        Ok(Statement::CreateTable { table, if_not_exists })
    }

    /// One element in the parenthesized body: a column or a constraint.
    fn table_element(&mut self, table: &mut Table) -> Result<()> {
        // Postgres EXCLUDE constraints and LIKE clauses inside the body are
        // tolerated by skipping the whole element (they carry no logical
        // attributes of their own).
        if self.peek().is_keyword("EXCLUDE") || self.peek().is_keyword("LIKE") {
            self.skip_table_element();
            return Ok(());
        }
        // Named constraint?
        if self.peek().is_keyword("CONSTRAINT") {
            self.advance();
            // Optional constraint name (absent when CONSTRAINT is followed
            // directly by the constraint kind).
            let name = if !self.peek_constraint_kind() { Some(self.ident()?) } else { None };
            let c = self.table_constraint(name)?;
            table.constraints.push(c);
            return Ok(());
        }
        if self.peek_constraint_kind() {
            let c = self.table_constraint(None)?;
            table.constraints.push(c);
            return Ok(());
        }
        // MySQL `UNIQUE KEY name (cols)` is a uniqueness constraint.
        if self.peek().is_keyword("UNIQUE")
            && (self.peek_at(1).is_keyword("KEY") || self.peek_at(1).is_keyword("INDEX"))
        {
            let c = self.table_constraint(None)?;
            table.constraints.push(c);
            return Ok(());
        }
        // MySQL index entries.
        if self.peek().is_keyword("KEY")
            || self.peek().is_keyword("INDEX")
            || self.peek().is_keyword("FULLTEXT")
            || self.peek().is_keyword("SPATIAL")
        {
            let idx = self.inline_index(false)?;
            table.indexes.push(idx);
            return Ok(());
        }
        // Otherwise: a column definition.
        let col = self.column_def(table)?;
        table.columns.push(col);
        Ok(())
    }

    fn peek_constraint_kind(&mut self) -> bool {
        (self.peek().is_keyword("PRIMARY") && self.peek_at(1).is_keyword("KEY"))
            || (self.peek().is_keyword("FOREIGN") && self.peek_at(1).is_keyword("KEY"))
            || (self.peek().is_keyword("UNIQUE")
                && matches!(self.peek_at(1), TokenKind::LParen))
            || self.peek().is_keyword("CHECK")
    }

    fn table_constraint(&mut self, name: Option<Ident>) -> Result<TableConstraint> {
        if self.eat_kws(&["PRIMARY", "KEY"]) {
            // MySQL allows an index type: PRIMARY KEY USING BTREE (…)
            self.maybe_using_clause();
            let columns = self.paren_column_list()?;
            return Ok(TableConstraint::PrimaryKey { name, columns });
        }
        if self.eat_kws(&["FOREIGN", "KEY"]) {
            // Optional index name before the column list (MySQL).
            let _ = if !matches!(self.peek(), TokenKind::LParen) {
                Some(self.ident()?)
            } else {
                None
            };
            let columns = self.paren_column_list()?;
            self.expect_kw("REFERENCES")?;
            let foreign_table = self.ident()?;
            let foreign_columns = if matches!(self.peek(), TokenKind::LParen) {
                self.paren_column_list()?
            } else {
                Vec::new()
            };
            let actions = self.fk_actions();
            return Ok(TableConstraint::ForeignKey(ForeignKey {
                name,
                columns,
                foreign_table,
                foreign_columns,
                actions,
            }));
        }
        if self.eat_kw("UNIQUE") {
            let _ = self.eat_kw("KEY") || self.eat_kw("INDEX");
            let idx_name = if !matches!(self.peek(), TokenKind::LParen) {
                Some(self.ident()?)
            } else {
                None
            };
            self.maybe_using_clause();
            let columns = self.paren_column_list()?;
            return Ok(TableConstraint::Unique { name: name.or(idx_name), columns });
        }
        if self.eat_kw("CHECK") {
            let expr = self.capture_parens()?;
            // MySQL 8: [NOT] ENFORCED
            let _ = self.eat_kws(&["NOT", "ENFORCED"]) || self.eat_kw("ENFORCED");
            return Ok(TableConstraint::Check { name, expr });
        }
        Err(self.err_here("table constraint"))
    }

    /// MySQL `KEY name (cols)` / `INDEX name (cols)` / FULLTEXT/SPATIAL keys.
    fn inline_index(&mut self, unique: bool) -> Result<IndexDef> {
        // We may sit on FULLTEXT/SPATIAL first.
        let _ = self.eat_kw("FULLTEXT") || self.eat_kw("SPATIAL");
        let _ = self.eat_kw("KEY") || self.eat_kw("INDEX");
        let name =
            if !matches!(self.peek(), TokenKind::LParen) && !self.peek().is_keyword("USING") {
                Some(self.ident()?)
            } else {
                None
            };
        self.maybe_using_clause();
        let columns = self.paren_column_list()?;
        self.maybe_using_clause();
        Ok(IndexDef { name, columns, unique })
    }

    fn maybe_using_clause(&mut self) {
        if self.peek().is_keyword("USING") {
            self.advance();
            self.advance(); // BTREE | HASH | GIN | …
        }
    }

    /// `(col [(len)] [ASC|DESC], …)` — index/key column lists, lengths and
    /// directions discarded. Also tolerates functional index entries by
    /// skipping balanced parens.
    fn paren_column_list(&mut self) -> Result<Vec<Ident>> {
        self.expect(&TokenKind::LParen, "'('")?;
        let mut cols = Vec::new();
        loop {
            match self.peek() {
                TokenKind::RParen => {
                    self.advance();
                    return Ok(cols);
                }
                TokenKind::LParen => {
                    // Functional index component: skip it.
                    self.skip_parens()?;
                }
                TokenKind::Comma => {
                    self.advance();
                }
                TokenKind::Eof => {
                    let t = self.peek_token();
                    return Err(ParseError::new(
                        ParseErrorKind::UnexpectedEof { expected: "')'".into() },
                        t.line,
                        t.column,
                    ));
                }
                _ => {
                    if let Some(id) = self.ident_here() {
                        self.advance();
                        // Optional prefix length `(10)` or ASC/DESC.
                        if matches!(self.peek(), TokenKind::LParen) {
                            self.skip_parens()?;
                        }
                        let _ = self.eat_kw("ASC") || self.eat_kw("DESC");
                        cols.push(id);
                    } else {
                        self.advance(); // tolerate exotic tokens
                    }
                }
            }
        }
    }

    fn fk_actions(&mut self) -> Vec<String> {
        let mut actions = Vec::new();
        loop {
            if self.peek().is_keyword("ON")
                && (self.peek_at(1).is_keyword("DELETE")
                    || self.peek_at(1).is_keyword("UPDATE"))
            {
                self.advance();
                let which = self.advance().to_string().to_ascii_uppercase();
                let mut action = String::new();
                // Action: CASCADE | RESTRICT | SET NULL | SET DEFAULT | NO ACTION
                while let Some(w) = self.peek().ident_text() {
                    let up = w.to_ascii_uppercase();
                    if !matches!(
                        up.as_str(),
                        "CASCADE" | "RESTRICT" | "SET" | "NULL" | "DEFAULT" | "NO" | "ACTION"
                    ) {
                        break;
                    }
                    if !action.is_empty() {
                        action.push(' ');
                    }
                    action.push_str(&up);
                    self.advance();
                }
                actions.push(format!("ON {which} {action}"));
            } else if self.eat_kw("DEFERRABLE")
                || self.eat_kws(&["NOT", "DEFERRABLE"])
                || self.eat_kws(&["INITIALLY", "DEFERRED"])
                || self.eat_kws(&["INITIALLY", "IMMEDIATE"])
                || self.eat_kws(&["MATCH", "FULL"])
                || self.eat_kws(&["MATCH", "PARTIAL"])
                || self.eat_kws(&["MATCH", "SIMPLE"])
            {
                // Postgres FK decorations, discarded.
            } else {
                return actions;
            }
        }
    }

    // ---- column definitions ----------------------------------------------

    fn column_def(&mut self, table: &mut Table) -> Result<Column> {
        let name = self.ident()?;
        let (sql_type, serial_auto) = self.sql_type()?;
        let mut col = Column::new(name, sql_type);
        col.auto_increment = serial_auto;
        if serial_auto {
            col.nullable = false; // SERIAL implies NOT NULL
        }
        self.column_options(&mut col, table)?;
        Ok(col)
    }

    /// Parse a data type. Returns the type and whether it was a SERIAL
    /// pseudo-type (implying auto-increment).
    fn sql_type(&mut self) -> Result<(SqlType, bool)> {
        if self.peek().ident_text().is_none() {
            return Err(self.err_here("data type"));
        }
        let first_tok = self.advance();
        let raw = first_tok.ident_text().expect("checked ident token");
        // Already-uppercase names (the canonical form every dump printed by
        // this workspace carries) are borrowed straight from the source
        // text; only mixed-case input pays for a case-folded copy.
        let mut name: Cow<'_, str> = if raw.bytes().any(|b| b.is_ascii_lowercase()) {
            Cow::Owned(raw.to_ascii_uppercase())
        } else {
            Cow::Borrowed(raw)
        };

        // Multi-word types. (WITH/WITHOUT TIME ZONE for TIME/TIMESTAMP is
        // handled after the params: precision comes first in PG —
        // `timestamp(3) with time zone` — and both orders are re-checked
        // there.)
        if name == "DOUBLE" {
            if self.eat_kw("PRECISION") {
                name = Cow::Borrowed("DOUBLE PRECISION");
            }
        } else if name == "CHARACTER" || name == "CHAR" || name == "NATIONAL" {
            if self.eat_kw("VARYING") {
                name = Cow::Borrowed("VARCHAR");
            } else if name == "NATIONAL" {
                if self.eat_kw("CHARACTER") || self.eat_kw("CHAR") {
                    let varying = self.eat_kw("VARYING");
                    name = Cow::Borrowed(if varying { "NVARCHAR" } else { "NCHAR" });
                }
            } else if name == "CHARACTER" {
                name = Cow::Borrowed("CHAR");
            }
        } else if name == "BIT" && self.eat_kw("VARYING") {
            name = Cow::Borrowed("VARBIT");
        }

        // Parameters.
        let mut params = Vec::new();
        if matches!(self.peek(), TokenKind::LParen) {
            self.advance();
            loop {
                match self.peek() {
                    TokenKind::RParen => {
                        self.advance();
                        break;
                    }
                    TokenKind::Comma => {
                        self.advance();
                    }
                    TokenKind::Number(n) => {
                        // Copy the `&'a str` out of the token so interning
                        // can borrow `self` after the peek ends.
                        let text: &str = n;
                        let p = self.make_ident(text);
                        params.push(p);
                        self.advance();
                    }
                    TokenKind::StringLit(s) => {
                        let quoted = format!("'{s}'");
                        let p = self.make_ident(&quoted);
                        params.push(p);
                        self.advance();
                    }
                    other => {
                        let text = raw_text(other);
                        let p = self.make_ident(&text);
                        params.push(p);
                        self.advance();
                    }
                }
            }
        }

        // WITH/WITHOUT TIME ZONE (after optional precision). `WITH TIME ZONE`
        // canonicalizes to the TZ-carrying type name so a zone change counts
        // as a data-type change in the diff.
        if (name == "TIME" || name == "TIMESTAMP")
            && (self.peek().is_keyword("WITH") || self.peek().is_keyword("WITHOUT"))
        {
            let with = self.advance().is_keyword("WITH");
            self.expect_kw("TIME")?;
            self.expect_kw("ZONE")?;
            if with {
                name = Cow::Borrowed(if name == "TIME" { "TIMETZ" } else { "TIMESTAMPTZ" });
            }
        }

        // MySQL display modifiers.
        let mut modifiers = Vec::new();
        while self.peek().is_keyword("UNSIGNED")
            || self.peek().is_keyword("SIGNED")
            || self.peek().is_keyword("ZEROFILL")
        {
            if let Some(w) = self.peek().ident_text() {
                modifiers.push(w.to_ascii_uppercase());
            }
            self.advance();
        }

        // Postgres array suffix `[]` (possibly multi-dimensional).
        while matches!(self.peek(), TokenKind::Op(o) if *o == "[") {
            self.advance();
            if matches!(self.peek(), TokenKind::Number(_)) {
                self.advance();
            }
            if matches!(self.peek(), TokenKind::Op(o) if *o == "]") {
                self.advance();
            }
            name.to_mut().push_str("[]");
        }

        // `name` is already uppercase here, so alias lookup needs no second
        // case-fold; un-aliased names are interned verbatim.
        let (canonical, serial) = normalize_type_name(&name);
        let tname = self.make_ident(canonical.unwrap_or(&name));
        Ok((SqlType { name: tname, params, modifiers }, serial))
    }

    fn column_options(&mut self, col: &mut Column, table: &mut Table) -> Result<()> {
        loop {
            if self.eat_kws(&["NOT", "NULL"]) {
                col.nullable = false;
            } else if self.eat_kw("NULL") {
                col.nullable = true;
            } else if self.eat_kw("DEFAULT") {
                col.default = Some(self.default_expr()?);
            } else if self.eat_kw("AUTO_INCREMENT") || self.eat_kw("AUTOINCREMENT") {
                col.auto_increment = true;
            } else if self.eat_kws(&["PRIMARY", "KEY"]) {
                col.inline_primary_key = true;
                col.nullable = false;
            } else if self.eat_kw("UNIQUE") {
                let _ = self.eat_kw("KEY");
                col.unique = true;
            } else if self.eat_kw("KEY") {
                // Bare KEY after a column in MySQL means "make it a key".
            } else if self.eat_kw("COMMENT") {
                if let TokenKind::StringLit(s) = self.peek().clone() {
                    col.comment = Some(s.into_owned());
                    self.advance();
                }
            } else if self.eat_kw("COLLATE")
                || self.eat_kws(&["CHARACTER", "SET"])
                || self.eat_kw("CHARSET")
            {
                let _ = self.ident();
            } else if self.eat_kws(&["ON", "UPDATE"]) || self.eat_kws(&["ON", "DELETE"]) {
                // e.g. `ON UPDATE CURRENT_TIMESTAMP`
                let _ = self.default_expr()?;
            } else if self.eat_kw("REFERENCES") {
                // Inline FK: promote to table-level constraint.
                let foreign_table = self.ident()?;
                let foreign_columns = if matches!(self.peek(), TokenKind::LParen) {
                    self.paren_column_list()?
                } else {
                    Vec::new()
                };
                let actions = self.fk_actions();
                table.constraints.push(TableConstraint::ForeignKey(ForeignKey {
                    name: None,
                    columns: vec![col.name.clone()],
                    foreign_table,
                    foreign_columns,
                    actions,
                }));
            } else if self.eat_kw("CHECK") {
                let expr = self.capture_parens()?;
                table.constraints.push(TableConstraint::Check { name: None, expr });
            } else if self.eat_kw("CONSTRAINT") {
                // Named inline constraint: `CONSTRAINT nn NOT NULL` etc.
                let _ = self.ident();
            } else if self.eat_kws(&["GENERATED", "ALWAYS", "AS"])
                || self.eat_kws(&["GENERATED", "BY", "DEFAULT", "AS"])
            {
                if self.eat_kw("IDENTITY") {
                    col.auto_increment = true;
                    if matches!(self.peek(), TokenKind::LParen) {
                        self.skip_parens()?;
                    }
                } else if matches!(self.peek(), TokenKind::LParen) {
                    self.skip_parens()?;
                    let _ = self.eat_kw("STORED") || self.eat_kw("VIRTUAL");
                }
            } else {
                return Ok(());
            }
        }
    }

    /// Parse a DEFAULT expression into raw text. Handles literals, NULL,
    /// keywords like CURRENT_TIMESTAMP (with optional precision), function
    /// calls, signed numbers, and Postgres `::type` casts.
    fn default_expr(&mut self) -> Result<String> {
        let mut out;
        match self.peek().clone() {
            TokenKind::StringLit(s) => {
                out = format!("'{s}'");
                self.advance();
            }
            TokenKind::Number(n) => {
                out = n.to_string();
                self.advance();
            }
            TokenKind::Op(o) if o == "-" || o == "+" => {
                self.advance();
                if let TokenKind::Number(n) = self.peek().clone() {
                    out = format!("{o}{n}");
                    self.advance();
                } else {
                    out = o.to_string();
                }
            }
            TokenKind::LParen => {
                out = self.capture_parens()?;
            }
            TokenKind::Word(w) => {
                out = w.to_string();
                self.advance();
                if matches!(self.peek(), TokenKind::LParen) {
                    out.push_str(&self.capture_parens()?);
                } else if let TokenKind::StringLit(s) = self.peek().clone() {
                    // Charset introducers and bit literals: `_utf8'x'`, `b'0'`.
                    out.push_str(&format!("'{s}'"));
                    self.advance();
                }
            }
            TokenKind::QuotedIdent(q) => {
                out = q.into_owned();
                self.advance();
            }
            _ => return Err(self.err_here("default expression")),
        }
        // Postgres cast chains: `'x'::character varying`.
        while matches!(self.peek(), TokenKind::Op(o) if *o == "::") {
            self.advance();
            let (t, _) = self.sql_type()?;
            out.push_str("::");
            out.push_str(&t.to_string());
        }
        Ok(out)
    }

    // ---- ALTER TABLE -------------------------------------------------------

    fn alter_table(&mut self) -> Result<Statement> {
        self.expect_kw("ALTER")?;
        self.expect_kw("TABLE")?;
        let _ = self.eat_kws(&["IF", "EXISTS"]);
        let _ = self.eat_kw("ONLY"); // Postgres
        let table = self.ident()?;
        let mut ops = Vec::new();
        loop {
            ops.push(self.alter_op()?);
            match self.peek() {
                TokenKind::Comma => {
                    self.advance();
                }
                TokenKind::Semicolon => {
                    self.advance();
                    break;
                }
                TokenKind::Eof => break,
                _ => {
                    // Unknown trailing clause (table options): skip statement.
                    self.skip_to_semicolon();
                    break;
                }
            }
        }
        Ok(Statement::AlterTable { table, ops })
    }

    fn alter_op(&mut self) -> Result<AlterOp> {
        if self.eat_kw("ADD") {
            if self.eat_kw("CONSTRAINT") {
                let name =
                    if !self.peek_constraint_kind() { Some(self.ident()?) } else { None };
                let c = self.table_constraint(name)?;
                return Ok(AlterOp::AddConstraint(c));
            }
            if self.peek_constraint_kind() {
                let c = self.table_constraint(None)?;
                return Ok(AlterOp::AddConstraint(c));
            }
            if self.peek().is_keyword("KEY")
                || self.peek().is_keyword("INDEX")
                || self.peek().is_keyword("FULLTEXT")
                || self.peek().is_keyword("SPATIAL")
            {
                let idx = self.inline_index(false)?;
                return Ok(AlterOp::AddIndex(idx));
            }
            if self.peek().is_keyword("UNIQUE") {
                self.advance();
                let idx = self.inline_index(true)?;
                return Ok(AlterOp::AddIndex(idx));
            }
            let _ = self.eat_kw("COLUMN");
            let _ = self.eat_kws(&["IF", "NOT", "EXISTS"]);
            // ADD COLUMN supports parenthesized multi-column form in MySQL;
            // we parse the single-column form and let apply() handle lists
            // via repeated ops. Parenthesized form: skip gracefully.
            if matches!(self.peek(), TokenKind::LParen) {
                // `ADD (col def, col def)` — parse the first column; skip the
                // rest with balanced-paren awareness (types carry parens).
                self.advance();
                let mut dummy = Table::new("_");
                let col = self.column_def(&mut dummy)?;
                let mut depth = 1usize;
                loop {
                    match self.peek() {
                        TokenKind::LParen => {
                            depth += 1;
                            self.advance();
                        }
                        TokenKind::RParen => {
                            depth -= 1;
                            self.advance();
                            if depth == 0 {
                                break;
                            }
                        }
                        TokenKind::Eof => break,
                        _ => {
                            self.advance();
                        }
                    }
                }
                return Ok(AlterOp::AddColumn(col));
            }
            let mut dummy = Table::new("_");
            let col = self.column_def(&mut dummy)?;
            // Position clauses.
            if self.eat_kw("FIRST") {
            } else if self.eat_kw("AFTER") {
                let _ = self.ident();
            }
            // MySQL allows `ADD c INT NOT NULL AFTER x` — col parsed already.
            return Ok(AlterOp::AddColumn(col));
        }
        if self.eat_kw("DROP") {
            if self.eat_kws(&["PRIMARY", "KEY"]) {
                return Ok(AlterOp::DropPrimaryKey);
            }
            if self.eat_kw("CONSTRAINT")
                || self.eat_kws(&["FOREIGN", "KEY"])
                || self.eat_kw("KEY")
                || self.eat_kw("INDEX")
            {
                let _ = self.eat_kws(&["IF", "EXISTS"]);
                let name = self.ident()?;
                let _ = self.eat_kw("CASCADE") || self.eat_kw("RESTRICT");
                return Ok(AlterOp::DropConstraint(name));
            }
            let _ = self.eat_kw("COLUMN");
            let _ = self.eat_kws(&["IF", "EXISTS"]);
            let name = self.ident()?;
            let _ = self.eat_kw("CASCADE") || self.eat_kw("RESTRICT");
            return Ok(AlterOp::DropColumn(name));
        }
        if self.eat_kw("MODIFY") {
            let _ = self.eat_kw("COLUMN");
            let mut dummy = Table::new("_");
            let col = self.column_def(&mut dummy)?;
            if self.eat_kw("AFTER") {
                let _ = self.ident();
            } else {
                let _ = self.eat_kw("FIRST");
            }
            return Ok(AlterOp::ModifyColumn(col));
        }
        if self.eat_kw("CHANGE") {
            let _ = self.eat_kw("COLUMN");
            let old_name = self.ident()?;
            let mut dummy = Table::new("_");
            let col = self.column_def(&mut dummy)?;
            if self.eat_kw("AFTER") {
                let _ = self.ident();
            } else {
                let _ = self.eat_kw("FIRST");
            }
            return Ok(AlterOp::ChangeColumn { old_name, new: col });
        }
        if self.eat_kw("ALTER") {
            let _ = self.eat_kw("COLUMN");
            let column = self.ident()?;
            if self.eat_kws(&["TYPE"]) || self.eat_kws(&["SET", "DATA", "TYPE"]) {
                let (sql_type, _) = self.sql_type()?;
                // USING expr — skip.
                if self.eat_kw("USING") {
                    self.skip_using_expr();
                }
                return Ok(AlterOp::SetColumnType { column, sql_type });
            }
            if self.eat_kws(&["SET", "NOT", "NULL"]) {
                return Ok(AlterOp::SetColumnNotNull { column, not_null: true });
            }
            if self.eat_kws(&["DROP", "NOT", "NULL"]) {
                return Ok(AlterOp::SetColumnNotNull { column, not_null: false });
            }
            if self.eat_kws(&["SET", "DEFAULT"]) {
                let d = self.default_expr()?;
                return Ok(AlterOp::SetColumnDefault { column, default: Some(d) });
            }
            if self.eat_kws(&["DROP", "DEFAULT"]) {
                return Ok(AlterOp::SetColumnDefault { column, default: None });
            }
            // Unknown ALTER COLUMN clause: skip to comma/semicolon.
            self.skip_clause();
            return Ok(AlterOp::Ignored);
        }
        if self.eat_kw("RENAME") {
            if self.eat_kw("COLUMN") {
                let old_name = self.ident()?;
                self.expect_kw("TO")?;
                let new_name = self.ident()?;
                return Ok(AlterOp::RenameColumn { old_name, new_name });
            }
            let _ = self.eat_kw("TO") || self.eat_kw("AS");
            let new_name = self.ident()?;
            return Ok(AlterOp::RenameTable { new_name });
        }
        // ENGINE=…, AUTO_INCREMENT=…, CONVERT TO CHARACTER SET, OWNER TO, etc.
        self.skip_clause();
        Ok(AlterOp::Ignored)
    }

    /// Skip the rest of a table-body element: stop *before* the separating
    /// comma or the body's closing paren (balanced inside nested parens).
    fn skip_table_element(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                TokenKind::LParen => {
                    depth += 1;
                    self.advance();
                }
                TokenKind::RParen => {
                    if depth == 0 {
                        return; // the table body's closing paren
                    }
                    depth -= 1;
                    self.advance();
                }
                TokenKind::Comma if depth == 0 => return,
                TokenKind::Semicolon | TokenKind::Eof => return,
                _ => {
                    self.advance();
                }
            }
        }
    }

    /// Skip to the next top-level comma or semicolon (balanced in parens).
    fn skip_clause(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                TokenKind::LParen => {
                    depth += 1;
                    self.advance();
                }
                TokenKind::RParen => {
                    depth = depth.saturating_sub(1);
                    self.advance();
                }
                TokenKind::Comma if depth == 0 => return,
                TokenKind::Semicolon | TokenKind::Eof => return,
                _ => {
                    self.advance();
                }
            }
        }
    }

    /// Skip a `USING <expr>` tail inside ALTER COLUMN TYPE.
    fn skip_using_expr(&mut self) {
        self.skip_clause();
    }

    // ---- DROP TABLE / CREATE INDEX ----------------------------------------

    fn drop_table(&mut self) -> Result<Statement> {
        self.expect_kw("DROP")?;
        self.expect_kw("TABLE")?;
        let if_exists = self.eat_kws(&["IF", "EXISTS"]);
        let mut names = vec![self.ident()?];
        while matches!(self.peek(), TokenKind::Comma) {
            self.advance();
            names.push(self.ident()?);
        }
        let _ = self.eat_kw("CASCADE") || self.eat_kw("RESTRICT");
        self.skip_to_semicolon();
        Ok(Statement::DropTable { names, if_exists })
    }

    fn rename_table(&mut self) -> Result<Statement> {
        self.expect_kw("RENAME")?;
        self.expect_kw("TABLE")?;
        let mut renames = Vec::new();
        loop {
            let from = self.ident()?;
            self.expect_kw("TO")?;
            let to = self.ident()?;
            renames.push((from, to));
            if matches!(self.peek(), TokenKind::Comma) {
                self.advance();
            } else {
                break;
            }
        }
        self.skip_to_semicolon();
        Ok(Statement::RenameTable { renames })
    }

    fn create_index(&mut self) -> Result<Statement> {
        self.expect_kw("CREATE")?;
        let unique = self.eat_kw("UNIQUE");
        let _ = self.eat_kw("FULLTEXT") || self.eat_kw("SPATIAL");
        self.expect_kw("INDEX")?;
        let _ = self.eat_kw("CONCURRENTLY");
        let _ = self.eat_kws(&["IF", "NOT", "EXISTS"]);
        let name = if !self.peek().is_keyword("ON") { Some(self.ident()?) } else { None };
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.maybe_using_clause();
        let columns = if matches!(self.peek(), TokenKind::LParen) {
            self.paren_column_list()?
        } else {
            Vec::new()
        };
        self.skip_to_semicolon();
        Ok(Statement::CreateIndex { table, index: IndexDef { name, columns, unique } })
    }
}

/// Render a token back to approximate raw text (used when capturing
/// expressions verbatim).
fn raw_text(kind: &TokenKind<'_>) -> String {
    match kind {
        TokenKind::Word(w) => (*w).to_string(),
        TokenKind::QuotedIdent(q) => q.to_string(),
        TokenKind::StringLit(s) => format!("'{s}'"),
        TokenKind::Number(n) => (*n).to_string(),
        TokenKind::LParen => "(".into(),
        TokenKind::RParen => ")".into(),
        TokenKind::Comma => ",".into(),
        TokenKind::Semicolon => ";".into(),
        TokenKind::Dot => ".".into(),
        TokenKind::Eq => "=".into(),
        TokenKind::Op(o) => (*o).to_string(),
        TokenKind::Eof => String::new(),
    }
}

/// Normalize type-name aliases across dialects. The input is already
/// uppercased by `sql_type`; returns the canonical static name when the
/// alias table matches (so no fresh `String` is built on the hot path) and
/// whether the type was a SERIAL pseudo-type.
fn normalize_type_name(up: &str) -> (Option<&'static str>, bool) {
    match up {
        "INTEGER" | "INT4" | "MEDIUMINT" => (Some("INT"), false),
        "INT8" => (Some("BIGINT"), false),
        "INT2" => (Some("SMALLINT"), false),
        "SERIAL" | "SERIAL4" => (Some("INT"), true),
        "BIGSERIAL" | "SERIAL8" => (Some("BIGINT"), true),
        "SMALLSERIAL" | "SERIAL2" => (Some("SMALLINT"), true),
        "BOOL" => (Some("BOOLEAN"), false),
        "DEC" | "FIXED" | "NUMERIC" => (Some("DECIMAL"), false),
        "FLOAT4" => (Some("REAL"), false),
        "FLOAT8" => (Some("DOUBLE PRECISION"), false),
        "CHARACTER" => (Some("CHAR"), false),
        _ => (None, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_my(sql: &str) -> Vec<Statement> {
        parse_statements(sql, Dialect::MySql).unwrap()
    }

    fn parse_pg(sql: &str) -> Vec<Statement> {
        parse_statements(sql, Dialect::Postgres).unwrap()
    }

    fn only_table(stmts: Vec<Statement>) -> Table {
        match stmts.into_iter().next().unwrap() {
            Statement::CreateTable { table, .. } => table,
            other => panic!("expected CreateTable, got {other:?}"),
        }
    }

    #[test]
    fn simple_create_table() {
        let t =
            only_table(parse_my("CREATE TABLE users (id INT NOT NULL, name VARCHAR(100));"));
        assert_eq!(t.name, "users");
        assert_eq!(t.columns.len(), 2);
        assert!(!t.columns[0].nullable);
        assert!(t.columns[1].nullable);
        assert_eq!(t.columns[1].sql_type, SqlType::with_params("VARCHAR", &["100"]));
    }

    #[test]
    fn create_table_if_not_exists() {
        match &parse_my("CREATE TABLE IF NOT EXISTS t (a INT);")[0] {
            Statement::CreateTable { if_not_exists, .. } => assert!(*if_not_exists),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn inline_and_table_level_primary_keys() {
        let t = only_table(parse_my(
            "CREATE TABLE t (id INT PRIMARY KEY, b INT, PRIMARY KEY (id));",
        ));
        assert!(t.columns[0].inline_primary_key);
        assert_eq!(t.primary_key(), vec!["id".to_string()]);
    }

    #[test]
    fn mysql_full_flavor() {
        let sql = r#"
            CREATE TABLE `order_items` (
              `id` int(11) unsigned NOT NULL AUTO_INCREMENT,
              `order_id` int(11) NOT NULL,
              `price` decimal(10,2) DEFAULT '0.00',
              `status` enum('new','paid') NOT NULL DEFAULT 'new',
              `created` timestamp NOT NULL DEFAULT CURRENT_TIMESTAMP ON UPDATE CURRENT_TIMESTAMP,
              `note` text COMMENT 'free form',
              PRIMARY KEY (`id`),
              UNIQUE KEY `uniq_order` (`order_id`),
              KEY `idx_status` (`status`),
              CONSTRAINT `fk_order` FOREIGN KEY (`order_id`) REFERENCES `orders` (`id`) ON DELETE CASCADE
            ) ENGINE=InnoDB DEFAULT CHARSET=utf8;
        "#;
        let t = only_table(parse_my(sql));
        assert_eq!(t.columns.len(), 6);
        let id = t.column("id").unwrap();
        assert!(id.auto_increment);
        assert_eq!(id.sql_type.modifiers, vec!["UNSIGNED".to_string()]);
        assert_eq!(t.column("price").unwrap().default.as_deref(), Some("'0.00'"));
        assert_eq!(
            t.column("status").unwrap().sql_type.params,
            vec!["'new'".to_string(), "'paid'".to_string()]
        );
        assert_eq!(t.column("note").unwrap().comment.as_deref(), Some("free form"));
        assert_eq!(t.primary_key(), vec!["id".to_string()]);
        assert_eq!(t.indexes.len(), 1);
        assert_eq!(t.foreign_keys().count(), 1);
        let fk = t.foreign_keys().next().unwrap();
        assert_eq!(fk.foreign_table, "orders");
        assert_eq!(fk.actions, vec!["ON DELETE CASCADE".to_string()]);
    }

    #[test]
    fn postgres_full_flavor() {
        let sql = r#"
            CREATE TABLE "Accounts" (
              id BIGSERIAL PRIMARY KEY,
              owner_id integer REFERENCES users(id) ON DELETE SET NULL,
              balance numeric(12,2) NOT NULL DEFAULT 0,
              tags text[],
              created_at timestamp with time zone DEFAULT now()
            );
        "#;
        let t = only_table(parse_pg(sql));
        assert_eq!(t.name, "Accounts");
        let id = t.column("id").unwrap();
        assert!(id.auto_increment);
        assert_eq!(id.sql_type.name, "BIGINT");
        assert!(id.inline_primary_key);
        assert_eq!(t.column("balance").unwrap().sql_type.name, "DECIMAL");
        assert_eq!(t.column("tags").unwrap().sql_type.name, "TEXT[]");
        assert_eq!(t.foreign_keys().count(), 1);
        assert_eq!(t.column("created_at").unwrap().default.as_deref(), Some("now()"));
    }

    #[test]
    fn schema_qualified_names_are_stripped() {
        let t = only_table(parse_pg("CREATE TABLE public.users (id int);"));
        assert_eq!(t.name, "users");
    }

    #[test]
    fn alter_table_mysql() {
        let stmts = parse_my(
            "ALTER TABLE t ADD COLUMN age INT NOT NULL AFTER name, \
             DROP COLUMN old, \
             MODIFY COLUMN name VARCHAR(200), \
             CHANGE nick nickname VARCHAR(50);",
        );
        match &stmts[0] {
            Statement::AlterTable { table, ops } => {
                assert_eq!(table, "t");
                assert_eq!(ops.len(), 4);
                assert!(
                    matches!(&ops[0], AlterOp::AddColumn(c) if c.name == "age" && !c.nullable)
                );
                assert!(matches!(&ops[1], AlterOp::DropColumn(n) if n == "old"));
                assert!(
                    matches!(&ops[2], AlterOp::ModifyColumn(c) if c.sql_type == SqlType::with_params("VARCHAR", &["200"]))
                );
                assert!(
                    matches!(&ops[3], AlterOp::ChangeColumn { old_name, new } if old_name == "nick" && new.name == "nickname")
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn alter_table_postgres() {
        let stmts = parse_pg(
            "ALTER TABLE ONLY t ALTER COLUMN a TYPE bigint, \
             ALTER COLUMN b SET NOT NULL, \
             ALTER COLUMN c DROP DEFAULT, \
             RENAME COLUMN d TO e;",
        );
        match &stmts[0] {
            Statement::AlterTable { ops, .. } => {
                assert!(
                    matches!(&ops[0], AlterOp::SetColumnType { column, sql_type } if column == "a" && sql_type.name == "BIGINT")
                );
                assert!(matches!(&ops[1], AlterOp::SetColumnNotNull { not_null: true, .. }));
                assert!(matches!(&ops[2], AlterOp::SetColumnDefault { default: None, .. }));
                assert!(
                    matches!(&ops[3], AlterOp::RenameColumn { old_name, new_name } if old_name == "d" && new_name == "e")
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn alter_add_constraint() {
        let stmts = parse_pg(
            "ALTER TABLE t ADD CONSTRAINT pk_t PRIMARY KEY (id), \
             ADD CONSTRAINT fk_u FOREIGN KEY (uid) REFERENCES users(id);",
        );
        match &stmts[0] {
            Statement::AlterTable { ops, .. } => {
                assert!(matches!(
                    &ops[0],
                    AlterOp::AddConstraint(TableConstraint::PrimaryKey { name: Some(n), .. }) if n == "pk_t"
                ));
                assert!(matches!(
                    &ops[1],
                    AlterOp::AddConstraint(TableConstraint::ForeignKey(fk)) if fk.foreign_table == "users"
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn drop_table_variants() {
        match &parse_my("DROP TABLE IF EXISTS a, b CASCADE;")[0] {
            Statement::DropTable { names, if_exists } => {
                assert_eq!(names, &["a".to_string(), "b".to_string()]);
                assert!(*if_exists);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn create_index_statement() {
        match &parse_pg("CREATE UNIQUE INDEX idx_email ON users (email);")[0] {
            Statement::CreateIndex { table, index } => {
                assert_eq!(table, "users");
                assert!(index.unique);
                assert_eq!(index.columns, vec!["email".to_string()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_statements_are_skipped() {
        let stmts = parse_my(
            "SET NAMES utf8; \
             INSERT INTO t VALUES (1, 'x'); \
             CREATE TABLE t (a INT); \
             GRANT ALL ON t TO x;",
        );
        let kinds: Vec<_> =
            stmts.iter().map(|s| matches!(s, Statement::CreateTable { .. })).collect();
        assert_eq!(kinds, vec![false, false, true, false]);
    }

    #[test]
    fn create_view_is_skipped() {
        let stmts = parse_my("CREATE VIEW v AS SELECT 1; CREATE TABLE t (a INT);");
        assert!(
            matches!(&stmts[0], Statement::Skipped { leading } if leading == "CREATE VIEW")
        );
        assert!(matches!(&stmts[1], Statement::CreateTable { .. }));
    }

    #[test]
    fn dump_file_with_locks_and_comments() {
        let sql = r#"
            -- MySQL dump 10.13
            /*!40101 SET @saved_cs_client = @@character_set_client */;
            LOCK TABLES `t` WRITE;
            CREATE TABLE `t` (
              `a` int(11) DEFAULT NULL
            );
            UNLOCK TABLES;
        "#;
        let stmts = parse_my(sql);
        assert_eq!(
            stmts.iter().filter(|s| matches!(s, Statement::CreateTable { .. })).count(),
            1
        );
    }

    #[test]
    fn serial_types_normalize() {
        let t = only_table(parse_pg("CREATE TABLE t (a serial, b smallserial, c serial8);"));
        assert_eq!(t.columns[0].sql_type.name, "INT");
        assert!(t.columns[0].auto_increment);
        assert_eq!(t.columns[1].sql_type.name, "SMALLINT");
        assert_eq!(t.columns[2].sql_type.name, "BIGINT");
    }

    #[test]
    fn type_aliases_normalize() {
        let t = only_table(parse_my(
            "CREATE TABLE t (a INTEGER, b BOOL, c NUMERIC(8,3), d CHARACTER VARYING(99), e DOUBLE PRECISION);",
        ));
        assert_eq!(t.columns[0].sql_type.name, "INT");
        assert_eq!(t.columns[1].sql_type.name, "BOOLEAN");
        assert_eq!(t.columns[2].sql_type.name, "DECIMAL");
        assert_eq!(t.columns[3].sql_type, SqlType::with_params("VARCHAR", &["99"]));
        assert_eq!(t.columns[4].sql_type.name, "DOUBLE PRECISION");
    }

    #[test]
    fn composite_primary_key() {
        let t = only_table(parse_my("CREATE TABLE m (a INT, b INT, PRIMARY KEY (a, b));"));
        assert_eq!(t.primary_key(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn key_with_prefix_lengths() {
        let t =
            only_table(parse_my("CREATE TABLE t (a VARCHAR(500), KEY idx_a (a(100) DESC));"));
        assert_eq!(t.indexes[0].columns, vec!["a".to_string()]);
    }

    #[test]
    fn check_constraints_capture_expression() {
        let t = only_table(parse_pg("CREATE TABLE t (a INT, CONSTRAINT pos CHECK (a > 0));"));
        assert!(matches!(
            &t.constraints[0],
            TableConstraint::Check { name: Some(n), .. } if n == "pos"
        ));
    }

    #[test]
    fn default_expression_variants() {
        let t = only_table(parse_pg(
            "CREATE TABLE t (
                a INT DEFAULT -1,
                b TEXT DEFAULT 'x'::character varying,
                c TIMESTAMP DEFAULT CURRENT_TIMESTAMP,
                d NUMERIC DEFAULT 0.0,
                e TEXT DEFAULT NULL
             );",
        ));
        assert_eq!(t.column("a").unwrap().default.as_deref(), Some("-1"));
        assert!(t.column("b").unwrap().default.as_deref().unwrap().starts_with("'x'::"));
        assert_eq!(t.column("c").unwrap().default.as_deref(), Some("CURRENT_TIMESTAMP"));
        assert_eq!(t.column("e").unwrap().default.as_deref(), Some("NULL"));
    }

    #[test]
    fn error_on_garbage_in_table_body() {
        let err = parse_statements("CREATE TABLE t (a INT ;", Dialect::MySql).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedToken { .. }));
    }

    #[test]
    fn rename_table_op() {
        let stmts = parse_my("ALTER TABLE t RENAME TO s;");
        match &stmts[0] {
            Statement::AlterTable { ops, .. } => {
                assert!(
                    matches!(&ops[0], AlterOp::RenameTable { new_name } if new_name == "s")
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn postgres_exclude_and_like_elements_skipped() {
        let t = only_table(parse_pg(
            "CREATE TABLE bookings (
                room INT,
                during TEXT,
                EXCLUDE USING gist (room WITH =, during WITH &&),
                LIKE template_table INCLUDING ALL
             );",
        ));
        assert_eq!(t.columns.len(), 2);
        assert!(t.constraints.is_empty());
    }

    #[test]
    fn partitioned_table_options_skipped() {
        let t = only_table(parse_my(
            "CREATE TABLE metrics (id INT, ts DATE)              PARTITION BY RANGE (ts) (PARTITION p0 VALUES LESS THAN (2020));",
        ));
        assert_eq!(t.columns.len(), 2);
    }

    #[test]
    fn rename_table_statement() {
        let stmts = parse_my("RENAME TABLE old1 TO new1, old2 TO new2;");
        match &stmts[0] {
            Statement::RenameTable { renames } => {
                assert_eq!(renames.len(), 2);
                assert_eq!(renames[0].0, "old1");
                assert_eq!(renames[0].1, "new1");
                assert_eq!(renames[1].0, "old2");
                assert_eq!(renames[1].1, "new2");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ignored_alter_clauses() {
        let stmts = parse_my("ALTER TABLE t ENGINE=InnoDB;");
        match &stmts[0] {
            Statement::AlterTable { ops, .. } => {
                assert!(matches!(ops[0], AlterOp::Ignored));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn generated_identity_column() {
        let t = only_table(parse_pg(
            "CREATE TABLE t (id int GENERATED ALWAYS AS IDENTITY PRIMARY KEY);",
        ));
        assert!(t.columns[0].auto_increment);
    }

    #[test]
    fn parser_reports_its_dialect() {
        for dialect in [Dialect::Generic, Dialect::MySql, Dialect::Postgres] {
            let tokens = Lexer::new("CREATE TABLE t (a INT);", dialect).tokenize().unwrap();
            assert_eq!(Parser::new(tokens, dialect).dialect(), dialect);
        }
    }

    #[test]
    fn streaming_and_legacy_schemas_agree() {
        let sql = "CREATE TABLE Users (Id INT PRIMARY KEY, Name VARCHAR(10));\
                   ALTER TABLE users ADD COLUMN age INT;";
        let a = parse_schema(sql, Dialect::MySql).unwrap();
        let b = parse_schema_legacy(sql, Dialect::MySql).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn interned_parse_shares_symbols_across_versions() {
        let interner = Interner::new();
        let v1 = parse_schema_interned("CREATE TABLE t (a INT);", Dialect::MySql, &interner)
            .unwrap();
        let v2 =
            parse_schema_interned("CREATE TABLE t (a INT, b INT);", Dialect::MySql, &interner)
                .unwrap();
        let t1 = v1.table("t").unwrap();
        let t2 = v2.table("t").unwrap();
        assert_eq!(t1.name.interner_id(), interner.id());
        assert_eq!(t1.name.symbol(), t2.name.symbol());
        assert_eq!(t1.columns[0].name.symbol(), t2.columns[0].name.symbol());
    }

    #[test]
    fn lex_errors_surface_from_the_streaming_parser() {
        let err = parse_statements("CREATE TABLE t (a INT); 'unterminated", Dialect::MySql)
            .unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnterminatedLiteral(_)), "{err:?}");
    }
}
