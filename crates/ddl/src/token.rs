//! Token definitions produced by the [`crate::lexer::Lexer`].

use std::fmt;

/// A single lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The kind of this item.
    pub kind: TokenKind,
    /// 1-based line where the token starts.
    pub line: u32,
    /// 1-based column where the token starts.
    pub column: u32,
}

/// The lexical class of a token.
///
/// SQL keywords are *not* distinguished at the lexer level: identifiers carry
/// their raw text and the parser matches keywords case-insensitively. This
/// keeps the lexer dialect-agnostic (MySQL and PostgreSQL share the token
/// shapes; they differ in quoting rules, handled by the lexer options).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A bare word: keyword, table/column name, or function name.
    Word(String),
    /// A quoted identifier (backticks, double quotes, or brackets), with
    /// quotes stripped and escapes resolved.
    QuotedIdent(String),
    /// A string literal ('...' or dollar-quoted), contents only.
    StringLit(String),
    /// A numeric literal, verbatim.
    Number(String),
    /// Opening parenthesis.
    LParen,
    /// Closing parenthesis.
    RParen,
    /// Comma separator.
    Comma,
    /// Statement terminator.
    Semicolon,
    /// Name qualifier dot.
    Dot,
    /// Equality / assignment sign.
    Eq,
    /// Any other operator-ish punctuation we tolerate but never interpret
    /// (e.g. `<`, `>`, `+`, `-`, `*`, `/`, `::`, `!=`).
    Op(String),
    /// End of input sentinel.
    Eof,
}

impl TokenKind {
    /// The identifier text if this token can serve as an identifier.
    pub fn ident_text(&self) -> Option<&str> {
        match self {
            TokenKind::Word(w) => Some(w),
            TokenKind::QuotedIdent(q) => Some(q),
            _ => None,
        }
    }

    /// True if this is a bare word matching `kw` case-insensitively.
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Word(w) => write!(f, "{w}"),
            TokenKind::QuotedIdent(q) => write!(f, "\"{q}\""),
            TokenKind::StringLit(s) => write!(f, "'{s}'"),
            TokenKind::Number(n) => write!(f, "{n}"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::Comma => write!(f, "','"),
            TokenKind::Semicolon => write!(f, "';'"),
            TokenKind::Dot => write!(f, "'.'"),
            TokenKind::Eq => write!(f, "'='"),
            TokenKind::Op(o) => write!(f, "'{o}'"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_text_for_words_and_quoted() {
        assert_eq!(TokenKind::Word("users".into()).ident_text(), Some("users"));
        assert_eq!(TokenKind::QuotedIdent("order".into()).ident_text(), Some("order"));
        assert_eq!(TokenKind::Comma.ident_text(), None);
        assert_eq!(TokenKind::StringLit("x".into()).ident_text(), None);
    }

    #[test]
    fn keyword_match_is_case_insensitive() {
        assert!(TokenKind::Word("CREATE".into()).is_keyword("create"));
        assert!(TokenKind::Word("create".into()).is_keyword("CREATE"));
        assert!(TokenKind::Word("Create".into()).is_keyword("create"));
        // Quoted identifiers are never keywords.
        assert!(!TokenKind::QuotedIdent("create".into()).is_keyword("create"));
    }

    #[test]
    fn display_round_trips_meaningfully() {
        assert_eq!(TokenKind::Word("users".into()).to_string(), "users");
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
        assert_eq!(TokenKind::Comma.to_string(), "','");
    }
}
