//! Token definitions produced by the [`crate::lexer::Lexer`].
//!
//! Tokens are zero-copy: a [`Token`] borrows `&str` slices of the source
//! text wherever the token's value is a verbatim slice (words, numbers,
//! operators), and a [`Cow`] for quoted literals, which borrow unless an
//! escape sequence or non-UTF-8 byte recovery forced the lexer to build the
//! value. [`OwnedToken`] is the eagerly materialized form kept for the
//! legacy (pre-interning) parse path and as the baseline for the
//! allocation-profiling benchmarks.

use std::borrow::Cow;
use std::fmt;

/// A single lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token<'a> {
    /// The kind of this item.
    pub kind: TokenKind<'a>,
    /// 1-based line where the token starts.
    pub line: u32,
    /// 1-based column where the token starts.
    pub column: u32,
}

/// The lexical class of a token, borrowing from the source where possible.
///
/// SQL keywords are *not* distinguished at the lexer level: identifiers carry
/// their raw text and the parser matches keywords case-insensitively. This
/// keeps the lexer dialect-agnostic (MySQL and PostgreSQL share the token
/// shapes; they differ in quoting rules, handled by the lexer options).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind<'a> {
    /// A bare word: keyword, table/column name, or function name.
    Word(&'a str),
    /// A quoted identifier (backticks, double quotes, or brackets), with
    /// quotes stripped and escapes resolved.
    QuotedIdent(Cow<'a, str>),
    /// A string literal ('...' or dollar-quoted), contents only.
    StringLit(Cow<'a, str>),
    /// A numeric literal, verbatim.
    Number(&'a str),
    /// Opening parenthesis.
    LParen,
    /// Closing parenthesis.
    RParen,
    /// Comma separator.
    Comma,
    /// Statement terminator.
    Semicolon,
    /// Name qualifier dot.
    Dot,
    /// Equality / assignment sign.
    Eq,
    /// Any other operator-ish punctuation we tolerate but never interpret
    /// (e.g. `<`, `>`, `+`, `-`, `*`, `/`, `::`, `!=`).
    Op(&'a str),
    /// End of input sentinel.
    Eof,
}

impl TokenKind<'_> {
    /// The identifier text if this token can serve as an identifier.
    pub fn ident_text(&self) -> Option<&str> {
        match self {
            TokenKind::Word(w) => Some(w),
            TokenKind::QuotedIdent(q) => Some(q),
            _ => None,
        }
    }

    /// True if this is a bare word matching `kw` case-insensitively.
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    /// An owning copy of this token kind.
    pub fn to_owned_kind(&self) -> OwnedTokenKind {
        match self {
            TokenKind::Word(w) => OwnedTokenKind::Word((*w).to_string()),
            TokenKind::QuotedIdent(q) => OwnedTokenKind::QuotedIdent(q.to_string()),
            TokenKind::StringLit(s) => OwnedTokenKind::StringLit(s.to_string()),
            TokenKind::Number(n) => OwnedTokenKind::Number((*n).to_string()),
            TokenKind::LParen => OwnedTokenKind::LParen,
            TokenKind::RParen => OwnedTokenKind::RParen,
            TokenKind::Comma => OwnedTokenKind::Comma,
            TokenKind::Semicolon => OwnedTokenKind::Semicolon,
            TokenKind::Dot => OwnedTokenKind::Dot,
            TokenKind::Eq => OwnedTokenKind::Eq,
            TokenKind::Op(o) => OwnedTokenKind::Op((*o).to_string()),
            TokenKind::Eof => OwnedTokenKind::Eof,
        }
    }
}

impl fmt::Display for TokenKind<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Word(w) => write!(f, "{w}"),
            TokenKind::QuotedIdent(q) => write!(f, "\"{q}\""),
            TokenKind::StringLit(s) => write!(f, "'{s}'"),
            TokenKind::Number(n) => write!(f, "{n}"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::Comma => write!(f, "','"),
            TokenKind::Semicolon => write!(f, "';'"),
            TokenKind::Dot => write!(f, "'.'"),
            TokenKind::Eq => write!(f, "'='"),
            TokenKind::Op(o) => write!(f, "'{o}'"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// An eagerly owned token: one heap `String` per textual token — exactly
/// the allocation profile of the pre-interning lexer. Produced by
/// [`Lexer::tokenize_owned`](crate::lexer::Lexer::tokenize_owned) for the
/// legacy parse path.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedToken {
    /// The kind of this item.
    pub kind: OwnedTokenKind,
    /// 1-based line where the token starts.
    pub line: u32,
    /// 1-based column where the token starts.
    pub column: u32,
}

impl OwnedToken {
    /// A borrowed view of this token, usable wherever a [`Token`] is.
    pub fn view(&self) -> Token<'_> {
        let kind = match &self.kind {
            OwnedTokenKind::Word(w) => TokenKind::Word(w),
            OwnedTokenKind::QuotedIdent(q) => TokenKind::QuotedIdent(Cow::Borrowed(q)),
            OwnedTokenKind::StringLit(s) => TokenKind::StringLit(Cow::Borrowed(s)),
            OwnedTokenKind::Number(n) => TokenKind::Number(n),
            OwnedTokenKind::LParen => TokenKind::LParen,
            OwnedTokenKind::RParen => TokenKind::RParen,
            OwnedTokenKind::Comma => TokenKind::Comma,
            OwnedTokenKind::Semicolon => TokenKind::Semicolon,
            OwnedTokenKind::Dot => TokenKind::Dot,
            OwnedTokenKind::Eq => TokenKind::Eq,
            OwnedTokenKind::Op(o) => TokenKind::Op(o),
            OwnedTokenKind::Eof => TokenKind::Eof,
        };
        Token { kind, line: self.line, column: self.column }
    }
}

/// The owning counterpart of [`TokenKind`].
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedTokenKind {
    /// A bare word: keyword, table/column name, or function name.
    Word(String),
    /// A quoted identifier with quotes stripped and escapes resolved.
    QuotedIdent(String),
    /// A string literal, contents only.
    StringLit(String),
    /// A numeric literal, verbatim.
    Number(String),
    /// Opening parenthesis.
    LParen,
    /// Closing parenthesis.
    RParen,
    /// Comma separator.
    Comma,
    /// Statement terminator.
    Semicolon,
    /// Name qualifier dot.
    Dot,
    /// Equality / assignment sign.
    Eq,
    /// Any other operator-ish punctuation.
    Op(String),
    /// End of input sentinel.
    Eof,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_text_for_words_and_quoted() {
        assert_eq!(TokenKind::Word("users").ident_text(), Some("users"));
        assert_eq!(TokenKind::QuotedIdent(Cow::Borrowed("order")).ident_text(), Some("order"));
        assert_eq!(TokenKind::Comma.ident_text(), None);
        assert_eq!(TokenKind::StringLit(Cow::Borrowed("x")).ident_text(), None);
    }

    #[test]
    fn keyword_match_is_case_insensitive() {
        assert!(TokenKind::Word("CREATE").is_keyword("create"));
        assert!(TokenKind::Word("create").is_keyword("CREATE"));
        assert!(TokenKind::Word("Create").is_keyword("create"));
        // Quoted identifiers are never keywords.
        assert!(!TokenKind::QuotedIdent(Cow::Borrowed("create")).is_keyword("create"));
    }

    #[test]
    fn display_round_trips_meaningfully() {
        assert_eq!(TokenKind::Word("users").to_string(), "users");
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
        assert_eq!(TokenKind::Comma.to_string(), "','");
    }

    #[test]
    fn owned_view_round_trips() {
        let owned = OwnedToken {
            kind: OwnedTokenKind::QuotedIdent("Users".to_string()),
            line: 3,
            column: 7,
        };
        let view = owned.view();
        assert_eq!(view.kind, TokenKind::QuotedIdent(Cow::Borrowed("Users")));
        assert_eq!((view.line, view.column), (3, 7));
        assert_eq!(view.kind.to_owned_kind(), owned.kind);
    }
}
