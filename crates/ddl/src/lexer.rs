//! Hand-written SQL lexer.
//!
//! Handles the lexical quirks of real-world MySQL and PostgreSQL dump files:
//! `--` line comments, `#` line comments (MySQL), `/* ... */` block comments
//! (including MySQL's executable-comment form `/*!40101 ... */`, whose body we
//! discard — schema files use them only for session settings), single-quoted
//! strings with `''` and backslash escapes, backtick identifiers (MySQL),
//! double-quoted identifiers (PostgreSQL / ANSI), bracket identifiers
//! (tolerated for stray SQL Server files), and PostgreSQL dollar-quoted
//! strings (`$$ ... $$`, `$tag$ ... $tag$`).

use crate::dialect::Dialect;
use crate::error::{ParseError, ParseErrorKind, Result};
use crate::token::{Token, TokenKind};

/// Streaming lexer over a DDL script.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    column: u32,
    dialect: Dialect,
}

impl<'a> Lexer<'a> {
    /// Construct a new instance.
    pub fn new(src: &'a str, dialect: Dialect) -> Self {
        Self { src: src.as_bytes(), pos: 0, line: 1, column: 1, dialect }
    }

    /// Tokenize the whole input, appending a trailing [`TokenKind::Eof`].
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let is_eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if is_eof {
                return Ok(out);
            }
        }
    }

    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError::new(kind, self.line, self.column)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.src.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'-') if self.peek_at(1) == Some(b'-') => {
                    self.skip_line_comment();
                }
                Some(b'#') if self.dialect.hash_comments() => {
                    self.skip_line_comment();
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    self.skip_block_comment()?;
                }
                _ => return Ok(()),
            }
        }
    }

    fn skip_line_comment(&mut self) {
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
    }

    fn skip_block_comment(&mut self) -> Result<()> {
        // Consume "/*". Nesting is not part of standard SQL; we do not nest.
        self.bump();
        self.bump();
        loop {
            match self.peek() {
                None => {
                    return Err(self.err(ParseErrorKind::UnterminatedLiteral("block comment")))
                }
                Some(b'*') if self.peek_at(1) == Some(b'/') => {
                    self.bump();
                    self.bump();
                    return Ok(());
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_trivia()?;
        let (line, column) = (self.line, self.column);
        let Some(b) = self.peek() else {
            return Ok(Token { kind: TokenKind::Eof, line, column });
        };
        let kind = match b {
            b'(' => self.single(TokenKind::LParen),
            b')' => self.single(TokenKind::RParen),
            b',' => self.single(TokenKind::Comma),
            b';' => self.single(TokenKind::Semicolon),
            b'.' if !matches!(self.peek_at(1), Some(d) if d.is_ascii_digit()) => {
                self.single(TokenKind::Dot)
            }
            b'=' => self.single(TokenKind::Eq),
            b'\'' => self.string_literal()?,
            b'`' => self.quoted_ident(b'`', "backtick identifier")?,
            b'"' => self.quoted_ident(b'"', "quoted identifier")?,
            b'[' if self.dialect.bracket_idents() => self.bracket_ident()?,
            b'$' if self.dialect.dollar_quotes() && self.looks_like_dollar_quote() => {
                self.dollar_quoted()?
            }
            b'0'..=b'9' => self.number()?,
            b'.' => self.number()?, // ".5" style literal
            _ if is_ident_start(b) => self.word(),
            b'<' | b'>' | b'!' | b'+' | b'-' | b'*' | b'/' | b'%' | b':' | b'|' | b'&'
            | b'~' | b'^' | b'?' | b'@' | b'$' | b'[' | b']' | b'{' | b'}' | b'#' => {
                self.operator()
            }
            other => {
                // Non-ASCII bytes inside identifiers are handled by `word`;
                // a stray non-ASCII byte elsewhere is an error.
                if other >= 0x80 {
                    self.word()
                } else {
                    return Err(self.err(ParseErrorKind::UnexpectedChar(other as char)));
                }
            }
        };
        Ok(Token { kind, line, column })
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }

    fn word(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if is_ident_continue(b) {
                self.bump();
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        TokenKind::Word(text)
    }

    fn operator(&mut self) -> TokenKind {
        // Greedily take the two-character operators we care about; everything
        // else is a single-character Op. The parser never interprets these
        // beyond skipping expressions, so fidelity is not required.
        let a = self.bump().unwrap();
        let two = match (a, self.peek()) {
            (b':', Some(b':'))
            | (b'<', Some(b'='))
            | (b'>', Some(b'='))
            | (b'<', Some(b'>'))
            | (b'!', Some(b'='))
            | (b'|', Some(b'|'))
            | (b'&', Some(b'&')) => {
                let second = self.bump().unwrap();
                Some(format!("{}{}", a as char, second as char))
            }
            _ => None,
        };
        TokenKind::Op(two.unwrap_or_else(|| (a as char).to_string()))
    }

    fn number(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        let mut seen_dot = false;
        let mut seen_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' if !seen_dot && !seen_exp => {
                    seen_dot = true;
                    self.bump();
                }
                b'e' | b'E' if !seen_exp => {
                    // Only an exponent if followed by a digit or sign+digit —
                    // otherwise this is the start of an identifier (`1e` never
                    // appears in DDL, but `1END` does not either; be strict).
                    let next = self.peek_at(1);
                    let next2 = self.peek_at(2);
                    let is_exp = match next {
                        Some(d) if d.is_ascii_digit() => true,
                        Some(b'+') | Some(b'-') => {
                            matches!(next2, Some(d) if d.is_ascii_digit())
                        }
                        _ => false,
                    };
                    if !is_exp {
                        break;
                    }
                    seen_exp = true;
                    self.bump(); // e
                    self.bump(); // digit or sign
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .expect("number bytes are ASCII")
            .to_string();
        if text == "." {
            return Err(self.err(ParseErrorKind::BadNumber(text)));
        }
        Ok(TokenKind::Number(text))
    }

    fn string_literal(&mut self) -> Result<TokenKind> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => {
                    return Err(self.err(ParseErrorKind::UnterminatedLiteral("string literal")))
                }
                Some(b'\'') => {
                    self.bump();
                    if self.peek() == Some(b'\'') {
                        // '' escape
                        self.bump();
                        out.push('\'');
                    } else {
                        return Ok(TokenKind::StringLit(out));
                    }
                }
                Some(b'\\') if self.dialect.backslash_escapes() => {
                    self.bump();
                    if let Some(esc) = self.bump() {
                        out.push(unescape(esc));
                    }
                }
                Some(b) => {
                    self.bump();
                    out.push(b as char);
                }
            }
        }
    }

    fn quoted_ident(&mut self, quote: u8, what: &'static str) -> Result<TokenKind> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err(ParseErrorKind::UnterminatedLiteral(what))),
                Some(b) if b == quote => {
                    self.bump();
                    if self.peek() == Some(quote) {
                        // Doubled quote escape inside identifier.
                        self.bump();
                        out.push(quote as char);
                    } else {
                        return Ok(TokenKind::QuotedIdent(out));
                    }
                }
                Some(b) => {
                    self.bump();
                    out.push(b as char);
                }
            }
        }
    }

    fn bracket_ident(&mut self) -> Result<TokenKind> {
        self.bump(); // '['
        let mut out = String::new();
        loop {
            match self.peek() {
                None => {
                    return Err(
                        self.err(ParseErrorKind::UnterminatedLiteral("bracket identifier"))
                    )
                }
                Some(b']') => {
                    self.bump();
                    return Ok(TokenKind::QuotedIdent(out));
                }
                Some(b) => {
                    self.bump();
                    out.push(b as char);
                }
            }
        }
    }

    /// A `$` starts a dollar-quote only when followed by `$` or `tag$`.
    fn looks_like_dollar_quote(&self) -> bool {
        let mut i = 1;
        loop {
            match self.peek_at(i) {
                Some(b'$') => return true,
                Some(b) if is_ident_continue(b) => i += 1,
                _ => return false,
            }
        }
    }

    fn dollar_quoted(&mut self) -> Result<TokenKind> {
        // Read the opening tag `$...$`.
        let tag_start = self.pos;
        self.bump(); // first '$'
        while let Some(b) = self.peek() {
            self.bump();
            if b == b'$' {
                break;
            }
        }
        let tag: Vec<u8> = self.src[tag_start..self.pos].to_vec();
        let body_start = self.pos;
        // Scan for the closing tag.
        loop {
            if self.pos + tag.len() > self.src.len() {
                return Err(
                    self.err(ParseErrorKind::UnterminatedLiteral("dollar-quoted string"))
                );
            }
            if &self.src[self.pos..self.pos + tag.len()] == tag.as_slice() {
                let body =
                    String::from_utf8_lossy(&self.src[body_start..self.pos]).into_owned();
                for _ in 0..tag.len() {
                    self.bump();
                }
                return Ok(TokenKind::StringLit(body));
            }
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'$' || b >= 0x80
}

fn unescape(b: u8) -> char {
    match b {
        b'n' => '\n',
        b't' => '\t',
        b'r' => '\r',
        b'0' => '\0',
        other => other as char,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(s: &str) -> Vec<TokenKind> {
        Lexer::new(s, Dialect::MySql).tokenize().unwrap().into_iter().map(|t| t.kind).collect()
    }

    fn lex_pg(s: &str) -> Vec<TokenKind> {
        Lexer::new(s, Dialect::Postgres)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn words_and_punctuation() {
        let toks = lex("CREATE TABLE t (id INT);");
        assert_eq!(
            toks,
            vec![
                TokenKind::Word("CREATE".into()),
                TokenKind::Word("TABLE".into()),
                TokenKind::Word("t".into()),
                TokenKind::LParen,
                TokenKind::Word("id".into()),
                TokenKind::Word("INT".into()),
                TokenKind::RParen,
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn backtick_identifiers() {
        let toks = lex("`order` `weird``name`");
        assert_eq!(
            toks,
            vec![
                TokenKind::QuotedIdent("order".into()),
                TokenKind::QuotedIdent("weird`name".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn double_quoted_identifiers() {
        let toks = lex_pg(r#""User" "a""b""#);
        assert_eq!(
            toks,
            vec![
                TokenKind::QuotedIdent("User".into()),
                TokenKind::QuotedIdent("a\"b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn string_literals_with_escapes() {
        let toks = lex(r"'it''s' 'a\nb'");
        assert_eq!(
            toks,
            vec![
                TokenKind::StringLit("it's".into()),
                TokenKind::StringLit("a\nb".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn postgres_strings_no_backslash_escape() {
        let toks = lex_pg(r"'a\nb'");
        assert_eq!(toks, vec![TokenKind::StringLit(r"a\nb".into()), TokenKind::Eof]);
    }

    #[test]
    fn line_comments() {
        let toks = lex("a -- comment to end\nb # another\nc");
        assert_eq!(
            toks,
            vec![
                TokenKind::Word("a".into()),
                TokenKind::Word("b".into()),
                TokenKind::Word("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn hash_is_not_comment_in_postgres() {
        // Postgres has no # comments; '#' lexes as an operator.
        let toks = lex_pg("a # b");
        assert!(toks.contains(&TokenKind::Op("#".into())) || toks.len() == 4);
    }

    #[test]
    fn block_comments_including_executable() {
        let toks = lex("/* plain */ a /*!40101 SET x=1 */ b");
        assert_eq!(
            toks,
            vec![TokenKind::Word("a".into()), TokenKind::Word("b".into()), TokenKind::Eof,]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        let err = Lexer::new("/* never ends", Dialect::MySql).tokenize().unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnterminatedLiteral("block comment"));
    }

    #[test]
    fn unterminated_string_errors() {
        let err = Lexer::new("'open", Dialect::MySql).tokenize().unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnterminatedLiteral("string literal"));
    }

    #[test]
    fn numbers() {
        let toks = lex("1 2.5 10e3 1.5E-2 .5");
        assert_eq!(
            toks,
            vec![
                TokenKind::Number("1".into()),
                TokenKind::Number("2.5".into()),
                TokenKind::Number("10e3".into()),
                TokenKind::Number("1.5E-2".into()),
                TokenKind::Number(".5".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn number_followed_by_word_does_not_eat_exponentless_e() {
        // "10 END" vs "10END": the latter lexes as number 10 then word END.
        let toks = lex("10END");
        assert_eq!(
            toks,
            vec![TokenKind::Number("10".into()), TokenKind::Word("END".into()), TokenKind::Eof,]
        );
    }

    #[test]
    fn dollar_quoted_strings() {
        let toks = lex_pg("$$hello$$ $fn$body; with 'quotes'$fn$");
        assert_eq!(
            toks,
            vec![
                TokenKind::StringLit("hello".into()),
                TokenKind::StringLit("body; with 'quotes'".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn dollar_not_a_quote_in_mysql() {
        // MySQL has no dollar quoting; `$$` lexes as operators.
        let toks = lex("$$x$$");
        assert!(matches!(toks[0], TokenKind::Op(_)));
    }

    #[test]
    fn operators_and_eq() {
        let toks = lex("a = b <> c <= d :: e");
        assert!(toks.contains(&TokenKind::Eq));
        assert!(toks.contains(&TokenKind::Op("<>".into())));
        assert!(toks.contains(&TokenKind::Op("<=".into())));
        assert!(toks.contains(&TokenKind::Op("::".into())));
    }

    #[test]
    fn dot_separates_qualified_names() {
        let toks = lex("public.users");
        assert_eq!(
            toks,
            vec![
                TokenKind::Word("public".into()),
                TokenKind::Dot,
                TokenKind::Word("users".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = Lexer::new("a\n  b", Dialect::MySql).tokenize().unwrap();
        assert_eq!((toks[0].line, toks[0].column), (1, 1));
        assert_eq!((toks[1].line, toks[1].column), (2, 3));
    }

    #[test]
    fn utf8_identifiers_survive() {
        let toks = lex("café");
        assert!(matches!(&toks[0], TokenKind::Word(w) if w.contains("caf")));
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(lex(""), vec![TokenKind::Eof]);
        assert_eq!(lex("   \n\t "), vec![TokenKind::Eof]);
    }
}
