//! Hand-written streaming, zero-copy SQL lexer.
//!
//! Handles the lexical quirks of real-world MySQL and PostgreSQL dump files:
//! `--` line comments, `#` line comments (MySQL), `/* ... */` block comments
//! (including MySQL's executable-comment form `/*!40101 ... */`, whose body we
//! discard — schema files use them only for session settings), single-quoted
//! strings with `''` and backslash escapes, backtick identifiers (MySQL),
//! double-quoted identifiers (PostgreSQL / ANSI), bracket identifiers
//! (tolerated for stray SQL Server files), and PostgreSQL dollar-quoted
//! strings (`$$ ... $$`, `$tag$ ... $tag$`).
//!
//! Tokens borrow `&str` slices of the source wherever the token value is a
//! verbatim slice (words, numbers, operators, dollar-quoted bodies) and a
//! [`Cow`] for quoted forms, which borrow unless an escape sequence or a
//! non-ASCII byte forces the historical byte-wise rebuild. The streaming
//! entry point is [`Lexer::next_token`]; [`Lexer::tokenize`] materializes the
//! whole stream, and [`Lexer::tokenize_owned`] additionally copies every
//! token's text — the pre-refactor allocation profile, kept as the legacy
//! parse path's input and the allocation benchmarks' baseline.

use crate::dialect::Dialect;
use crate::error::{ParseError, ParseErrorKind, Result};
use crate::token::{OwnedToken, Token, TokenKind};
use std::borrow::Cow;

/// Streaming lexer over a DDL script.
pub struct Lexer<'a> {
    text: &'a str,
    src: &'a [u8],
    pos: usize,
    line: u32,
    column: u32,
    dialect: Dialect,
}

impl<'a> Lexer<'a> {
    /// Construct a new instance.
    pub fn new(src: &'a str, dialect: Dialect) -> Self {
        Self { text: src, src: src.as_bytes(), pos: 0, line: 1, column: 1, dialect }
    }

    /// Tokenize the whole input, appending a trailing [`TokenKind::Eof`].
    pub fn tokenize(mut self) -> Result<Vec<Token<'a>>> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let is_eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if is_eof {
                return Ok(out);
            }
        }
    }

    /// Tokenize the whole input into owned tokens: one heap `String` per
    /// textual token. This is the legacy parse path's input shape.
    pub fn tokenize_owned(mut self) -> Result<Vec<OwnedToken>> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let is_eof = tok.kind == TokenKind::Eof;
            out.push(OwnedToken {
                kind: tok.kind.to_owned_kind(),
                line: tok.line,
                column: tok.column,
            });
            if is_eof {
                return Ok(out);
            }
        }
    }

    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError::new(kind, self.line, self.column)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.src.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                // Whitespace runs are the single most common byte class in
                // dump files; consume them without the double bounds check
                // `peek` + `bump` would pay per byte.
                Some(b' ') | Some(b'\t') | Some(b'\r') => {
                    self.pos += 1;
                    self.column += 1;
                }
                Some(b'\n') => {
                    self.pos += 1;
                    self.line += 1;
                    self.column = 1;
                }
                Some(b'-') if self.peek_at(1) == Some(b'-') => {
                    self.skip_line_comment();
                }
                Some(b'#') if self.dialect.hash_comments() => {
                    self.skip_line_comment();
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    self.skip_block_comment()?;
                }
                _ => return Ok(()),
            }
        }
    }

    fn skip_line_comment(&mut self) {
        // Scan to the newline in one pass; the run contains no newline, so
        // only the column needs updating.
        let rest = &self.src[self.pos..];
        let n = rest.iter().position(|&b| b == b'\n').unwrap_or(rest.len());
        self.pos += n;
        self.column += n as u32;
    }

    fn skip_block_comment(&mut self) -> Result<()> {
        // Consume "/*". Nesting is not part of standard SQL; we do not nest.
        self.bump();
        self.bump();
        loop {
            match self.peek() {
                None => {
                    return Err(self.err(ParseErrorKind::UnterminatedLiteral("block comment")))
                }
                Some(b'*') if self.peek_at(1) == Some(b'/') => {
                    self.bump();
                    self.bump();
                    return Ok(());
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Lex the next token. Past the end of input this keeps returning
    /// [`TokenKind::Eof`]; the streaming parser pulls from here without ever
    /// materializing the token vector.
    pub fn next_token(&mut self) -> Result<Token<'a>> {
        self.skip_trivia()?;
        let (line, column) = (self.line, self.column);
        let Some(b) = self.peek() else {
            return Ok(Token { kind: TokenKind::Eof, line, column });
        };
        let kind = match b {
            b'(' => self.single(TokenKind::LParen),
            b')' => self.single(TokenKind::RParen),
            b',' => self.single(TokenKind::Comma),
            b';' => self.single(TokenKind::Semicolon),
            b'.' if !matches!(self.peek_at(1), Some(d) if d.is_ascii_digit()) => {
                self.single(TokenKind::Dot)
            }
            b'=' => self.single(TokenKind::Eq),
            b'\'' => self.string_literal()?,
            b'`' => self.quoted_ident(b'`', "backtick identifier")?,
            b'"' => self.quoted_ident(b'"', "quoted identifier")?,
            b'[' if self.dialect.bracket_idents() => self.bracket_ident()?,
            b'$' if self.dialect.dollar_quotes() && self.looks_like_dollar_quote() => {
                self.dollar_quoted()?
            }
            b'0'..=b'9' => self.number()?,
            b'.' => self.number()?, // ".5" style literal
            _ if is_ident_start(b) => self.word(),
            b'<' | b'>' | b'!' | b'+' | b'-' | b'*' | b'/' | b'%' | b':' | b'|' | b'&'
            | b'~' | b'^' | b'?' | b'@' | b'$' | b'[' | b']' | b'{' | b'}' | b'#' => {
                self.operator()
            }
            other => {
                // Non-ASCII bytes inside identifiers are handled by `word`;
                // a stray non-ASCII byte elsewhere is an error.
                if other >= 0x80 {
                    self.word()
                } else {
                    return Err(self.err(ParseErrorKind::UnexpectedChar(other as char)));
                }
            }
        };
        Ok(Token { kind, line, column })
    }

    fn single(&mut self, kind: TokenKind<'a>) -> TokenKind<'a> {
        self.bump();
        kind
    }

    /// Slice `[start..end)` of the source. Both bounds are always char
    /// boundaries here: every token starts on one, and the scanners below
    /// only stop on ASCII bytes (identifier-continue includes all bytes
    /// ≥ 0x80, and quote/tag delimiters are ASCII).
    fn slice(&self, start: usize, end: usize) -> &'a str {
        &self.text[start..end]
    }

    fn word(&mut self) -> TokenKind<'a> {
        // Identifier-continue bytes never include a newline, so the whole
        // run advances in one pass with a single column update.
        let start = self.pos;
        let rest = &self.src[self.pos..];
        let n = rest.iter().position(|&b| !is_ident_continue(b)).unwrap_or(rest.len());
        self.pos += n;
        self.column += n as u32;
        TokenKind::Word(self.slice(start, self.pos))
    }

    fn operator(&mut self) -> TokenKind<'a> {
        // Greedily take the two-character operators we care about; everything
        // else is a single-character Op. The parser never interprets these
        // beyond skipping expressions, so fidelity is not required.
        let start = self.pos;
        let a = self.bump().unwrap();
        match (a, self.peek()) {
            (b':', Some(b':'))
            | (b'<', Some(b'='))
            | (b'>', Some(b'='))
            | (b'<', Some(b'>'))
            | (b'!', Some(b'='))
            | (b'|', Some(b'|'))
            | (b'&', Some(b'&')) => {
                self.bump();
            }
            _ => {}
        }
        TokenKind::Op(self.slice(start, self.pos))
    }

    fn number(&mut self) -> Result<TokenKind<'a>> {
        let start = self.pos;
        let mut seen_dot = false;
        let mut seen_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' if !seen_dot && !seen_exp => {
                    seen_dot = true;
                    self.bump();
                }
                b'e' | b'E' if !seen_exp => {
                    // Only an exponent if followed by a digit or sign+digit —
                    // otherwise this is the start of an identifier (`1e` never
                    // appears in DDL, but `1END` does not either; be strict).
                    let next = self.peek_at(1);
                    let next2 = self.peek_at(2);
                    let is_exp = match next {
                        Some(d) if d.is_ascii_digit() => true,
                        Some(b'+') | Some(b'-') => {
                            matches!(next2, Some(d) if d.is_ascii_digit())
                        }
                        _ => false,
                    };
                    if !is_exp {
                        break;
                    }
                    seen_exp = true;
                    self.bump(); // e
                    self.bump(); // digit or sign
                }
                _ => break,
            }
        }
        let text = self.slice(start, self.pos);
        if text == "." {
            return Err(self.err(ParseErrorKind::BadNumber(text.to_string())));
        }
        Ok(TokenKind::Number(text))
    }

    fn string_literal(&mut self) -> Result<TokenKind<'a>> {
        self.bump(); // opening quote
        let start = self.pos;
        let mut clean = true; // borrowable: no escapes, ASCII only
        loop {
            match self.peek() {
                None => {
                    return Err(self.err(ParseErrorKind::UnterminatedLiteral("string literal")))
                }
                Some(b'\'') => {
                    let end = self.pos;
                    self.bump();
                    if self.peek() == Some(b'\'') {
                        // '' escape
                        clean = false;
                        self.bump();
                    } else if clean {
                        return Ok(TokenKind::StringLit(Cow::Borrowed(self.slice(start, end))));
                    } else {
                        return Ok(TokenKind::StringLit(Cow::Owned(
                            self.rebuild_string(start, end),
                        )));
                    }
                }
                Some(b'\\') if self.dialect.backslash_escapes() => {
                    clean = false;
                    self.bump();
                    self.bump(); // escaped byte, if any
                }
                Some(b) => {
                    if b >= 0x80 {
                        clean = false;
                    }
                    self.bump();
                }
            }
        }
    }

    /// Rebuild a string-literal body exactly as the historical eager lexer
    /// did: bytes pushed as chars (Latin-1 recovery for non-ASCII), `''`
    /// collapsed, backslash escapes resolved per dialect.
    fn rebuild_string(&self, start: usize, end: usize) -> String {
        let bytes = &self.src[start..end];
        let mut out = String::with_capacity(bytes.len());
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            if b == b'\'' {
                // Inside the body every quote is the first half of a `''`
                // escape (a lone quote would have terminated the literal).
                out.push('\'');
                i += 2;
            } else if b == b'\\' && self.dialect.backslash_escapes() {
                i += 1;
                if i < bytes.len() {
                    out.push(unescape(bytes[i]));
                    i += 1;
                }
            } else {
                out.push(b as char);
                i += 1;
            }
        }
        out
    }

    fn quoted_ident(&mut self, quote: u8, what: &'static str) -> Result<TokenKind<'a>> {
        self.bump(); // opening quote
        let start = self.pos;
        let mut clean = true;
        loop {
            match self.peek() {
                None => return Err(self.err(ParseErrorKind::UnterminatedLiteral(what))),
                Some(b) if b == quote => {
                    let end = self.pos;
                    self.bump();
                    if self.peek() == Some(quote) {
                        // Doubled quote escape inside identifier.
                        clean = false;
                        self.bump();
                    } else if clean {
                        return Ok(TokenKind::QuotedIdent(Cow::Borrowed(
                            self.slice(start, end),
                        )));
                    } else {
                        return Ok(TokenKind::QuotedIdent(Cow::Owned(
                            self.rebuild_quoted(start, end, quote),
                        )));
                    }
                }
                Some(b) => {
                    if b >= 0x80 {
                        clean = false;
                    }
                    self.bump();
                }
            }
        }
    }

    /// Rebuild a quoted-identifier body byte-wise, collapsing doubled-quote
    /// escapes — the historical eager lexer's exact output.
    fn rebuild_quoted(&self, start: usize, end: usize, quote: u8) -> String {
        let bytes = &self.src[start..end];
        let mut out = String::with_capacity(bytes.len());
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            if b == quote {
                out.push(quote as char);
                i += 2;
            } else {
                out.push(b as char);
                i += 1;
            }
        }
        out
    }

    fn bracket_ident(&mut self) -> Result<TokenKind<'a>> {
        self.bump(); // '['
        let start = self.pos;
        let mut clean = true;
        loop {
            match self.peek() {
                None => {
                    return Err(
                        self.err(ParseErrorKind::UnterminatedLiteral("bracket identifier"))
                    )
                }
                Some(b']') => {
                    let end = self.pos;
                    self.bump();
                    return Ok(TokenKind::QuotedIdent(if clean {
                        Cow::Borrowed(self.slice(start, end))
                    } else {
                        Cow::Owned(self.src[start..end].iter().map(|&b| b as char).collect())
                    }));
                }
                Some(b) => {
                    if b >= 0x80 {
                        clean = false;
                    }
                    self.bump();
                }
            }
        }
    }

    /// A `$` starts a dollar-quote only when followed by `$` or `tag$`.
    fn looks_like_dollar_quote(&self) -> bool {
        let mut i = 1;
        loop {
            match self.peek_at(i) {
                Some(b'$') => return true,
                Some(b) if is_ident_continue(b) => i += 1,
                _ => return false,
            }
        }
    }

    fn dollar_quoted(&mut self) -> Result<TokenKind<'a>> {
        // Read the opening tag `$...$`.
        let tag_start = self.pos;
        self.bump(); // first '$'
        while let Some(b) = self.peek() {
            self.bump();
            if b == b'$' {
                break;
            }
        }
        let tag_end = self.pos;
        let body_start = self.pos;
        let tag_len = tag_end - tag_start;
        // Scan for the closing tag.
        loop {
            if self.pos + tag_len > self.src.len() {
                return Err(
                    self.err(ParseErrorKind::UnterminatedLiteral("dollar-quoted string"))
                );
            }
            if self.src[self.pos..self.pos + tag_len] == self.src[tag_start..tag_end] {
                let body = self.slice(body_start, self.pos);
                for _ in 0..tag_len {
                    self.bump();
                }
                return Ok(TokenKind::StringLit(Cow::Borrowed(body)));
            }
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'$' || b >= 0x80
}

fn unescape(b: u8) -> char {
    match b {
        b'n' => '\n',
        b't' => '\t',
        b'r' => '\r',
        b'0' => '\0',
        other => other as char,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(s: &str) -> Vec<TokenKind<'_>> {
        Lexer::new(s, Dialect::MySql).tokenize().unwrap().into_iter().map(|t| t.kind).collect()
    }

    fn lex_pg(s: &str) -> Vec<TokenKind<'_>> {
        Lexer::new(s, Dialect::Postgres)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn words_and_punctuation() {
        let toks = lex("CREATE TABLE t (id INT);");
        assert_eq!(
            toks,
            vec![
                TokenKind::Word("CREATE"),
                TokenKind::Word("TABLE"),
                TokenKind::Word("t"),
                TokenKind::LParen,
                TokenKind::Word("id"),
                TokenKind::Word("INT"),
                TokenKind::RParen,
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn backtick_identifiers() {
        let toks = lex("`order` `weird``name`");
        assert_eq!(
            toks,
            vec![
                TokenKind::QuotedIdent("order".into()),
                TokenKind::QuotedIdent("weird`name".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn double_quoted_identifiers() {
        let toks = lex_pg(r#""User" "a""b""#);
        assert_eq!(
            toks,
            vec![
                TokenKind::QuotedIdent("User".into()),
                TokenKind::QuotedIdent("a\"b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn string_literals_with_escapes() {
        let toks = lex(r"'it''s' 'a\nb'");
        assert_eq!(
            toks,
            vec![
                TokenKind::StringLit("it's".into()),
                TokenKind::StringLit("a\nb".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn postgres_strings_no_backslash_escape() {
        let toks = lex_pg(r"'a\nb'");
        assert_eq!(toks, vec![TokenKind::StringLit(r"a\nb".into()), TokenKind::Eof]);
    }

    #[test]
    fn clean_literals_borrow_from_the_source() {
        let src = "'plain' `name` \"Quoted\" $$body$$";
        let toks = Lexer::new(src, Dialect::Postgres).tokenize().unwrap();
        for t in &toks {
            match &t.kind {
                TokenKind::StringLit(c) | TokenKind::QuotedIdent(c) => {
                    assert!(matches!(c, Cow::Borrowed(_)), "{:?} should borrow", t.kind);
                }
                _ => {}
            }
        }
        // Escaped forms must rebuild (owned) with identical content.
        let toks = lex("'it''s'");
        assert!(matches!(&toks[0], TokenKind::StringLit(Cow::Owned(s)) if s == "it's"));
    }

    #[test]
    fn non_ascii_literal_bytes_keep_latin1_recovery() {
        // Byte-wise recovery of non-ASCII literal content predates the
        // zero-copy lexer; the rebuilt value must match it byte for byte.
        let toks = lex("'café'");
        let TokenKind::StringLit(s) = &toks[0] else { panic!("{toks:?}") };
        let expected: String = "café".bytes().map(|b| b as char).collect();
        assert!(matches!(s, Cow::Owned(_)));
        assert_eq!(s.as_ref(), expected);
    }

    #[test]
    fn streaming_matches_eager_tokenize() {
        let src = "CREATE TABLE `t` (a INT DEFAULT 'x''y', b DECIMAL(10,2)); -- c\n$$q$$";
        let eager = Lexer::new(src, Dialect::Postgres).tokenize().unwrap();
        let mut lexer = Lexer::new(src, Dialect::Postgres);
        let mut streamed = Vec::new();
        loop {
            let t = lexer.next_token().unwrap();
            let eof = t.kind == TokenKind::Eof;
            streamed.push(t);
            if eof {
                break;
            }
        }
        assert_eq!(eager, streamed);
    }

    #[test]
    fn owned_tokens_mirror_borrowed_tokens() {
        let src = "CREATE TABLE t (a INT, b VARCHAR(9) DEFAULT 'it''s');";
        let borrowed = Lexer::new(src, Dialect::MySql).tokenize().unwrap();
        let owned = Lexer::new(src, Dialect::MySql).tokenize_owned().unwrap();
        assert_eq!(borrowed.len(), owned.len());
        for (b, o) in borrowed.iter().zip(&owned) {
            assert_eq!(*b, o.view());
        }
    }

    #[test]
    fn line_comments() {
        let toks = lex("a -- comment to end\nb # another\nc");
        assert_eq!(
            toks,
            vec![
                TokenKind::Word("a"),
                TokenKind::Word("b"),
                TokenKind::Word("c"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn hash_is_not_comment_in_postgres() {
        // Postgres has no # comments; '#' lexes as an operator.
        let toks = lex_pg("a # b");
        assert!(toks.contains(&TokenKind::Op("#")) || toks.len() == 4);
    }

    #[test]
    fn block_comments_including_executable() {
        let toks = lex("/* plain */ a /*!40101 SET x=1 */ b");
        assert_eq!(toks, vec![TokenKind::Word("a"), TokenKind::Word("b"), TokenKind::Eof,]);
    }

    #[test]
    fn unterminated_block_comment_errors() {
        let err = Lexer::new("/* never ends", Dialect::MySql).tokenize().unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnterminatedLiteral("block comment"));
    }

    #[test]
    fn unterminated_string_errors() {
        let err = Lexer::new("'open", Dialect::MySql).tokenize().unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnterminatedLiteral("string literal"));
    }

    #[test]
    fn numbers() {
        let toks = lex("1 2.5 10e3 1.5E-2 .5");
        assert_eq!(
            toks,
            vec![
                TokenKind::Number("1"),
                TokenKind::Number("2.5"),
                TokenKind::Number("10e3"),
                TokenKind::Number("1.5E-2"),
                TokenKind::Number(".5"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn number_followed_by_word_does_not_eat_exponentless_e() {
        // "10 END" vs "10END": the latter lexes as number 10 then word END.
        let toks = lex("10END");
        assert_eq!(
            toks,
            vec![TokenKind::Number("10"), TokenKind::Word("END"), TokenKind::Eof,]
        );
    }

    #[test]
    fn dollar_quoted_strings() {
        let toks = lex_pg("$$hello$$ $fn$body; with 'quotes'$fn$");
        assert_eq!(
            toks,
            vec![
                TokenKind::StringLit("hello".into()),
                TokenKind::StringLit("body; with 'quotes'".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn dollar_not_a_quote_in_mysql() {
        // MySQL has no dollar quoting; `$$` lexes as operators.
        let toks = lex("$$x$$");
        assert!(matches!(toks[0], TokenKind::Op(_)));
    }

    #[test]
    fn operators_and_eq() {
        let toks = lex("a = b <> c <= d :: e");
        assert!(toks.contains(&TokenKind::Eq));
        assert!(toks.contains(&TokenKind::Op("<>")));
        assert!(toks.contains(&TokenKind::Op("<=")));
        assert!(toks.contains(&TokenKind::Op("::")));
    }

    #[test]
    fn dot_separates_qualified_names() {
        let toks = lex("public.users");
        assert_eq!(
            toks,
            vec![
                TokenKind::Word("public"),
                TokenKind::Dot,
                TokenKind::Word("users"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = Lexer::new("a\n  b", Dialect::MySql).tokenize().unwrap();
        assert_eq!((toks[0].line, toks[0].column), (1, 1));
        assert_eq!((toks[1].line, toks[1].column), (2, 3));
    }

    #[test]
    fn utf8_identifiers_survive() {
        let toks = lex("café");
        assert!(matches!(&toks[0], TokenKind::Word(w) if w.contains("caf")));
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(lex(""), vec![TokenKind::Eof]);
        assert_eq!(lex("   \n\t "), vec![TokenKind::Eof]);
    }
}
