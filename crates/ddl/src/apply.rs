//! Applying parsed statements to a [`Schema`] to obtain the final logical
//! schema a script defines.
//!
//! Real dump files routinely `DROP TABLE IF EXISTS t; CREATE TABLE t (…)`,
//! re-create tables, and `ALTER` tables created earlier in the same file, so
//! application is deliberately permissive: re-creating an existing table
//! replaces it, and ALTER/DROP of unknown objects is an error only when the
//! statement did not carry an `IF EXISTS`-style guard.

use crate::error::{ParseError, ParseErrorKind, Result};
use crate::model::{Schema, Table, TableConstraint};
use crate::parser::{AlterOp, Statement};

/// Apply a sequence of statements to an empty schema.
pub fn apply_statements(stmts: &[Statement]) -> Result<Schema> {
    let mut schema = Schema::new();
    for stmt in stmts {
        apply_one(&mut schema, stmt)?;
    }
    Ok(schema)
}

/// Like [`apply_statements`], but consuming the statements: `CREATE TABLE`
/// and `CREATE INDEX` *move* their payload into the schema instead of
/// deep-cloning it. Dump files are overwhelmingly `CREATE TABLE`, so this is
/// the difference between one and two model allocations per column on the
/// cold parse path. Semantically identical to the borrowing variant.
pub fn apply_statements_owned(stmts: Vec<Statement>) -> Result<Schema> {
    let mut schema = Schema::new();
    for stmt in stmts {
        apply_one_owned(&mut schema, stmt)?;
    }
    Ok(schema)
}

/// Apply one statement by value; moves where ownership saves a deep clone,
/// and defers to [`apply_one`] for the ALTER-style statements that mutate
/// in place anyway.
pub fn apply_one_owned(schema: &mut Schema, stmt: Statement) -> Result<()> {
    match stmt {
        Statement::CreateTable { table, if_not_exists } => {
            if schema.table(&table.name).is_some() {
                if if_not_exists {
                    return Ok(());
                }
                // Permissive: dumps re-create tables; last definition wins.
                schema.remove_table(&table.name);
            }
            schema.unseal();
            schema.tables.push(table);
            Ok(())
        }
        Statement::CreateIndex { table, index } => {
            if let Some(t) = schema.table_mut(&table) {
                t.indexes.push(index);
            }
            Ok(())
        }
        other => apply_one(schema, &other),
    }
}

/// Apply one statement to an existing schema.
pub fn apply_one(schema: &mut Schema, stmt: &Statement) -> Result<()> {
    match stmt {
        Statement::CreateTable { table, if_not_exists } => {
            if schema.table(&table.name).is_some() {
                if *if_not_exists {
                    return Ok(());
                }
                // Permissive: dumps re-create tables; last definition wins.
                schema.remove_table(&table.name);
            }
            schema.unseal();
            schema.tables.push(table.clone());
            Ok(())
        }
        Statement::DropTable { names, if_exists } => {
            for name in names {
                if schema.remove_table(name).is_none() && !if_exists {
                    return Err(no_pos(ParseErrorKind::UnknownTable(name.to_string())));
                }
            }
            Ok(())
        }
        Statement::AlterTable { table, ops } => {
            let Some(t) = schema.table_mut(table) else {
                // Tolerate ALTERs of never-created tables (partial dumps).
                return Ok(());
            };
            for op in ops {
                apply_alter(t, op)?;
            }
            Ok(())
        }
        Statement::CreateIndex { table, index } => {
            if let Some(t) = schema.table_mut(table) {
                t.indexes.push(index.clone());
            }
            Ok(())
        }
        Statement::RenameTable { renames } => {
            for (from, to) in renames {
                if let Some(t) = schema.table_mut(from) {
                    t.name = to.clone();
                }
            }
            Ok(())
        }
        Statement::Skipped { .. } => Ok(()),
    }
}

fn apply_alter(t: &mut Table, op: &AlterOp) -> Result<()> {
    match op {
        AlterOp::AddColumn(col) => {
            if t.column(&col.name).is_none() {
                t.columns.push(col.clone());
            }
            Ok(())
        }
        AlterOp::DropColumn(name) => {
            if let Some(idx) = t.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
            {
                t.columns.remove(idx);
            }
            Ok(())
        }
        AlterOp::ModifyColumn(new) => {
            if let Some(c) = t.column_mut(&new.name) {
                *c = new.clone();
            }
            Ok(())
        }
        AlterOp::ChangeColumn { old_name, new } => {
            if let Some(c) = t.column_mut(old_name) {
                *c = new.clone();
            }
            Ok(())
        }
        AlterOp::SetColumnType { column, sql_type } => {
            if let Some(c) = t.column_mut(column) {
                c.sql_type = sql_type.clone();
            }
            Ok(())
        }
        AlterOp::SetColumnNotNull { column, not_null } => {
            if let Some(c) = t.column_mut(column) {
                c.nullable = !not_null;
            }
            Ok(())
        }
        AlterOp::SetColumnDefault { column, default } => {
            if let Some(c) = t.column_mut(column) {
                c.default = default.clone();
            }
            Ok(())
        }
        AlterOp::RenameColumn { old_name, new_name } => {
            if let Some(c) = t.column_mut(old_name) {
                c.name = new_name.clone();
            }
            Ok(())
        }
        AlterOp::RenameTable { new_name } => {
            t.name = new_name.clone();
            Ok(())
        }
        AlterOp::AddConstraint(c) => {
            t.constraints.push(c.clone());
            Ok(())
        }
        AlterOp::DropPrimaryKey => {
            t.constraints.retain(|c| !matches!(c, TableConstraint::PrimaryKey { .. }));
            for col in &mut t.columns {
                col.inline_primary_key = false;
            }
            Ok(())
        }
        AlterOp::DropConstraint(name) => {
            t.constraints.retain(|c| {
                let cname = match c {
                    TableConstraint::PrimaryKey { name, .. }
                    | TableConstraint::Unique { name, .. }
                    | TableConstraint::Check { name, .. } => name.as_deref(),
                    TableConstraint::ForeignKey(fk) => fk.name.as_deref(),
                };
                cname.is_none_or(|n| !n.eq_ignore_ascii_case(name))
            });
            t.indexes
                .retain(|i| i.name.as_deref().is_none_or(|n| !n.eq_ignore_ascii_case(name)));
            Ok(())
        }
        AlterOp::AddIndex(idx) => {
            t.indexes.push(idx.clone());
            Ok(())
        }
        AlterOp::Ignored => Ok(()),
    }
}

fn no_pos(kind: ParseErrorKind) -> ParseError {
    ParseError::new(kind, 0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::Dialect;
    use crate::parser::parse_statements;

    fn schema_of(sql: &str) -> Schema {
        apply_statements(&parse_statements(sql, Dialect::Generic).unwrap()).unwrap()
    }

    #[test]
    fn create_then_alter() {
        let s = schema_of(
            "CREATE TABLE t (a INT); \
             ALTER TABLE t ADD COLUMN b VARCHAR(10), DROP COLUMN a;",
        );
        let t = s.table("t").unwrap();
        assert_eq!(t.columns.len(), 1);
        assert_eq!(t.columns[0].name, "b");
    }

    #[test]
    fn drop_create_pattern() {
        let s = schema_of(
            "DROP TABLE IF EXISTS t; \
             CREATE TABLE t (a INT); \
             DROP TABLE IF EXISTS t; \
             CREATE TABLE t (a INT, b INT);",
        );
        assert_eq!(s.table("t").unwrap().columns.len(), 2);
    }

    #[test]
    fn recreate_replaces() {
        let s = schema_of("CREATE TABLE t (a INT); CREATE TABLE t (b INT, c INT);");
        assert_eq!(s.table("t").unwrap().columns.len(), 2);
    }

    #[test]
    fn if_not_exists_keeps_original() {
        let s =
            schema_of("CREATE TABLE t (a INT); CREATE TABLE IF NOT EXISTS t (b INT, c INT);");
        assert_eq!(s.table("t").unwrap().columns.len(), 1);
    }

    #[test]
    fn drop_unknown_without_guard_errors() {
        let stmts = parse_statements("DROP TABLE nope;", Dialect::Generic).unwrap();
        assert!(apply_statements(&stmts).is_err());
    }

    #[test]
    fn drop_unknown_with_guard_ok() {
        let s = schema_of("DROP TABLE IF EXISTS nope;");
        assert!(s.is_empty());
    }

    #[test]
    fn alter_unknown_table_tolerated() {
        let s = schema_of("ALTER TABLE ghost ADD COLUMN a INT;");
        assert!(s.is_empty());
    }

    #[test]
    fn rename_table_and_column() {
        let s = schema_of(
            "CREATE TABLE t (a INT); \
             ALTER TABLE t RENAME COLUMN a TO b; \
             ALTER TABLE t RENAME TO s;",
        );
        assert!(s.table("t").is_none());
        assert_eq!(s.table("s").unwrap().columns[0].name, "b");
    }

    #[test]
    fn add_and_drop_primary_key() {
        let s = schema_of(
            "CREATE TABLE t (a INT PRIMARY KEY); \
             ALTER TABLE t DROP PRIMARY KEY; \
             ALTER TABLE t ADD CONSTRAINT pk PRIMARY KEY (a);",
        );
        let t = s.table("t").unwrap();
        assert_eq!(t.primary_key(), vec!["a".to_string()]);
        assert!(!t.columns[0].inline_primary_key);
    }

    #[test]
    fn drop_constraint_by_name() {
        let s = schema_of(
            "CREATE TABLE t (a INT, CONSTRAINT u UNIQUE (a)); \
             ALTER TABLE t DROP CONSTRAINT u;",
        );
        assert!(s.table("t").unwrap().constraints.is_empty());
    }

    #[test]
    fn create_index_attaches() {
        let s = schema_of("CREATE TABLE t (a INT); CREATE INDEX i ON t (a);");
        assert_eq!(s.table("t").unwrap().indexes.len(), 1);
    }

    #[test]
    fn modify_changes_type() {
        let s =
            schema_of("CREATE TABLE t (a INT); ALTER TABLE t MODIFY COLUMN a BIGINT NOT NULL;");
        let c = &s.table("t").unwrap().columns[0];
        assert_eq!(c.sql_type.name, "BIGINT");
        assert!(!c.nullable);
    }

    #[test]
    fn top_level_rename_table() {
        let s = schema_of(
            "CREATE TABLE a (x INT); CREATE TABLE b (y INT); RENAME TABLE a TO a2, b TO b2;",
        );
        assert!(s.table("a").is_none() && s.table("b").is_none());
        assert!(s.table("a2").is_some() && s.table("b2").is_some());
    }

    #[test]
    fn owned_apply_matches_borrowing_apply() {
        // Every statement shape in one script: the moving path must produce
        // the identical schema.
        let sql = "CREATE TABLE t (a INT, b VARCHAR(10)); \
                   CREATE TABLE IF NOT EXISTS t (z INT); \
                   CREATE INDEX i ON t (a); \
                   ALTER TABLE t ADD COLUMN c INT, DROP COLUMN b; \
                   CREATE TABLE u (x INT); DROP TABLE u; \
                   ALTER TABLE t RENAME TO s;";
        let stmts = parse_statements(sql, Dialect::Generic).unwrap();
        let borrowed = apply_statements(&stmts).unwrap();
        let owned = apply_statements_owned(stmts).unwrap();
        assert_eq!(borrowed, owned);
        assert_eq!(owned.table("s").unwrap().indexes.len(), 1);
    }

    #[test]
    fn duplicate_add_column_is_idempotent() {
        let s = schema_of(
            "CREATE TABLE t (a INT); ALTER TABLE t ADD COLUMN a INT; ALTER TABLE t ADD b INT;",
        );
        assert_eq!(s.table("t").unwrap().columns.len(), 2);
    }
}
