//! # coevo-ddl — SQL DDL substrate
//!
//! A from-scratch lexer, parser, and object model for the subset of SQL DDL
//! that appears in single-file relational schema definitions of FOSS projects
//! (the population studied by Vassiliadis et al., EDBT 2023): `CREATE TABLE`,
//! `ALTER TABLE`, `DROP TABLE`, `CREATE INDEX`, and enough statement-skipping
//! to survive full MySQL/PostgreSQL dump files (INSERTs, SETs, comments,
//! dollar-quoted function bodies, …).
//!
//! The paper's measurement unit is the *logical schema*: relations, their
//! typed attributes, and primary-key participation. The model here therefore
//! centers on [`Schema`], [`Table`], and [`Column`], with constraint detail
//! retained where it affects the evolution metrics (types and primary keys)
//! and tolerated-but-normalized elsewhere.
//!
//! ## Quickstart
//!
//! ```
//! use coevo_ddl::{parse_schema, Dialect};
//!
//! let sql = r#"
//!     CREATE TABLE users (
//!         id INT NOT NULL AUTO_INCREMENT,
//!         email VARCHAR(255) NOT NULL,
//!         PRIMARY KEY (id)
//!     );
//! "#;
//! let schema = parse_schema(sql, Dialect::MySql).unwrap();
//! assert_eq!(schema.tables.len(), 1);
//! let users = schema.table("users").unwrap();
//! assert_eq!(users.columns.len(), 2);
//! assert!(users.primary_key().contains(&"id".to_string()));
//! ```

#![warn(missing_docs)]

pub mod apply;
pub mod cache;
pub mod dialect;
pub mod error;
pub mod fingerprint;
pub mod intern;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod printer;
pub mod token;

pub use apply::apply_statements;
pub use cache::ParseCache;
pub use dialect::Dialect;
pub use error::{ParseError, ParseErrorKind, Result};
pub use fingerprint::Fingerprint;
pub use intern::{Ident, Interner, Symbol};
pub use lexer::Lexer;
pub use model::{
    Column, ForeignKey, IndexDef, Schema, SchemaSeal, SqlType, Table, TableConstraint,
    TableSeal,
};
pub use parser::{
    parse_schema, parse_schema_interned, parse_schema_legacy, parse_statements, Parser,
    Statement,
};
pub use printer::print_schema;
