//! A content-addressed parse cache: byte-identical DDL text parses once.
//!
//! Schema histories are dominated by *inactive* commits — versions whose DDL
//! file is byte-identical to a neighbor (whitespace-only commits are also
//! common, but we only dedupe exact bytes so accounting stays untouched).
//! [`ParseCache`] keys on a 64-bit FNV-1a content hash of the raw text and
//! hands out `Arc<Schema>` so every identical version shares one parsed,
//! sealed schema. Hash collisions are neutralized by verifying the stored
//! text against the query before a hit is declared, so the cache can never
//! return the wrong schema.

use crate::dialect::Dialect;
use crate::error::Result;
use crate::fingerprint::content_hash;
use crate::intern::Interner;
use crate::model::Schema;
use crate::parser::parse_schema_interned;
use std::collections::HashMap;
use std::sync::Arc;

struct Entry {
    dialect: Dialect,
    text: Arc<str>,
    schema: Arc<Schema>,
}

/// A content-hash → `Arc<Schema>` parse cache with hit/miss counters.
///
/// Scope one cache per project history (the engine does): identical versions
/// within a history share a schema, and the cache's memory dies with the
/// history. The cache also owns a project-scoped [`Interner`]: every schema
/// it parses shares one symbol numbering, so downstream diffs of two cached
/// versions compare names by integer symbol instead of re-folding strings.
pub struct ParseCache {
    buckets: HashMap<u64, Vec<Entry>>,
    interner: Arc<Interner>,
    hits: u64,
    misses: u64,
}

impl Default for ParseCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ParseCache {
    /// An empty cache with a fresh interner.
    pub fn new() -> Self {
        Self {
            buckets: HashMap::new(),
            interner: Arc::new(Interner::new()),
            hits: 0,
            misses: 0,
        }
    }

    /// The interner every schema parsed through this cache shares.
    pub fn interner(&self) -> Arc<Interner> {
        Arc::clone(&self.interner)
    }

    /// Parse `sql` under `dialect`, returning a shared schema. Byte-identical
    /// text under the same dialect parses once; later calls return the same
    /// `Arc` (observable via [`Arc::ptr_eq`]). Parse errors are not cached.
    pub fn parse(&mut self, sql: &str, dialect: Dialect) -> Result<Arc<Schema>> {
        let hash = content_hash(sql.as_bytes());
        if let Some(e) = self
            .buckets
            .get(&hash)
            .and_then(|b| b.iter().find(|e| e.dialect == dialect && *e.text == *sql))
        {
            self.hits += 1;
            return Ok(Arc::clone(&e.schema));
        }
        let schema = Arc::new(parse_schema_interned(sql, dialect, &self.interner)?);
        self.buckets.entry(hash).or_default().push(Entry {
            dialect,
            text: Arc::from(sql),
            schema: Arc::clone(&schema),
        });
        self.misses += 1;
        Ok(schema)
    }

    /// Number of lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that had to parse.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct (dialect, text) entries stored.
    pub fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_text_parses_once_and_shares() {
        let mut c = ParseCache::new();
        let a = c.parse("CREATE TABLE t (a INT);", Dialect::Generic).unwrap();
        let b = c.parse("CREATE TABLE t (a INT);", Dialect::Generic).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn different_text_or_dialect_misses() {
        let mut c = ParseCache::new();
        c.parse("CREATE TABLE t (a INT);", Dialect::Generic).unwrap();
        c.parse("CREATE TABLE t (a INT) ;", Dialect::Generic).unwrap();
        c.parse("CREATE TABLE t (a INT);", Dialect::MySql).unwrap();
        assert_eq!((c.hits(), c.misses()), (0, 3));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn cached_schema_is_sealed() {
        let mut c = ParseCache::new();
        let s = c.parse("CREATE TABLE t (a INT);", Dialect::Generic).unwrap();
        assert!(s.seal_data().is_some());
    }

    #[test]
    fn cached_schemas_share_one_interner() {
        let mut c = ParseCache::new();
        let a = c.parse("CREATE TABLE t (a INT);", Dialect::Generic).unwrap();
        let b = c.parse("CREATE TABLE t (a INT, b INT);", Dialect::Generic).unwrap();
        let iid = c.interner().id();
        assert_eq!(a.tables[0].name.interner_id(), iid);
        assert_eq!(b.tables[0].name.interner_id(), iid);
        assert_eq!(a.tables[0].name.symbol(), b.tables[0].name.symbol());
    }

    #[test]
    fn parse_errors_propagate_and_are_not_cached() {
        let mut c = ParseCache::new();
        assert!(c.parse("CREATE TABLE t (a INT", Dialect::Generic).is_err());
        assert!(c.parse("CREATE TABLE t (a INT", Dialect::Generic).is_err());
        assert!(c.is_empty());
        assert_eq!((c.hits(), c.misses()), (0, 0));
    }
}
