-- MediaWiki-style table definitions (hand-maintained tables.sql flavor)
-- with the idiosyncrasies those files carry: binary/varbinary types,
-- multi-line comments, # comments, and conditional table options.

/*
 * The page table: core of the wiki.
 */
CREATE TABLE /*_*/page (
  page_id int unsigned NOT NULL PRIMARY KEY AUTO_INCREMENT,
  page_namespace int NOT NULL,
  page_title varbinary(255) NOT NULL,
  page_restrictions tinyblob NOT NULL,
  page_is_redirect tinyint unsigned NOT NULL default 0,
  page_is_new tinyint unsigned NOT NULL default 0,
  page_random double unsigned NOT NULL,
  page_touched binary(14) NOT NULL default '',
  page_latest int unsigned NOT NULL,
  page_len int unsigned NOT NULL
) /*$wgDBTableOptions*/;

CREATE UNIQUE INDEX /*i*/name_title ON /*_*/page (page_namespace, page_title);
CREATE INDEX /*i*/page_random ON /*_*/page (page_random);
CREATE INDEX /*i*/page_len ON /*_*/page (page_len);

# The revision table; every edit creates a row here.
CREATE TABLE /*_*/revision (
  rev_id int unsigned NOT NULL PRIMARY KEY AUTO_INCREMENT,
  rev_page int unsigned NOT NULL,
  rev_text_id int unsigned NOT NULL,
  rev_comment tinyblob NOT NULL,
  rev_user int unsigned NOT NULL default 0,
  rev_user_text varbinary(255) NOT NULL default '',
  rev_timestamp binary(14) NOT NULL default '',
  rev_minor_edit tinyint unsigned NOT NULL default 0,
  rev_deleted tinyint unsigned NOT NULL default 0,
  rev_len int unsigned,
  rev_parent_id int unsigned default NULL,
  rev_sha1 varbinary(32) NOT NULL default ''
) /*$wgDBTableOptions*/ MAX_ROWS=10000000 AVG_ROW_LENGTH=1024;

CREATE UNIQUE INDEX /*i*/rev_page_id ON /*_*/revision (rev_page, rev_id);
CREATE INDEX /*i*/rev_timestamp ON /*_*/revision (rev_timestamp);

CREATE TABLE /*_*/text (
  old_id int unsigned NOT NULL PRIMARY KEY AUTO_INCREMENT,
  old_text mediumblob NOT NULL,
  old_flags tinyblob NOT NULL
) /*$wgDBTableOptions*/ MAX_ROWS=10000000 AVG_ROW_LENGTH=10240;
