--
-- PostgreSQL database dump (issue-tracker style schema)
--

SET statement_timeout = 0;
SET lock_timeout = 0;
SET client_encoding = 'UTF8';
SET standard_conforming_strings = on;
SET check_function_bodies = false;
SET search_path = public, pg_catalog;

--
-- Name: projects; Type: TABLE
--

CREATE TABLE public.projects (
    id bigserial PRIMARY KEY,
    slug character varying(80) NOT NULL UNIQUE,
    name character varying(200) NOT NULL,
    description text,
    visibility smallint DEFAULT 0 NOT NULL,
    created_at timestamp with time zone DEFAULT now() NOT NULL,
    archived boolean DEFAULT false NOT NULL
);

CREATE TABLE public.issues (
    id bigserial PRIMARY KEY,
    project_id bigint NOT NULL REFERENCES public.projects(id) ON DELETE CASCADE,
    reporter_id integer,
    title character varying(255) NOT NULL,
    body text,
    state character varying(20) DEFAULT 'open'::character varying NOT NULL,
    labels text[],
    weight numeric(6,2),
    due_on date,
    created_at timestamp without time zone DEFAULT now(),
    updated_at timestamp without time zone,
    CONSTRAINT issues_state_check CHECK (state IN ('open', 'closed', 'wontfix'))
);

CREATE TABLE public."issueEvents" (
    id bigserial PRIMARY KEY,
    issue_id bigint NOT NULL,
    actor_id integer,
    kind character varying(40) NOT NULL,
    payload text,
    happened_at timestamp with time zone DEFAULT now() NOT NULL
);

ALTER TABLE ONLY public."issueEvents"
    ADD CONSTRAINT fk_events_issue FOREIGN KEY (issue_id) REFERENCES public.issues(id) ON DELETE CASCADE;

CREATE INDEX idx_issues_project ON public.issues (project_id);
CREATE INDEX idx_issues_state ON public.issues (state);
CREATE UNIQUE INDEX idx_events_unique ON public."issueEvents" (issue_id, kind, happened_at);

--
-- A trigger function body: the parser must skip the dollar-quoted block.
--

CREATE FUNCTION public.touch_updated_at() RETURNS trigger AS $$
BEGIN
    NEW.updated_at := now();
    RETURN NEW; -- semicolons in here; must not end statements
END;
$$ LANGUAGE plpgsql;

CREATE TRIGGER trg_touch BEFORE UPDATE ON public.issues
    FOR EACH ROW EXECUTE PROCEDURE public.touch_updated_at();

--
-- Schema evolution leftovers typical of hand-maintained DDL files.
--

ALTER TABLE public.issues ADD COLUMN severity smallint DEFAULT 3;
ALTER TABLE public.issues ALTER COLUMN weight TYPE numeric(8,2);
ALTER TABLE public.projects RENAME COLUMN visibility TO visibility_level;

COMMENT ON TABLE public.issues IS 'tracked issues';
GRANT SELECT ON public.issues TO readonly;
