//! Property tests: any schema built from the model vocabulary must survive a
//! print → parse round trip in every dialect, preserving the logical content
//! the evolution study measures (tables, attributes, types, primary keys).

use coevo_ddl::{
    parse_schema, print_schema, Column, Dialect, ForeignKey, IndexDef, Schema, SqlType, Table,
    TableConstraint,
};
use proptest::prelude::*;

/// Lowercase SQL-safe identifiers that are not keywords.
fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,12}".prop_filter("avoid keywords", |s| {
        !matches!(
            s.as_str(),
            "create"
                | "table"
                | "primary"
                | "key"
                | "unique"
                | "constraint"
                | "not"
                | "null"
                | "default"
                | "references"
                | "check"
                | "index"
                | "drop"
                | "alter"
                | "add"
                | "column"
                | "int"
                | "like"
                | "if"
                | "exists"
                | "foreign"
                | "on"
                | "to"
                | "using"
                | "comment"
                | "collate"
                | "first"
                | "after"
                | "modify"
                | "change"
                | "rename"
                | "generated"
                | "as"
        )
    })
}

fn sql_type_strategy() -> impl Strategy<Value = SqlType> {
    prop_oneof![
        Just(SqlType::simple("INT")),
        Just(SqlType::simple("BIGINT")),
        Just(SqlType::simple("TEXT")),
        Just(SqlType::simple("BOOLEAN")),
        Just(SqlType::simple("DATE")),
        Just(SqlType::simple("TIMESTAMP")),
        (1u16..=512).prop_map(|n| SqlType::with_params("VARCHAR", &[&n.to_string()])),
        (1u8..=30, 0u8..=10).prop_map(|(p, s)| SqlType::with_params(
            "DECIMAL",
            &[&p.to_string(), &s.to_string()]
        )),
    ]
}

fn column_strategy() -> impl Strategy<Value = Column> {
    (ident_strategy(), sql_type_strategy(), any::<bool>(), any::<bool>()).prop_map(
        |(name, ty, nullable, unique)| {
            let mut c = Column::new(name.as_str(), ty);
            c.nullable = nullable;
            c.unique = unique;
            c
        },
    )
}

prop_compose! {
    fn table_strategy()(
        name in ident_strategy(),
        mut cols in prop::collection::vec(column_strategy(), 1..8),
        pk_first in any::<bool>(),
        table_pk in any::<bool>(),
        with_unique in any::<bool>(),
        with_index in any::<bool>(),
        fk_target in ident_strategy(),
        with_fk in any::<bool>(),
    ) -> Table {
        // De-duplicate column names (case-insensitive).
        let mut seen = std::collections::HashSet::new();
        cols.retain(|c| seen.insert(c.key().to_string()));
        if pk_first {
            cols[0].inline_primary_key = true;
            cols[0].nullable = false;
        }
        let mut t = Table::new(name.as_str());
        t.columns = cols;
        let first = t.columns[0].name.clone();
        let last = t.columns.last().unwrap().name.clone();
        if table_pk && !pk_first {
            t.constraints.push(TableConstraint::PrimaryKey {
                name: None,
                columns: vec![first.clone()],
            });
        }
        if with_unique && t.columns.len() > 1 {
            t.constraints.push(TableConstraint::Unique {
                name: Some(format!("uq_{name}").into()),
                columns: vec![last.clone()],
            });
        }
        if with_fk {
            t.constraints.push(TableConstraint::ForeignKey(ForeignKey {
                name: Some(format!("fk_{name}").into()),
                columns: vec![first.clone()],
                foreign_table: fk_target.into(),
                foreign_columns: vec!["id".into()],
                actions: vec!["ON DELETE CASCADE".to_string()],
            }));
        }
        if with_index {
            t.indexes.push(IndexDef {
                name: Some(format!("idx_{name}").into()),
                columns: vec![first],
                unique: false,
            });
        }
        t
    }
}

prop_compose! {
    fn schema_strategy()(mut tables in prop::collection::vec(table_strategy(), 0..6)) -> Schema {
        let mut seen = std::collections::HashSet::new();
        tables.retain(|t| seen.insert(t.key().to_string()));
        Schema::from_tables(tables)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn round_trip_mysql(schema in schema_strategy()) {
        let printed = print_schema(&schema, Dialect::MySql);
        let reparsed = parse_schema(&printed, Dialect::MySql).expect("re-parse mysql");
        prop_assert_eq!(&schema, &reparsed);
    }

    #[test]
    fn round_trip_postgres(schema in schema_strategy()) {
        let printed = print_schema(&schema, Dialect::Postgres);
        let reparsed = parse_schema(&printed, Dialect::Postgres).expect("re-parse postgres");
        prop_assert_eq!(&schema, &reparsed);
    }

    #[test]
    fn round_trip_generic(schema in schema_strategy()) {
        let printed = print_schema(&schema, Dialect::Generic);
        let reparsed = parse_schema(&printed, Dialect::Generic).expect("re-parse generic");
        prop_assert_eq!(&schema, &reparsed);
    }

    #[test]
    fn attribute_count_preserved(schema in schema_strategy()) {
        let printed = print_schema(&schema, Dialect::MySql);
        let reparsed = parse_schema(&printed, Dialect::MySql).expect("re-parse");
        prop_assert_eq!(schema.attribute_count(), reparsed.attribute_count());
    }

    #[test]
    fn primary_keys_preserved(schema in schema_strategy()) {
        let printed = print_schema(&schema, Dialect::Postgres);
        let reparsed = parse_schema(&printed, Dialect::Postgres).expect("re-parse");
        for t in &schema.tables {
            let rt = reparsed.table(&t.name).expect("table survives");
            prop_assert_eq!(t.primary_key(), rt.primary_key());
        }
    }

    #[test]
    fn constraints_and_indexes_preserved(schema in schema_strategy()) {
        for dialect in [Dialect::MySql, Dialect::Postgres] {
            let printed = print_schema(&schema, dialect);
            let reparsed = parse_schema(&printed, dialect)
                .unwrap_or_else(|e| panic!("{dialect:?}: {e}\n{printed}"));
            for t in &schema.tables {
                let rt = reparsed.table(&t.name).expect("table survives");
                prop_assert_eq!(
                    t.foreign_keys().count(),
                    rt.foreign_keys().count(),
                    "FK count for {} under {:?}", t.name, dialect
                );
                prop_assert_eq!(
                    t.indexes.len(),
                    rt.indexes.len(),
                    "index count for {} under {:?}", t.name, dialect
                );
                for (a, b) in t.foreign_keys().zip(rt.foreign_keys()) {
                    prop_assert_eq!(&a.foreign_table, &b.foreign_table);
                    prop_assert_eq!(&a.columns, &b.columns);
                    prop_assert_eq!(&a.actions, &b.actions);
                }
            }
        }
    }

    #[test]
    fn fingerprint_equality_is_structural_equality(
        a in schema_strategy(),
        b in schema_strategy(),
    ) {
        // fp(a) == fp(b) ⇔ structural equality, witnessed by the printer's
        // normalized output: two schemas print identically exactly when the
        // model considers them equal, and the fingerprint must agree with
        // both. (The reverse direction also catches *systematic* collisions —
        // e.g. a field missing from the hash — which random pairs would hit
        // constantly.)
        let printed_eq = print_schema(&a, Dialect::Generic) == print_schema(&b, Dialect::Generic);
        prop_assert_eq!(printed_eq, a == b);
        prop_assert_eq!(a.fingerprint() == b.fingerprint(), a == b);
    }

    #[test]
    fn fingerprint_stable_across_print_parse_and_sealing(schema in schema_strategy()) {
        // The strategy builds unsealed schemas; parsing yields sealed ones.
        // The fingerprint must not notice the difference.
        let printed = print_schema(&schema, Dialect::Generic);
        let reparsed = parse_schema(&printed, Dialect::Generic).expect("re-parse");
        prop_assert!(reparsed.seal_data().is_some());
        prop_assert!(schema.seal_data().is_none());
        prop_assert_eq!(schema.fingerprint(), reparsed.fingerprint());
        for t in &schema.tables {
            let rt = reparsed.table(&t.name).expect("table survives");
            prop_assert_eq!(t.fingerprint(), rt.fingerprint());
        }
    }

    #[test]
    fn sealed_key_maps_agree_with_fallback_lookups(schema in schema_strategy()) {
        let printed = print_schema(&schema, Dialect::Generic);
        let reparsed = parse_schema(&printed, Dialect::Generic).expect("re-parse");
        let seal = reparsed.seal_data().expect("parsed schemas are sealed");
        for (i, t) in reparsed.tables.iter().enumerate() {
            prop_assert_eq!(seal.table_index(t.key()), Some(i));
            let ts = t.seal_data().expect("parsed tables are sealed");
            prop_assert_eq!(ts.table_key(), t.key());
            prop_assert_eq!(ts.len(), t.columns.len());
            for (j, c) in t.columns.iter().enumerate() {
                prop_assert_eq!(ts.column_key(j), c.key());
                prop_assert_eq!(ts.column_index(c.key()), Some(j));
            }
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "\\PC{0,400}") {
        // Any input must produce Ok or a structured error, never a panic.
        let _ = parse_schema(&input, Dialect::Generic);
        let _ = parse_schema(&input, Dialect::MySql);
        let _ = parse_schema(&input, Dialect::Postgres);
    }
}
