//! Parsing realistic FOSS dump files — the population the study mines is
//! full of `mysqldump`/`pg_dump`/hand-maintained DDL noise, and the parser
//! must survive all of it while extracting the correct logical schema.

use coevo_ddl::{parse_schema, print_schema, Dialect};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(path).expect("fixture exists")
}

#[test]
fn wordpress_style_mysql_dump() {
    let schema = parse_schema(&fixture("blog_mysql.sql"), Dialect::MySql).unwrap();
    assert_eq!(schema.tables.len(), 4);

    let users = schema.table("wp_users").unwrap();
    assert_eq!(users.columns.len(), 10);
    assert_eq!(users.primary_key(), vec!["id".to_string()]);
    assert!(users.column("ID").unwrap().auto_increment);
    assert_eq!(users.column("user_login").unwrap().default.as_deref(), Some("''"));
    assert_eq!(users.indexes.len(), 3);

    let posts = schema.table("wp_posts").unwrap();
    assert_eq!(posts.columns.len(), 19);
    // Prefix-length key `post_name(191)` parses to the bare column.
    assert!(posts.indexes.iter().any(|i| i.columns == vec!["post_name".to_string()]));
    // Composite key preserved in order.
    assert!(posts.indexes.iter().any(|i| i.columns
        == vec![
            "post_type".to_string(),
            "post_status".to_string(),
            "post_date".to_string(),
            "ID".to_string()
        ]));

    let comments = schema.table("wp_comments").unwrap();
    assert_eq!(comments.foreign_keys().count(), 1);
    let fk = comments.foreign_keys().next().unwrap();
    assert_eq!(fk.foreign_table, "wp_posts");
    assert_eq!(fk.actions, vec!["ON DELETE CASCADE".to_string()]);

    let options = schema.table("wp_options").unwrap();
    assert_eq!(
        options.column("autoload").unwrap().sql_type.params,
        vec!["'yes'".to_string(), "'no'".to_string()]
    );
    // INSERT data (including a value containing "--") must not confuse
    // statement skipping.
    assert_eq!(schema.attribute_count(), 10 + 19 + 14 + 4);
}

#[test]
fn postgres_tracker_dump() {
    let schema = parse_schema(&fixture("tracker_postgres.sql"), Dialect::Postgres).unwrap();
    assert_eq!(schema.tables.len(), 3);

    let projects = schema.table("projects").unwrap();
    // RENAME applied: visibility → visibility_level.
    assert!(projects.column("visibility_level").is_some());
    assert!(projects.column("visibility").is_none());
    assert!(projects.column("id").unwrap().auto_increment);

    let issues = schema.table("issues").unwrap();
    // ALTER ADD COLUMN applied.
    let severity = issues.column("severity").unwrap();
    assert_eq!(severity.sql_type.name, "SMALLINT");
    // ALTER COLUMN TYPE applied: weight numeric(6,2) → numeric(8,2).
    assert_eq!(
        issues.column("weight").unwrap().sql_type.params,
        vec!["8".to_string(), "2".to_string()]
    );
    // Array type and quoted mixed-case table name survive.
    assert_eq!(issues.column("labels").unwrap().sql_type.name, "TEXT[]");
    let events = schema.table("issueEvents").unwrap();
    assert_eq!(events.name, "issueEvents");
    // ALTER ADD CONSTRAINT attached the FK.
    assert_eq!(events.foreign_keys().count(), 1);
    // CREATE INDEX statements attached.
    assert_eq!(issues.indexes.len(), 2);
    assert!(events.indexes.iter().any(|i| i.unique));
    // timestamptz canonicalization.
    assert_eq!(projects.column("created_at").unwrap().sql_type.name, "TIMESTAMPTZ");
    assert_eq!(issues.column("created_at").unwrap().sql_type.name, "TIMESTAMP");
}

#[test]
fn mediawiki_style_tables_file() {
    // `/*_*/` table-prefix markers are block comments to the lexer; the
    // table names parse bare.
    let schema = parse_schema(&fixture("wiki_mysql.sql"), Dialect::MySql).unwrap();
    assert_eq!(schema.tables.len(), 3);
    let page = schema.table("page").unwrap();
    assert_eq!(page.columns.len(), 10);
    assert!(page.column("page_id").unwrap().inline_primary_key);
    assert_eq!(page.column("page_title").unwrap().sql_type.name, "VARBINARY");
    // CREATE INDEX statements attach across the comment-marker names.
    assert_eq!(page.indexes.len(), 3);
    assert!(page.indexes.iter().any(|i| i.unique));

    let revision = schema.table("revision").unwrap();
    assert_eq!(revision.columns.len(), 12);
    assert!(revision.column("rev_len").unwrap().nullable);
}

#[test]
fn fixtures_round_trip_through_printer() {
    for (file, dialect) in [
        ("blog_mysql.sql", Dialect::MySql),
        ("tracker_postgres.sql", Dialect::Postgres),
        ("wiki_mysql.sql", Dialect::MySql),
    ] {
        let schema = parse_schema(&fixture(file), dialect).unwrap();
        let printed = print_schema(&schema, dialect);
        let reparsed = parse_schema(&printed, dialect)
            .unwrap_or_else(|e| panic!("{file}: reprint failed to parse: {e}"));
        assert_eq!(
            schema.attribute_count(),
            reparsed.attribute_count(),
            "{file}: attribute count drift"
        );
        assert_eq!(schema.tables.len(), reparsed.tables.len(), "{file}");
        for t in &schema.tables {
            let rt = reparsed.table(&t.name).expect("table survives round trip");
            assert_eq!(t.primary_key(), rt.primary_key(), "{file}/{}", t.name);
        }
    }
}

#[test]
fn fixture_diffs_measure_expected_activity() {
    // Diffing the Postgres fixture against a reduced version measures the
    // removal precisely.
    let full = parse_schema(&fixture("tracker_postgres.sql"), Dialect::Postgres).unwrap();
    let mut reduced = full.clone();
    let dropped_attrs = reduced.table("issueEvents").unwrap().columns.len();
    reduced.remove_table("issueEvents");
    reduced.table_mut("issues").unwrap().columns.retain(|c| c.name != "severity");
    let delta = coevo_diff::diff_schemas(&full, &reduced);
    let b = delta.breakdown();
    assert_eq!(b.attrs_deleted_with_table, dropped_attrs as u64);
    assert_eq!(b.attrs_ejected, 1);
}
