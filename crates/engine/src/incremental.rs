//! Incremental study updates over append-only histories.
//!
//! The batch engine answers "what does the study say about this corpus" by
//! re-running parse → diff → heartbeat → measure over every project. This
//! module keeps the answer *warm* instead: a [`ProjectState`] ingests typed
//! [`ProjectEvent`]s (one commit, one DDL version) and maintains exactly the
//! state the measures need — the sorted version/delta sequence, the two
//! monthly activity maps, and the [`MeasureFolds`] frontier — so appending
//! one month of history costs O(1) amortized fold work instead of a
//! pipeline re-run.
//!
//! **Same semantics as batch, by construction.** The folds are the same
//! fold states `ProjectData::measures` uses; the monthly maps reproduce
//! `Heartbeat::from_events` bucketing (month span = first event month
//! through last, quiet months zero); version insertion reproduces the
//! stable date sort of `SchemaHistory::from_schemas`. The `coevo-oracle`
//! crate proves the equality corpus-wide, bit for bit.
//!
//! **Out-of-order events.** Histories are *mostly* append-only, but a
//! backfilled commit or a late-arriving DDL version lands in a month that
//! is already folded. Ingestion then:
//!
//! 1. re-diffs at most two deltas (the inserted version against its
//!    predecessor, and its successor against the inserted version) — never
//!    the whole history;
//! 2. adjusts the affected months in the activity maps;
//! 3. marks the earliest dirtied month and lets the next measure query
//!    replay the folds from the nearest [`MeasureFolds`] snapshot — bounded
//!    replay, not a recompute.
//!
//! [`IncrementalStudy`] aggregates per-project states (in name order, for
//! deterministic corpus-level results) and re-derives the full
//! [`StudyResults`] — Figures 4–8 plus the Section-7 statistics — from the
//! warm per-project measures on demand.

use coevo_core::{MeasureFolds, ProjectData, ProjectMeasures, StatsCache, StudyResults};
use coevo_corpus::ProjectArtifacts;
use coevo_ddl::{Dialect, ParseCache, ParseError, Schema};
use coevo_diff::{diff_schemas_with, MatchPolicy, SchemaDelta, SchemaVersion, VersionDelta};
use coevo_heartbeat::{DateTime, Heartbeat, HeartbeatError, YearMonth, MAX_HEARTBEAT_MONTHS};
use coevo_taxa::{classify, HeartbeatFeatures, Taxon, TaxonomyConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// One unit of project history, as it happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProjectEvent {
    /// A non-merge commit touching the project: its timestamp and the
    /// number of files it updated (the unit of project activity).
    Commit {
        /// The commit timestamp.
        date: DateTime,
        /// Files updated by the commit.
        files_updated: u64,
    },
    /// A new version of the schema DDL file.
    DdlVersion {
        /// The commit timestamp of the version.
        date: DateTime,
        /// The full DDL text of the version.
        ddl: String,
    },
}

impl ProjectEvent {
    /// The event timestamp.
    pub fn date(&self) -> DateTime {
        match self {
            Self::Commit { date, .. } | Self::DdlVersion { date, .. } => *date,
        }
    }

    /// The calendar month the event lands in.
    pub fn month(&self) -> YearMonth {
        YearMonth::of(self.date().date)
    }
}

/// Why an event was rejected. Rejected events are *not* applied: the state
/// is exactly what it was before the offending event.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// A DDL version failed to parse (position information preserved).
    Ddl {
        /// The project the event addressed.
        project: String,
        /// The parser error.
        error: ParseError,
    },
    /// A git log failed to parse while converting artifacts to events.
    GitLog {
        /// The project the artifacts describe.
        project: String,
        /// The log parser error.
        error: coevo_vcs::LogParseError,
    },
    /// The event would stretch the project's heartbeat span beyond
    /// [`MAX_HEARTBEAT_MONTHS`] — an out-of-range date.
    Span {
        /// The project the event addressed.
        project: String,
        /// The typed heartbeat error.
        error: HeartbeatError,
    },
    /// An ingest named a dialect different from the one the project was
    /// created with.
    DialectMismatch {
        /// The project the event addressed.
        project: String,
        /// The project's dialect.
        have: Dialect,
        /// The dialect the ingest named.
        got: Dialect,
    },
}

impl IngestError {
    /// The project the rejected event addressed.
    pub fn project(&self) -> &str {
        match self {
            Self::Ddl { project, .. }
            | Self::GitLog { project, .. }
            | Self::Span { project, .. }
            | Self::DialectMismatch { project, .. } => project,
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Ddl { project, error } => write!(f, "{project}: ddl version: {error}"),
            Self::GitLog { project, error } => write!(f, "{project}: git log: {error}"),
            Self::Span { project, error } => write!(f, "{project}: {error}"),
            Self::DialectMismatch { project, have, got } => write!(
                f,
                "{project}: dialect mismatch: project is {}, ingest named {}",
                have.name(),
                got.name()
            ),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Ddl { error, .. } => Some(error),
            Self::GitLog { error, .. } => Some(error),
            Self::Span { error, .. } => Some(error),
            Self::DialectMismatch { .. } => None,
        }
    }
}

/// Sentinel for "no fold month is dirty".
const CLEAN: usize = usize::MAX;

/// The warm per-project state: everything needed to answer measure queries
/// after each event without re-running the pipeline.
pub struct ProjectState {
    name: String,
    dialect: Dialect,
    taxon: Option<Taxon>,
    /// Column-matching policy every delta is diffed under.
    policy: MatchPolicy,
    cache: ParseCache,
    /// Schema versions in the order `SchemaHistory::from_schemas` would
    /// sort them (stable by date; equal dates in arrival order).
    versions: Vec<SchemaVersion>,
    /// Per-version deltas, parallel to `versions`.
    deltas: Vec<VersionDelta>,
    /// Project activity per event month (months with events but zero
    /// activity are present with value 0 — they anchor the heartbeat span).
    project_months: BTreeMap<YearMonth, u64>,
    /// Schema Total Activity per version month.
    schema_months: BTreeMap<YearMonth, u64>,
    commits: u64,
    folds: MeasureFolds,
    /// The axis start the folds were last built on; a change invalidates
    /// every folded index.
    folded_start: Option<YearMonth>,
    /// Lowest axis index the folds no longer reflect ([`CLEAN`] if none).
    dirty_from: usize,
    rediffs: u64,
}

impl fmt::Debug for ProjectState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProjectState")
            .field("name", &self.name)
            .field("commits", &self.commits)
            .field("versions", &self.versions.len())
            .field("months", &self.months())
            .finish()
    }
}

impl ProjectState {
    /// A fresh, empty project under the paper's by-name accounting.
    pub fn new(name: &str, dialect: Dialect) -> Self {
        Self::new_with_policy(name, dialect, MatchPolicy::ByName)
    }

    /// A fresh, empty project whose deltas are diffed under `policy`.
    pub fn new_with_policy(name: &str, dialect: Dialect, policy: MatchPolicy) -> Self {
        Self {
            name: name.to_string(),
            dialect,
            taxon: None,
            policy,
            cache: ParseCache::new(),
            versions: Vec::new(),
            deltas: Vec::new(),
            project_months: BTreeMap::new(),
            schema_months: BTreeMap::new(),
            commits: 0,
            folds: MeasureFolds::new(),
            folded_start: None,
            dirty_from: CLEAN,
            rediffs: 0,
        }
    }

    /// The project name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The DDL dialect every version is parsed with.
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// Pre-assign the taxon (overrides classification).
    pub fn set_taxon(&mut self, taxon: Taxon) {
        self.taxon = Some(taxon);
    }

    /// Commit events ingested so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Schema versions ingested so far, in history order.
    pub fn versions(&self) -> &[SchemaVersion] {
        &self.versions
    }

    /// The per-version deltas, parallel to [`ProjectState::versions`].
    pub fn deltas(&self) -> &[VersionDelta] {
        &self.deltas
    }

    /// The joint month-axis length (0 before any event).
    pub fn months(&self) -> usize {
        match self.axis_bounds() {
            Some((start, end)) => (end.months_since(&start) + 1) as usize,
            None => 0,
        }
    }

    /// How many bounded fold replays out-of-order events have caused.
    pub fn replays(&self) -> u64 {
        self.folds.replays()
    }

    /// How many successor deltas late versions forced to be re-diffed.
    pub fn rediffs(&self) -> u64 {
        self.rediffs
    }

    /// Can measures be computed? Requires at least one commit and one DDL
    /// version — the same precondition under which the batch pipeline
    /// succeeds instead of failing with an `Empty` stage error.
    pub fn is_measurable(&self) -> bool {
        self.commits > 0 && !self.versions.is_empty()
    }

    /// Why the project is not measurable yet, if it isn't.
    pub fn pending_reason(&self) -> Option<&'static str> {
        if self.commits == 0 {
            Some("no commits ingested")
        } else if self.versions.is_empty() {
            Some("no DDL versions ingested")
        } else {
            None
        }
    }

    /// Apply one event. On `Err` the state is unchanged.
    pub fn ingest(&mut self, event: ProjectEvent) -> Result<(), IngestError> {
        match event {
            ProjectEvent::Commit { date, files_updated } => {
                let m = YearMonth::of(date.date);
                self.check_span(m)?;
                *self.project_months.entry(m).or_insert(0) += files_updated;
                self.commits += 1;
                self.mark_dirty(m);
                Ok(())
            }
            ProjectEvent::DdlVersion { date, ddl } => self.ingest_version(date, &ddl),
        }
    }

    fn ingest_version(&mut self, date: DateTime, ddl: &str) -> Result<(), IngestError> {
        let schema = self
            .cache
            .parse(ddl, self.dialect)
            .map_err(|error| IngestError::Ddl { project: self.name.clone(), error })?;
        let m = YearMonth::of(date.date);
        self.check_span(m)?;

        // Insert after every version dated at or before this one — exactly
        // where a stable sort by date would put an arrival-ordered sequence.
        let i = self.versions.partition_point(|v| v.date.unix_seconds() <= date.unix_seconds());
        let version = SchemaVersion { date, schema };
        let delta = self.delta_against_predecessor(i, &version);
        let breakdown = delta.breakdown();
        self.versions.insert(i, version);
        self.deltas.insert(i, VersionDelta { date, delta, breakdown });
        *self.schema_months.entry(m).or_insert(0) += breakdown.total();
        self.mark_dirty(m);

        // A non-final insertion invalidates exactly one other delta: the
        // successor was diffed against the old predecessor.
        if i + 1 < self.versions.len() {
            self.rediff_successor(i);
        }
        Ok(())
    }

    /// The delta of a version about to sit at index `i`, against the
    /// version before it (or the empty schema). Shared-`Arc` versions are
    /// provably inactive without a compare, as in the batch history.
    fn delta_against_predecessor(&self, i: usize, version: &SchemaVersion) -> SchemaDelta {
        match i.checked_sub(1).map(|p| &self.versions[p].schema) {
            Some(prev) if Arc::ptr_eq(prev, &version.schema) => {
                SchemaDelta { tables: Vec::new() }
            }
            Some(prev) => {
                diff_schemas_with(prev.as_ref(), version.schema.as_ref(), self.policy)
            }
            None => {
                diff_schemas_with(Schema::empty_ref(), version.schema.as_ref(), self.policy)
            }
        }
    }

    /// Re-diff the successor of a version just inserted at `i`, adjusting
    /// its month's schema activity by the difference.
    fn rediff_successor(&mut self, i: usize) {
        let succ = &self.versions[i + 1];
        let delta = if Arc::ptr_eq(&self.versions[i].schema, &succ.schema) {
            SchemaDelta { tables: Vec::new() }
        } else {
            diff_schemas_with(
                self.versions[i].schema.as_ref(),
                succ.schema.as_ref(),
                self.policy,
            )
        };
        let breakdown = delta.breakdown();
        let old_total = self.deltas[i + 1].breakdown.total();
        let date = self.deltas[i + 1].date;
        if breakdown.total() != old_total {
            let m = YearMonth::of(date.date);
            let slot = self.schema_months.get_mut(&m).expect("successor month present");
            *slot = *slot - old_total + breakdown.total();
            self.mark_dirty(m);
        }
        self.deltas[i + 1] = VersionDelta { date, delta, breakdown };
        self.rediffs += 1;
    }

    /// Reject events that would stretch the heartbeat span beyond
    /// [`MAX_HEARTBEAT_MONTHS`] — the typed form of the guard
    /// `Heartbeat::try_from_events` applies to batch inputs.
    fn check_span(&self, m: YearMonth) -> Result<(), IngestError> {
        let (mut first, mut last) = (m, m);
        if let Some((start, end)) = self.axis_bounds() {
            first = first.min(start);
            last = last.max(end);
        }
        let months = (last.months_since(&first) + 1) as usize;
        if months > MAX_HEARTBEAT_MONTHS {
            return Err(IngestError::Span {
                project: self.name.clone(),
                error: HeartbeatError::SpanExceeded { months, first, last },
            });
        }
        Ok(())
    }

    /// The joint month axis: earliest event month through latest, across
    /// both series — the batch `align_pair` axis.
    fn axis_bounds(&self) -> Option<(YearMonth, YearMonth)> {
        let firsts = [self.project_months.keys().next(), self.schema_months.keys().next()];
        let lasts =
            [self.project_months.keys().next_back(), self.schema_months.keys().next_back()];
        let start = firsts.into_iter().flatten().min()?;
        let end = lasts.into_iter().flatten().max()?;
        Some((*start, *end))
    }

    /// Record that month `m` no longer matches the folds. A moved axis
    /// start shifts every folded index, so it dirties everything.
    fn mark_dirty(&mut self, m: YearMonth) {
        let Some((start, _)) = self.axis_bounds() else { return };
        match self.folded_start {
            Some(fs) if fs == start => {
                let idx = m.months_since(&start) as usize;
                self.dirty_from = self.dirty_from.min(idx);
            }
            _ => {
                self.folded_start = Some(start);
                self.dirty_from = 0;
            }
        }
    }

    /// Bring the folds up to the current frontier: bounded replay from the
    /// nearest snapshot for dirtied months, plain appends for new ones.
    fn refresh_folds(&mut self) {
        let Some((start, end)) = self.axis_bounds() else { return };
        let months = (end.months_since(&start) + 1) as usize;
        let resume = if self.dirty_from == CLEAN {
            self.folds.months()
        } else if self.dirty_from < self.folds.months() {
            self.folds.rewind_to(self.dirty_from)
        } else {
            self.folds.months()
        };
        for i in resume..months {
            let month = start.plus(i as i64);
            self.folds.append_month(
                self.project_months.get(&month).copied().unwrap_or(0),
                self.schema_months.get(&month).copied().unwrap_or(0),
            );
        }
        self.dirty_from = CLEAN;
    }

    /// The activity of the creation delta (the initial schema's size).
    fn birth_activity(&self) -> u64 {
        self.deltas.first().map(|d| d.breakdown.total()).unwrap_or(0)
    }

    fn heartbeat_of(map: &BTreeMap<YearMonth, u64>) -> Option<Heartbeat> {
        let first = *map.keys().next()?;
        let last = *map.keys().next_back()?;
        let n = (last.months_since(&first) + 1) as usize;
        let activity =
            (0..n).map(|i| map.get(&first.plus(i as i64)).copied().unwrap_or(0)).collect();
        Some(Heartbeat::new(first, activity))
    }

    /// The project heartbeat accumulated so far.
    pub fn project_heartbeat(&self) -> Option<Heartbeat> {
        Self::heartbeat_of(&self.project_months)
    }

    /// The schema heartbeat accumulated so far.
    pub fn schema_heartbeat(&self) -> Option<Heartbeat> {
        Self::heartbeat_of(&self.schema_months)
    }

    /// The equivalent batch input: the same [`ProjectData`] the pipeline
    /// would produce from this project's full history.
    pub fn data(&self) -> Option<ProjectData> {
        if !self.is_measurable() {
            return None;
        }
        let project = self.project_heartbeat()?;
        let schema = self.schema_heartbeat()?;
        let mut data = ProjectData::new(&self.name, project, schema, self.birth_activity());
        if let Some(taxon) = self.taxon {
            data = data.with_taxon(taxon);
        }
        Some(data)
    }

    /// Every per-project measure at the current frontier, or `None` while
    /// the project is still [pending](ProjectState::pending_reason).
    pub fn measures(&mut self, cfg: &TaxonomyConfig) -> Option<ProjectMeasures> {
        if !self.is_measurable() {
            return None;
        }
        self.refresh_folds();
        let out = self.folds.outputs();
        let taxon = self.taxon.unwrap_or_else(|| {
            let schema = self.schema_heartbeat().expect("measurable project has versions");
            classify(&HeartbeatFeatures::post_birth(&schema, self.birth_activity()), cfg)
        });
        Some(ProjectMeasures {
            name: self.name.clone(),
            taxon,
            months: out.months,
            sync_05: out.sync_05,
            sync_10: out.sync_10,
            advance: out.advance,
            attainment: out.attainment,
            schema_total_activity: out.schema_total,
            project_total_activity: out.project_total,
        })
    }

    /// A serializable snapshot of the full state (events folded so far),
    /// for crash-safe persistence. Restoring replays nothing through the
    /// parser or differ; only the fold frontier is rebuilt.
    pub fn snapshot(&self) -> ProjectSnapshot {
        ProjectSnapshot {
            name: self.name.clone(),
            dialect: self.dialect,
            taxon: self.taxon,
            commits: self.commits,
            project_months: self.project_months.iter().map(|(&m, &a)| (m, a)).collect(),
            versions: self.versions.clone(),
            deltas: self.deltas.clone(),
        }
    }

    /// Rebuild a state from a snapshot, diffing future versions by name.
    /// Folds are rebuilt lazily on the first measure query.
    pub fn from_snapshot(snap: ProjectSnapshot) -> Self {
        Self::from_snapshot_with(snap, MatchPolicy::ByName)
    }

    /// Rebuild a state from a snapshot, diffing future versions under
    /// `policy`. Snapshots persist folded deltas, not the policy that
    /// produced them — the restoring study supplies its own.
    pub fn from_snapshot_with(snap: ProjectSnapshot, policy: MatchPolicy) -> Self {
        let mut schema_months = BTreeMap::new();
        for d in &snap.deltas {
            *schema_months.entry(YearMonth::of(d.date.date)).or_insert(0) +=
                d.breakdown.total();
        }
        Self {
            name: snap.name,
            dialect: snap.dialect,
            taxon: snap.taxon,
            policy,
            cache: ParseCache::new(),
            versions: snap.versions,
            deltas: snap.deltas,
            project_months: snap.project_months.into_iter().collect(),
            schema_months,
            commits: snap.commits,
            folds: MeasureFolds::new(),
            folded_start: None,
            dirty_from: CLEAN,
            rediffs: 0,
        }
    }
}

/// The persistent form of a [`ProjectState`]: name, dialect, taxon, and the
/// folded history (monthly commit activity plus the parsed version/delta
/// sequence). Everything else is derived.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProjectSnapshot {
    /// The project name.
    pub name: String,
    /// The DDL dialect.
    pub dialect: Dialect,
    /// Pre-assigned taxon, if any.
    pub taxon: Option<Taxon>,
    /// Commit events ingested.
    pub commits: u64,
    /// Project activity per event month.
    pub project_months: Vec<(YearMonth, u64)>,
    /// Schema versions, history order.
    pub versions: Vec<SchemaVersion>,
    /// Per-version deltas, parallel to `versions`.
    pub deltas: Vec<VersionDelta>,
}

/// Convert batch artifacts into the event stream the incremental path
/// ingests: one [`ProjectEvent::Commit`] per non-merge commit of the git
/// log, then one [`ProjectEvent::DdlVersion`] per dated version text.
pub fn artifacts_to_events(p: &ProjectArtifacts) -> Result<Vec<ProjectEvent>, IngestError> {
    let repo = coevo_vcs::parse_log(&p.git_log)
        .map_err(|error| IngestError::GitLog { project: p.name.clone(), error })?;
    let mut events: Vec<ProjectEvent> = repo
        .non_merge_commits()
        .map(|c| ProjectEvent::Commit { date: c.date, files_updated: c.files_updated() })
        .collect();
    events.extend(
        p.ddl_versions
            .iter()
            .map(|(date, ddl)| ProjectEvent::DdlVersion { date: *date, ddl: ddl.clone() }),
    );
    Ok(events)
}

/// A whole study kept warm: per-project [`ProjectState`]s in name order,
/// with corpus-level [`StudyResults`] recomputed from the warm measures on
/// demand.
#[derive(Debug, Default)]
pub struct IncrementalStudy {
    taxonomy: TaxonomyConfig,
    policy: MatchPolicy,
    projects: BTreeMap<String, ProjectState>,
    /// Memo for Section 7's exact tests: one-month appends rarely change
    /// the contingency tables, so warm summaries skip the Fisher
    /// enumeration that dominates a cold `results()`.
    stats: StatsCache,
}

impl IncrementalStudy {
    /// A fresh study under a taxonomy configuration, diffing by name.
    pub fn new(taxonomy: TaxonomyConfig) -> Self {
        Self::new_with_policy(taxonomy, MatchPolicy::ByName)
    }

    /// A fresh study whose projects diff under `policy`.
    pub fn new_with_policy(taxonomy: TaxonomyConfig, policy: MatchPolicy) -> Self {
        Self { taxonomy, policy, projects: BTreeMap::new(), stats: StatsCache::default() }
    }

    /// The taxonomy configuration measures are computed under.
    pub fn taxonomy(&self) -> &TaxonomyConfig {
        &self.taxonomy
    }

    /// Number of projects (measurable or pending).
    pub fn len(&self) -> usize {
        self.projects.len()
    }

    /// Whether the study has no projects at all.
    pub fn is_empty(&self) -> bool {
        self.projects.is_empty()
    }

    /// The project names, in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.projects.keys().map(String::as_str)
    }

    /// One project's state.
    pub fn project(&self, name: &str) -> Option<&ProjectState> {
        self.projects.get(name)
    }

    /// One project's state, mutably.
    pub fn project_mut(&mut self, name: &str) -> Option<&mut ProjectState> {
        self.projects.get_mut(name)
    }

    /// Ingest a batch of events for one project, creating it on first
    /// contact. Returns the number of events applied. On `Err`, events
    /// before the offending one are applied; the offending one is not.
    pub fn ingest<I>(
        &mut self,
        name: &str,
        dialect: Dialect,
        taxon: Option<Taxon>,
        events: I,
    ) -> Result<usize, IngestError>
    where
        I: IntoIterator<Item = ProjectEvent>,
    {
        let policy = self.policy;
        let state = self
            .projects
            .entry(name.to_string())
            .or_insert_with(|| ProjectState::new_with_policy(name, dialect, policy));
        if state.dialect() != dialect {
            return Err(IngestError::DialectMismatch {
                project: name.to_string(),
                have: state.dialect(),
                got: dialect,
            });
        }
        if let Some(t) = taxon {
            state.set_taxon(t);
        }
        let mut applied = 0;
        for event in events {
            state.ingest(event)?;
            applied += 1;
        }
        Ok(applied)
    }

    /// Ingest a whole project's batch artifacts as an event stream.
    pub fn ingest_artifacts(&mut self, p: &ProjectArtifacts) -> Result<usize, IngestError> {
        let events = artifacts_to_events(p)?;
        self.ingest(&p.name, p.dialect, p.taxon, events)
    }

    /// Names of projects that cannot be measured yet.
    pub fn pending(&self) -> Vec<&str> {
        self.projects.values().filter(|s| !s.is_measurable()).map(|s| s.name()).collect()
    }

    /// Per-project measures of every measurable project, in name order —
    /// the warm equivalent of the batch measure column.
    pub fn measures(&mut self) -> Vec<ProjectMeasures> {
        let cfg = self.taxonomy;
        self.projects.values_mut().filter_map(|s| s.measures(&cfg)).collect()
    }

    /// The full study — Figures 4–8 and the Section-7 statistics — over the
    /// measurable projects, recomputed from the warm measures.
    pub fn results(&mut self) -> StudyResults {
        let measures = self.measures();
        StudyResults::from_measures_cached(measures, &mut self.stats)
    }

    /// Snapshots of every project, in name order.
    pub fn snapshots(&self) -> Vec<ProjectSnapshot> {
        self.projects.values().map(ProjectState::snapshot).collect()
    }

    /// Restore one project from a snapshot, replacing any existing state
    /// under the same name. Future versions diff under this study's policy.
    pub fn restore(&mut self, snap: ProjectSnapshot) {
        let state = ProjectState::from_snapshot_with(snap, self.policy);
        self.projects.insert(state.name().to_string(), state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Source, StudyConfig, StudyRunner};
    use coevo_corpus::{generate_corpus, CorpusSpec};

    fn dt(s: &str) -> DateTime {
        DateTime::parse(s).unwrap()
    }

    fn commit(date: &str, files: u64) -> ProjectEvent {
        ProjectEvent::Commit { date: dt(date), files_updated: files }
    }

    fn version(date: &str, ddl: &str) -> ProjectEvent {
        ProjectEvent::DdlVersion { date: dt(date), ddl: ddl.to_string() }
    }

    fn small_artifacts() -> Vec<ProjectArtifacts> {
        let spec = CorpusSpec::paper().with_per_taxon(1);
        generate_corpus(&spec).iter().map(ProjectArtifacts::from_generated).collect()
    }

    #[test]
    fn streamed_project_matches_batch_pipeline() {
        let runner = StudyRunner::new(StudyConfig::default());
        for p in &small_artifacts() {
            let (batch_data, batch_measures) = runner.run_project(p).expect("batch");
            let mut state = ProjectState::new(&p.name, p.dialect);
            if let Some(t) = p.taxon {
                state.set_taxon(t);
            }
            for ev in artifacts_to_events(p).expect("events") {
                state.ingest(ev).expect("ingest");
            }
            assert_eq!(state.data().as_ref(), Some(&batch_data), "{}", p.name);
            let m = state.measures(&TaxonomyConfig::default()).expect("measures");
            assert_eq!(m, batch_measures, "{}", p.name);
        }
    }

    #[test]
    fn incremental_study_matches_batch_study_in_name_order() {
        let artifacts = small_artifacts();
        let report = StudyRunner::new(StudyConfig::default())
            .run(Source::InMemory(artifacts.clone()))
            .expect("batch run");
        let mut by_name = report.results.measures.clone();
        by_name.sort_by(|a, b| a.name.cmp(&b.name));
        let batch = StudyResults::from_measures(by_name);

        let mut study = IncrementalStudy::default();
        for p in &artifacts {
            study.ingest_artifacts(p).expect("ingest");
        }
        assert!(study.pending().is_empty());
        assert_eq!(study.results(), batch);
    }

    #[test]
    fn out_of_order_events_converge_to_the_same_measures() {
        let p = &small_artifacts()[0];
        let mut in_order = ProjectState::new(&p.name, p.dialect);
        let mut shuffled = ProjectState::new(&p.name, p.dialect);
        let events = artifacts_to_events(p).expect("events");
        for ev in events.clone() {
            in_order.ingest(ev).expect("ingest");
        }
        let expected = in_order.measures(&TaxonomyConfig::default()).expect("measures");

        // Deliver commits last and reversed — every DDL version lands
        // before the project series even starts, then commits backfill
        // earlier months one by one.
        let (commits, ddls): (Vec<_>, Vec<_>) =
            events.into_iter().partition(|e| matches!(e, ProjectEvent::Commit { .. }));
        for ev in ddls {
            shuffled.ingest(ev).expect("ingest");
        }
        // Interleave a measure query so folds exist before the backfill.
        let _ = shuffled.measures(&TaxonomyConfig::default());
        for ev in commits.into_iter().rev() {
            shuffled.ingest(ev).expect("ingest");
        }
        let got = shuffled.measures(&TaxonomyConfig::default()).expect("measures");
        assert_eq!(got, expected);
    }

    #[test]
    fn late_version_rediffs_only_its_successor() {
        let mut state = ProjectState::new("x/y", Dialect::Generic);
        state.ingest(commit("2020-01-05 00:00:00 +0000", 3)).unwrap();
        state.ingest(commit("2020-04-05 00:00:00 +0000", 2)).unwrap();
        state.ingest(version("2020-01-10 00:00:00 +0000", "CREATE TABLE t (a INT);")).unwrap();
        state
            .ingest(version(
                "2020-04-10 00:00:00 +0000",
                "CREATE TABLE t (a INT, b INT, c INT);",
            ))
            .unwrap();
        let eager = state.measures(&TaxonomyConfig::default()).unwrap();
        assert_eq!(eager.schema_total_activity, 3); // 1 born + 2 injected

        // A version between them arrives late: the successor's delta must
        // shrink from two injections to one.
        state
            .ingest(version("2020-02-10 00:00:00 +0000", "CREATE TABLE t (a INT, b INT);"))
            .unwrap();
        assert_eq!(state.rediffs(), 1);
        let m = state.measures(&TaxonomyConfig::default()).unwrap();
        assert_eq!(m.schema_total_activity, 3); // 1 born + 1 + 1 injected
        assert!(state.replays() >= 1);

        // The whole history equals a batch rebuild of the same versions.
        let batch = coevo_diff::SchemaHistory::from_schemas(
            state.versions().to_vec(),
            coevo_diff::MatchPolicy::ByName,
        )
        .unwrap();
        assert_eq!(state.deltas(), batch.deltas());
        assert_eq!(state.schema_heartbeat().unwrap(), batch.heartbeat());
    }

    #[test]
    fn pending_projects_are_excluded_until_complete() {
        let mut study = IncrementalStudy::default();
        study
            .ingest(
                "solo/commits",
                Dialect::Generic,
                None,
                [commit("2020-01-05 00:00:00 +0000", 1)],
            )
            .unwrap();
        assert_eq!(study.pending(), vec!["solo/commits"]);
        assert!(study.results().measures.is_empty());

        study
            .ingest(
                "solo/commits",
                Dialect::Generic,
                None,
                [version("2020-01-10 00:00:00 +0000", "CREATE TABLE t (a INT);")],
            )
            .unwrap();
        assert!(study.pending().is_empty());
        assert_eq!(study.results().measures.len(), 1);
    }

    #[test]
    fn snapshot_roundtrip_preserves_measures_and_accepts_new_events() {
        let p = &small_artifacts()[2];
        let mut state = ProjectState::new(&p.name, p.dialect);
        if let Some(t) = p.taxon {
            state.set_taxon(t);
        }
        for ev in artifacts_to_events(p).expect("events") {
            state.ingest(ev).expect("ingest");
        }
        let expected = state.measures(&TaxonomyConfig::default()).unwrap();

        let json = serde_json::to_string(&state.snapshot()).unwrap();
        let snap: ProjectSnapshot = serde_json::from_str(&json).unwrap();
        let mut restored = ProjectState::from_snapshot(snap);
        assert_eq!(restored.measures(&TaxonomyConfig::default()).unwrap(), expected);

        // The restored state keeps evolving: ingest one more quiet month on
        // both sides and compare against the original doing the same.
        let last = state.versions().last().unwrap();
        let next = last.date.date;
        let late = format!("{:04}-{:02}-01 00:00:00 +0000", next.year + 1, next.month);
        for s in [&mut state, &mut restored] {
            s.ingest(commit(&late, 4)).unwrap();
        }
        assert_eq!(
            restored.measures(&TaxonomyConfig::default()),
            state.measures(&TaxonomyConfig::default())
        );
    }

    #[test]
    fn span_overflow_is_rejected_and_state_unchanged() {
        let mut state = ProjectState::new("x/y", Dialect::Generic);
        state.ingest(commit("2020-01-05 00:00:00 +0000", 1)).unwrap();
        let err = state.ingest(commit("99999-01-05 00:00:00 +0000", 1)).unwrap_err();
        assert!(matches!(err, IngestError::Span { .. }));
        assert_eq!(err.project(), "x/y");
        assert_eq!(state.commits(), 1);
        assert_eq!(state.months(), 1);
    }

    #[test]
    fn bad_ddl_is_rejected_with_parse_position() {
        let mut state = ProjectState::new("x/y", Dialect::Generic);
        let err = state
            .ingest(version("2020-01-10 00:00:00 +0000", "CREATE TABLE t (a INT"))
            .unwrap_err();
        let IngestError::Ddl { project, error } = err else { panic!("expected Ddl") };
        assert_eq!(project, "x/y");
        assert!(error.line >= 1);
        assert!(state.versions().is_empty());
    }

    #[test]
    fn dialect_mismatch_is_rejected() {
        let mut study = IncrementalStudy::default();
        study
            .ingest("x/y", Dialect::Generic, None, [commit("2020-01-05 00:00:00 +0000", 1)])
            .unwrap();
        let err = study
            .ingest("x/y", Dialect::MySql, None, [commit("2020-02-05 00:00:00 +0000", 1)])
            .unwrap_err();
        assert!(matches!(err, IngestError::DialectMismatch { .. }));
    }

    #[test]
    fn one_month_append_is_cheap_after_warmup() {
        let p = &small_artifacts()[0];
        let mut state = ProjectState::new(&p.name, p.dialect);
        for ev in artifacts_to_events(p).expect("events") {
            state.ingest(ev).expect("ingest");
        }
        let _ = state.measures(&TaxonomyConfig::default());
        let replays_before = state.replays();
        // An in-order append (a commit after the last folded month) must
        // not rewind anything.
        let last = state.project_heartbeat().unwrap().end();
        let after = last.plus(1);
        let date = format!("{:04}-{:02}-15 00:00:00 +0000", after.year, after.month);
        state.ingest(commit(&date, 2)).unwrap();
        let _ = state.measures(&TaxonomyConfig::default());
        assert_eq!(state.replays(), replays_before);
    }
}
