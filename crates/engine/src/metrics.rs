//! Per-stage observability: wall-time spans, item counters and throughput.
//!
//! Workers record into [`Metrics`] with plain atomic adds (no locks on the
//! hot path); [`Metrics::snapshot`] freezes the counters into a
//! [`MetricsSnapshot`] that [`coevo_report::profile`] renders as the
//! `coevo study --profile` table.

use crate::error::Stage;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One observable outcome of a result-store interaction, counted by
/// [`Metrics::record_store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreEvent {
    /// A verified entry served the project (parse/diff/measure skipped).
    Hit,
    /// No entry existed for the project's input digest.
    Miss,
    /// A stale entry (format or digest mismatch) was quarantined.
    Invalidated,
    /// A corrupt entry (torn write, checksum failure) was quarantined.
    Quarantined,
    /// A freshly computed result was published to the store.
    Published,
    /// A publish attempt failed (the study continues; publishes are
    /// best-effort).
    PublishFailure,
}

impl StoreEvent {
    const COUNT: usize = 6;

    fn index(self) -> usize {
        match self {
            Self::Hit => 0,
            Self::Miss => 1,
            Self::Invalidated => 2,
            Self::Quarantined => 3,
            Self::Published => 4,
            Self::PublishFailure => 5,
        }
    }
}

/// Live per-stage counters, shared by every worker of a run.
#[derive(Debug)]
pub struct Metrics {
    busy_nanos: [AtomicU64; Stage::ALL.len()],
    items: [AtomicU64; Stage::ALL.len()],
    cache_hits: [AtomicU64; Stage::ALL.len()],
    cache_misses: [AtomicU64; Stage::ALL.len()],
    allocs: [AtomicU64; Stage::ALL.len()],
    alloc_bytes: [AtomicU64; Stage::ALL.len()],
    store: [AtomicU64; StoreEvent::COUNT],
    store_enabled: AtomicBool,
    started: Instant,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Start a fresh counter set; the run's wall clock starts now.
    pub fn new() -> Self {
        Self {
            busy_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            items: std::array::from_fn(|_| AtomicU64::new(0)),
            cache_hits: std::array::from_fn(|_| AtomicU64::new(0)),
            cache_misses: std::array::from_fn(|_| AtomicU64::new(0)),
            allocs: std::array::from_fn(|_| AtomicU64::new(0)),
            alloc_bytes: std::array::from_fn(|_| AtomicU64::new(0)),
            store: std::array::from_fn(|_| AtomicU64::new(0)),
            store_enabled: AtomicBool::new(false),
            started: Instant::now(),
        }
    }

    /// Mark this run as store-backed: the snapshot will carry a
    /// [`StoreMetrics`] block (all-zero counters are meaningful for a
    /// store-backed run, and absent for a store-less one).
    pub fn enable_store(&self) {
        self.store_enabled.store(true, Ordering::Relaxed);
    }

    /// Count one result-store outcome.
    pub fn record_store(&self, event: StoreEvent) {
        self.store[event.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Record `elapsed` busy time and `items` processed items for `stage`.
    pub fn record(&self, stage: Stage, elapsed: Duration, items: u64) {
        let i = Self::index(stage);
        self.busy_nanos[i].fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.items[i].fetch_add(items, Ordering::Relaxed);
    }

    /// Record incremental-core counters for `stage`: lookups the stage's
    /// cache answered (`hits` — parses elided, versions/tables skipped) vs.
    /// lookups that had to do the work (`misses`).
    pub fn record_cache(&self, stage: Stage, hits: u64, misses: u64) {
        let i = Self::index(stage);
        self.cache_hits[i].fetch_add(hits, Ordering::Relaxed);
        self.cache_misses[i].fetch_add(misses, Ordering::Relaxed);
    }

    /// Record an allocation delta ([`crate::allocs::AllocSnapshot::since`])
    /// the worker measured around `stage`. All-zero deltas — the norm when
    /// no counting allocator is installed — are skipped so a production run
    /// stays write-free here.
    pub fn record_allocs(&self, stage: Stage, delta: crate::allocs::AllocSnapshot) {
        if delta.allocs == 0 && delta.bytes == 0 {
            return;
        }
        let i = Self::index(stage);
        self.allocs[i].fetch_add(delta.allocs, Ordering::Relaxed);
        self.alloc_bytes[i].fetch_add(delta.bytes, Ordering::Relaxed);
    }

    /// Freeze the counters. `workers` is echoed into the snapshot so the
    /// profile rendering can relate summed busy time to wall time.
    pub fn snapshot(&self, workers: usize) -> MetricsSnapshot {
        let stages = Stage::ALL
            .into_iter()
            .enumerate()
            .map(|(i, stage)| StageMetrics {
                stage,
                items: self.items[i].load(Ordering::Relaxed),
                busy: Duration::from_nanos(self.busy_nanos[i].load(Ordering::Relaxed)),
                cache_hits: self.cache_hits[i].load(Ordering::Relaxed),
                cache_misses: self.cache_misses[i].load(Ordering::Relaxed),
                allocs: self.allocs[i].load(Ordering::Relaxed),
                alloc_bytes: self.alloc_bytes[i].load(Ordering::Relaxed),
            })
            .collect();
        let store = self.store_enabled.load(Ordering::Relaxed).then(|| StoreMetrics {
            hits: self.store[StoreEvent::Hit.index()].load(Ordering::Relaxed),
            misses: self.store[StoreEvent::Miss.index()].load(Ordering::Relaxed),
            invalidated: self.store[StoreEvent::Invalidated.index()].load(Ordering::Relaxed),
            quarantined: self.store[StoreEvent::Quarantined.index()].load(Ordering::Relaxed),
            published: self.store[StoreEvent::Published.index()].load(Ordering::Relaxed),
            publish_failures: self.store[StoreEvent::PublishFailure.index()]
                .load(Ordering::Relaxed),
        });
        MetricsSnapshot {
            stages,
            wall: self.started.elapsed(),
            workers,
            store,
            memory: crate::allocs::MemoryProfile::sample(),
        }
    }

    fn index(stage: Stage) -> usize {
        Stage::ALL.iter().position(|s| *s == stage).expect("stage in ALL")
    }
}

/// The frozen counters of one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageMetrics {
    /// The stage.
    pub stage: Stage,
    /// Items processed (logs+versions parsed, deltas diffed, heartbeats
    /// built, projects measured, …).
    pub items: u64,
    /// Summed busy time across all workers.
    pub busy: Duration,
    /// Incremental-core lookups answered without doing the work (parse-cache
    /// hits, fingerprint-equal versions/tables skipped).
    pub cache_hits: u64,
    /// Incremental-core lookups that did the work (fresh parses, tables
    /// actually diffed).
    pub cache_misses: u64,
    /// Heap allocations measured inside the stage. Zero unless the binary
    /// installed [`crate::allocs::CountingAlloc`] (only the benchmark suite
    /// does).
    pub allocs: u64,
    /// Bytes those allocations requested.
    pub alloc_bytes: u64,
}

impl StageMetrics {
    /// Items per second of busy time (0 when the stage never ran).
    pub fn throughput(&self) -> f64 {
        let secs = self.busy.as_secs_f64();
        if secs > 0.0 {
            self.items as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of cache lookups answered without work, or `None` when the
    /// stage recorded no cache lookups at all.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.cache_hits as f64 / total as f64)
        }
    }
}

/// The frozen result-store counters of one store-backed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreMetrics {
    /// Projects served from a verified store entry.
    pub hits: u64,
    /// Projects with no store entry (computed, then published).
    pub misses: u64,
    /// Stale entries quarantined (format/digest mismatch), then recomputed.
    pub invalidated: u64,
    /// Corrupt entries quarantined (checksum/parse failure), then
    /// recomputed.
    pub quarantined: u64,
    /// Results published to the store this run.
    pub published: u64,
    /// Best-effort publishes that failed (never fatal to the study).
    pub publish_failures: u64,
}

impl StoreMetrics {
    /// Total store lookups (one per project).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.invalidated + self.quarantined
    }
}

/// A frozen view of one engine run's observability counters.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Per-stage counters, in execution order.
    pub stages: Vec<StageMetrics>,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Worker threads the run used.
    pub workers: usize,
    /// Result-store counters; `Some` exactly when the run was store-backed.
    pub store: Option<StoreMetrics>,
    /// Peak-memory readings at snapshot time (RSS high-water mark where the
    /// platform exposes one; live-heap high-water mark when a counting
    /// allocator is installed).
    pub memory: crate::allocs::MemoryProfile,
}

impl MetricsSnapshot {
    /// The counters of one stage.
    pub fn stage(&self, stage: Stage) -> Option<&StageMetrics> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// Render the profile table (via [`coevo_report::profile`]).
    pub fn render(&self) -> String {
        let rows: Vec<coevo_report::profile::ProfileRow> = self
            .stages
            .iter()
            .map(|s| coevo_report::profile::ProfileRow {
                stage: s.stage.name().to_string(),
                items: s.items,
                busy: s.busy,
                cache_hits: s.cache_hits,
                cache_misses: s.cache_misses,
                allocs: s.allocs,
                alloc_bytes: s.alloc_bytes,
            })
            .collect();
        let store = self.store.map(|s| coevo_report::profile::StoreProfile {
            hits: s.hits,
            misses: s.misses,
            invalidated: s.invalidated,
            quarantined: s.quarantined,
            published: s.published,
            publish_failures: s.publish_failures,
        });
        let memory = coevo_report::profile::MemoryRow {
            rss_bytes: self.memory.peak_rss_bytes,
            live_bytes: self.memory.peak_live_bytes,
        };
        let memory =
            (memory.rss_bytes.is_some() || memory.live_bytes.is_some()).then_some(memory);
        coevo_report::profile::render_profile(
            &rows,
            self.wall,
            self.workers,
            store.as_ref(),
            memory.as_ref(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let m = Metrics::new();
        m.record(Stage::Parse, Duration::from_millis(10), 4);
        m.record(Stage::Parse, Duration::from_millis(30), 6);
        m.record(Stage::Stats, Duration::from_millis(5), 1);
        let snap = m.snapshot(3);
        assert_eq!(snap.workers, 3);
        let parse = snap.stage(Stage::Parse).unwrap();
        assert_eq!(parse.items, 10);
        assert_eq!(parse.busy, Duration::from_millis(40));
        assert!((parse.throughput() - 250.0).abs() < 1.0);
        assert_eq!(snap.stage(Stage::Diff).unwrap().items, 0);
        assert_eq!(snap.stage(Stage::Diff).unwrap().throughput(), 0.0);
    }

    #[test]
    fn cache_counters_accumulate_and_rate() {
        let m = Metrics::new();
        m.record_cache(Stage::Parse, 59, 1);
        m.record_cache(Stage::Parse, 0, 1);
        m.record_cache(Stage::Diff, 10, 30);
        let snap = m.snapshot(1);
        let parse = snap.stage(Stage::Parse).unwrap();
        assert_eq!((parse.cache_hits, parse.cache_misses), (59, 2));
        assert!((parse.cache_hit_rate().unwrap() - 59.0 / 61.0).abs() < 1e-9);
        assert!(
            (snap.stage(Stage::Diff).unwrap().cache_hit_rate().unwrap() - 0.25).abs() < 1e-9
        );
        // Stages with no cache lookups report no rate (rendered as `-`).
        assert_eq!(snap.stage(Stage::Load).unwrap().cache_hit_rate(), None);
        let text = snap.render();
        assert!(text.contains("97%"), "{text}"); // parse hit rate 59/61
    }

    #[test]
    fn alloc_counters_accumulate_and_render() {
        use crate::allocs::AllocSnapshot;
        let m = Metrics::new();
        // Zero deltas (no counting allocator installed) leave everything 0.
        m.record_allocs(Stage::Parse, AllocSnapshot::default());
        // Non-zero deltas accumulate per stage.
        m.record_allocs(Stage::Parse, AllocSnapshot { allocs: 1000, bytes: 64_000 });
        m.record_allocs(Stage::Parse, AllocSnapshot { allocs: 500, bytes: 16_000 });
        m.record_allocs(Stage::Diff, AllocSnapshot { allocs: 10, bytes: 320 });
        let snap = m.snapshot(1);
        let parse = snap.stage(Stage::Parse).unwrap();
        assert_eq!((parse.allocs, parse.alloc_bytes), (1500, 80_000));
        assert_eq!(snap.stage(Stage::Measure).unwrap().allocs, 0);
        let text = snap.render();
        assert!(text.contains("allocs"), "{text}");
        assert!(text.contains("1.5k"), "{text}"); // parse allocs, humanized
    }

    #[test]
    fn alloc_free_snapshot_renders_no_alloc_column() {
        let m = Metrics::new();
        m.record(Stage::Parse, Duration::from_millis(1), 1);
        let text = m.snapshot(1).render();
        assert!(!text.contains("allocs"), "{text}");
    }

    #[test]
    fn render_mentions_every_stage() {
        let m = Metrics::new();
        m.record(Stage::Measure, Duration::from_millis(2), 7);
        let text = m.snapshot(2).render();
        for stage in Stage::ALL {
            assert!(text.contains(stage.name()), "{text}");
        }
        assert!(text.contains("items/s"), "{text}");
        assert!(text.contains("workers"), "{text}");
    }
}
