//! # coevo-engine — the study's execution engine
//!
//! An instrumented, fault-tolerant parallel engine that runs the *entire*
//! study — corpus generation (or on-disk loading) → per-project measurement
//! pipeline → figures → Section-7 statistics — behind one builder-style
//! entry point:
//!
//! ```no_run
//! use coevo_engine::{FailurePolicy, Source, StudyConfig, StudyRunner};
//!
//! let report = StudyRunner::new(StudyConfig::default())
//!     .with_workers(8)
//!     .with_failure_policy(FailurePolicy::CollectAndContinue)
//!     .run(Source::paper())
//!     .expect("study");
//! println!("{} projects, {} failures", report.projects.len(), report.failures.len());
//! println!("{}", report.metrics.render());
//! ```
//!
//! Three properties define the engine:
//!
//! - **fault tolerance** — a project with a corrupt DDL version or a
//!   truncated git log is demoted to a structured [`ProjectFailure`]
//!   (project, stage, typed cause) in [`EngineReport::failures`]; the study
//!   completes on the survivors instead of aborting;
//! - **observability** — every stage (load, parse, diff, heartbeat,
//!   measure, stats) records wall-time spans and item counters into a
//!   [`Metrics`] snapshot that `coevo study --profile` prints;
//! - **determinism** — work fans out over a crossbeam work-stealing pool
//!   with bounded channels, but results are re-assembled in input order, so
//!   parallel output is byte-identical to the sequential path.

#![warn(missing_docs)]

pub mod allocs;
mod error;
pub mod incremental;
mod metrics;
pub mod pipeline;
mod runner;
mod store_stage;
mod streamed;

pub use error::{EngineError, EngineErrorKind, FailurePolicy, ProjectFailure, Stage};
pub use incremental::{
    artifacts_to_events, IncrementalStudy, IngestError, ProjectEvent, ProjectSnapshot,
    ProjectState,
};
pub use metrics::{Metrics, MetricsSnapshot, StageMetrics, StoreEvent, StoreMetrics};
pub use runner::{EngineReport, Source, StudyConfig, StudyRunner, DEFAULT_BATCH};
pub use streamed::{MeasureFold, StreamedReport};
