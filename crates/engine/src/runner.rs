//! The staged execution engine behind the [`StudyRunner`] builder API.
//!
//! A run proceeds through the stages of [`crate::Stage`]:
//!
//! 1. **load** — materialize raw artifacts (generate the corpus, or read
//!    manifests + files from disk);
//! 2. **parse / diff / heartbeat / measure** — the per-project pipeline,
//!    fanned out over a crossbeam work-stealing worker pool. Items are
//!    dealt round-robin into per-worker deques; idle workers steal from
//!    their peers, and finished results flow through a bounded channel to
//!    an order-preserving collector (so parallel output is byte-identical
//!    to sequential output);
//! 3. **stats** — figures and Section-7 statistics over the survivors.
//!
//! A project whose artifacts are corrupt is demoted to a structured
//! [`ProjectFailure`] under the default [`FailurePolicy::CollectAndContinue`]
//! — the study completes on the survivors instead of aborting.

use crate::error::{EngineError, EngineErrorKind, FailurePolicy, ProjectFailure, Stage};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::pipeline::{process, WorkItem};
use crate::store_stage::{process_with_store, store_config_hash, StoreContext};
use coevo_core::{ProjectData, ProjectMeasures, StudyResults};
use coevo_corpus::loader::Manifest;
use coevo_corpus::{CorpusSpec, ProjectArtifacts};
use coevo_ddl::Dialect;
use coevo_diff::MatchPolicy;
use coevo_heartbeat::DateTime;
use coevo_taxa::TaxonomyConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Where the study's projects come from.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// The calibrated 195-project paper corpus, generated with this seed.
    GeneratedCorpus(u64),
    /// A corpus generated from a custom spec.
    Spec(CorpusSpec),
    /// An on-disk corpus directory in the loader layout (one subdirectory
    /// per project, each with `manifest.json`, `git.log` and `versions/`).
    OnDisk(PathBuf),
    /// Explicit in-memory project artifacts, run as given and in the given
    /// order. The entry point for callers that synthesize or rewrite
    /// histories themselves (the `coevo-oracle` mutators).
    InMemory(Vec<ProjectArtifacts>),
    /// A sharded corpus directory (`corpus.json` + `shards/*.csh`, written
    /// by `coevo corpus gen`). Projects run in *global* corpus order (shard
    /// `start` offsets, not manifest entry order). [`StudyRunner::run`]
    /// loads all shards eagerly; [`StudyRunner::run_streamed`] admits one
    /// shard at a time for O(shard) peak memory.
    Sharded(PathBuf),
}

impl Source {
    /// The paper's corpus under its default seed.
    pub fn paper() -> Self {
        Source::GeneratedCorpus(CorpusSpec::paper().seed)
    }
}

/// Configuration of a study run. Construct with [`Default`] and refine via
/// the [`StudyRunner`] builder methods.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyConfig {
    /// Worker threads for the per-project stages; `0` means one per
    /// available CPU.
    pub workers: usize,
    /// What to do when a project fails.
    pub failure_policy: FailurePolicy,
    /// The taxonomy thresholds used when measuring projects.
    pub taxonomy: TaxonomyConfig,
    /// The column-matching policy of the diff stage. `ByName` is the
    /// paper's accounting; `RenameDetection` pairs ejected/injected columns
    /// with the scored matcher and emits `Renamed` changes instead.
    pub match_policy: MatchPolicy,
    /// Capacity of the bounded result channel between the worker pool and
    /// the collector (backpressure bound).
    pub channel_capacity: usize,
    /// Root directory of the content-addressed result store; `None` runs
    /// store-less. With a store, every project's result is looked up by
    /// input digest before the pipeline runs and published after a miss.
    pub store_dir: Option<PathBuf>,
    /// Upper bound on the projects resident in memory at once during a
    /// [`StudyRunner::run_streamed`] run: each admission batch is at most
    /// this many projects. `0` picks the natural unit — one shard for
    /// [`Source::Sharded`], [`DEFAULT_BATCH`] projects for the other
    /// sources. Ignored by the eager [`StudyRunner::run`] path.
    pub max_resident_projects: usize,
}

/// The streamed scheduler's batch size when neither the corpus shard size
/// nor [`StudyConfig::max_resident_projects`] dictates one.
pub const DEFAULT_BATCH: usize = 256;

impl Default for StudyConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            failure_policy: FailurePolicy::default(),
            taxonomy: TaxonomyConfig::default(),
            match_policy: MatchPolicy::ByName,
            channel_capacity: 32,
            store_dir: None,
            max_resident_projects: 0,
        }
    }
}

/// Everything one engine run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// The surviving projects, in corpus order.
    pub projects: Vec<ProjectData>,
    /// The full study results computed from the survivors.
    pub results: StudyResults,
    /// Projects demoted to structured failures.
    pub failures: Vec<ProjectFailure>,
    /// Per-stage observability counters.
    pub metrics: MetricsSnapshot,
}

/// The single public entry point for running the study:
///
/// ```no_run
/// use coevo_engine::{FailurePolicy, Source, StudyConfig, StudyRunner};
///
/// let report = StudyRunner::new(StudyConfig::default())
///     .with_workers(4)
///     .with_failure_policy(FailurePolicy::CollectAndContinue)
///     .run(Source::paper())
///     .expect("study");
/// println!("{}", report.metrics.render());
/// ```
#[derive(Debug, Clone, Default)]
pub struct StudyRunner {
    config: StudyConfig,
}

impl StudyRunner {
    /// Construct a runner from a configuration.
    pub fn new(config: StudyConfig) -> Self {
        Self { config }
    }

    /// Override the worker-thread count (`0` = one per available CPU).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Override the failure policy.
    pub fn with_failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.config.failure_policy = policy;
        self
    }

    /// Back the run with the content-addressed result store rooted at `dir`
    /// (created on first use).
    pub fn with_store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.store_dir = Some(dir.into());
        self
    }

    /// Override the diff stage's column-matching policy.
    pub fn with_match_policy(mut self, policy: MatchPolicy) -> Self {
        self.config.match_policy = policy;
        self
    }

    /// Bound the streamed scheduler's resident set to `n` projects per
    /// admission batch (`0` = the source's natural unit; see
    /// [`StudyConfig::max_resident_projects`]).
    pub fn with_max_resident(mut self, n: usize) -> Self {
        self.config.max_resident_projects = n;
        self
    }

    /// The effective configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// Run the full study over `source`.
    ///
    /// Under [`FailurePolicy::CollectAndContinue`] this only returns `Err`
    /// when the source itself is unusable (e.g. the corpus directory cannot
    /// be read); per-project problems land in [`EngineReport::failures`].
    /// Under [`FailurePolicy::FailFast`] the first project failure aborts
    /// the run with its error.
    pub fn run(&self, source: Source) -> Result<EngineReport, EngineError> {
        let metrics = Metrics::new();
        let store = self.open_store(&metrics)?;

        // Load stage.
        let t = Instant::now();
        let (items, mut failures) = self.load(source)?;
        metrics.record(Stage::Load, t.elapsed(), items.len() as u64);
        if self.config.failure_policy == FailurePolicy::FailFast {
            if let Some(f) = failures.first() {
                return Err(f.error.clone());
            }
        }

        // Per-project stages over the work-stealing pool.
        let workers = self.worker_count(items.len());
        let slots = self.run_pool(items, workers, &metrics, store.as_ref());

        let mut projects = Vec::new();
        let mut measures = Vec::new();
        for slot in slots {
            match slot {
                Some(Ok((data, m))) => {
                    projects.push(data);
                    measures.push(m);
                }
                Some(Err(e)) => {
                    if self.config.failure_policy == FailurePolicy::FailFast {
                        return Err(e);
                    }
                    failures.push(ProjectFailure::from(e));
                }
                // A `None` slot is an item skipped after a fail-fast abort;
                // the triggering error itself is returned via the arm above
                // (an abort implies at least one `Some(Err(_))` slot).
                None => {}
            }
        }
        failures.sort_by(|a, b| a.project.cmp(&b.project));

        // Stats stage.
        let t = Instant::now();
        let results = StudyResults::from_measures(measures);
        metrics.record(Stage::Stats, t.elapsed(), 1);

        Ok(EngineReport { projects, results, failures, metrics: metrics.snapshot(workers) })
    }

    /// Run exactly one project through the per-project pipeline stages,
    /// deterministically and on the calling thread — no worker pool, no
    /// stats stage. Honors the configured taxonomy and (when set) the
    /// result store, so a store-backed call is served from / published to
    /// the same entries as a full [`StudyRunner::run`].
    ///
    /// This is the oracle's re-run entry point: two calls with equal
    /// artifacts and equal config return equal results, bit for bit.
    pub fn run_project(
        &self,
        project: &ProjectArtifacts,
    ) -> Result<(ProjectData, ProjectMeasures), EngineError> {
        let metrics = Metrics::new();
        let item = work_item(0, project.clone());
        match &self.config.store_dir {
            Some(dir) => {
                metrics.enable_store();
                let store = coevo_store::ResultStore::open(dir).map_err(|e| EngineError {
                    project: dir.display().to_string(),
                    stage: Stage::Store,
                    kind: EngineErrorKind::Store(e.to_string()),
                })?;
                let config_hash =
                    store_config_hash(&self.config.taxonomy, self.config.match_policy);
                let ctx = StoreContext { store, config_hash };
                process_with_store(
                    &item,
                    &self.config.taxonomy,
                    self.config.match_policy,
                    &metrics,
                    &ctx,
                )
            }
            None => process(&item, &self.config.taxonomy, self.config.match_policy, &metrics),
        }
    }

    /// Open the configured result store, if any. An unusable store is a
    /// hard error, like an unreadable corpus: the user asked for warm
    /// restarts and cannot have them.
    pub(crate) fn open_store(
        &self,
        metrics: &Metrics,
    ) -> Result<Option<StoreContext>, EngineError> {
        match &self.config.store_dir {
            Some(dir) => {
                metrics.enable_store();
                let store = coevo_store::ResultStore::open(dir).map_err(|e| EngineError {
                    project: dir.display().to_string(),
                    stage: Stage::Store,
                    kind: EngineErrorKind::Store(e.to_string()),
                })?;
                let config_hash =
                    store_config_hash(&self.config.taxonomy, self.config.match_policy);
                Ok(Some(StoreContext { store, config_hash }))
            }
            None => Ok(None),
        }
    }

    pub(crate) fn worker_count(&self, items: usize) -> usize {
        let auto = || std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        let n = if self.config.workers == 0 { auto() } else { self.config.workers };
        n.min(items.max(1))
    }

    /// Materialize work items. Per-project load problems become failures;
    /// only an unusable source is a hard error.
    fn load(
        &self,
        source: Source,
    ) -> Result<(Vec<WorkItem>, Vec<ProjectFailure>), EngineError> {
        match source {
            Source::GeneratedCorpus(seed) => {
                let mut spec = CorpusSpec::paper();
                spec.seed = seed;
                Ok((generated_items(&spec), Vec::new()))
            }
            Source::Spec(spec) => Ok((generated_items(&spec), Vec::new())),
            Source::OnDisk(dir) => load_on_disk(&dir),
            Source::InMemory(projects) => Ok((
                projects.into_iter().enumerate().map(|(i, p)| work_item(i, p)).collect(),
                Vec::new(),
            )),
            Source::Sharded(dir) => load_sharded(&dir),
        }
    }

    /// Fan the items out over `workers` threads with per-worker deques and
    /// work stealing; collect `(index, result)` pairs over a bounded channel
    /// into input-order slots.
    #[allow(clippy::type_complexity)]
    pub(crate) fn run_pool(
        &self,
        items: Vec<WorkItem>,
        workers: usize,
        metrics: &Metrics,
        store: Option<&StoreContext>,
    ) -> Vec<Option<Result<(ProjectData, ProjectMeasures), EngineError>>> {
        let total = items.len();
        let mut slots: Vec<Option<Result<(ProjectData, ProjectMeasures), EngineError>>> =
            (0..total).map(|_| None).collect();
        if total == 0 {
            return slots;
        }

        // Deal items round-robin into per-worker deques.
        let queues: Vec<crossbeam::deque::Worker<WorkItem>> =
            (0..workers).map(|_| crossbeam::deque::Worker::new_fifo()).collect();
        for (i, item) in items.into_iter().enumerate() {
            queues[i % workers].push(item);
        }
        let stealers: Vec<crossbeam::deque::Stealer<WorkItem>> =
            queues.iter().map(|q| q.stealer()).collect();

        let remaining = AtomicUsize::new(total);
        let abort = AtomicBool::new(false);
        let fail_fast = self.config.failure_policy == FailurePolicy::FailFast;
        let cfg = &self.config.taxonomy;
        let policy = self.config.match_policy;
        let (tx, rx) = crossbeam::channel::bounded(self.config.channel_capacity.max(1));

        crossbeam::thread::scope(|scope| {
            for (id, own) in queues.into_iter().enumerate() {
                let tx = tx.clone();
                let stealers = stealers.clone();
                let remaining = &remaining;
                let abort = &abort;
                scope.spawn(move |_| {
                    loop {
                        // Own queue first, then steal from peers.
                        let item = own.pop().or_else(|| {
                            stealers.iter().enumerate().filter(|(j, _)| *j != id).find_map(
                                |(_, s)| loop {
                                    match s.steal() {
                                        crossbeam::deque::Steal::Success(it) => break Some(it),
                                        crossbeam::deque::Steal::Empty => break None,
                                        crossbeam::deque::Steal::Retry => {}
                                    }
                                },
                            )
                        });
                        let Some(item) = item else {
                            if remaining.load(Ordering::Acquire) == 0 {
                                break;
                            }
                            std::thread::yield_now();
                            continue;
                        };
                        let index = item.index;
                        let result = if abort.load(Ordering::Relaxed) {
                            None
                        } else {
                            let r = match store {
                                Some(ctx) => {
                                    process_with_store(&item, cfg, policy, metrics, ctx)
                                }
                                None => process(&item, cfg, policy, metrics),
                            };
                            if fail_fast && r.is_err() {
                                abort.store(true, Ordering::Relaxed);
                            }
                            Some(r)
                        };
                        remaining.fetch_sub(1, Ordering::Release);
                        tx.send((index, result)).expect("collector alive");
                    }
                });
            }
            drop(tx);
            for _ in 0..total {
                let (index, result) = rx.recv().expect("one message per item");
                slots[index] = result;
            }
        })
        .expect("engine worker panicked");

        slots
    }
}

/// Turn explicit project artifacts into the pipeline's work item.
pub(crate) fn work_item(index: usize, p: ProjectArtifacts) -> WorkItem {
    WorkItem {
        index,
        name: p.name,
        git_log: p.git_log,
        ddl_versions: p.ddl_versions,
        dialect: p.dialect,
        taxon: p.taxon,
    }
}

/// Turn a generated corpus into work items (corpus order preserved).
fn generated_items(spec: &CorpusSpec) -> Vec<WorkItem> {
    coevo_corpus::generate_corpus(spec)
        .into_iter()
        .enumerate()
        .map(|(index, p)| WorkItem {
            index,
            name: p.raw.name,
            git_log: p.git_log,
            ddl_versions: p.raw.ddl_versions,
            dialect: p.raw.dialect,
            taxon: Some(p.raw.taxon),
        })
        .collect()
}

/// Read every project directory under `dir` (any subdirectory containing a
/// `manifest.json`), demoting unreadable projects to load failures. Items
/// are ordered by project name, matching `coevo_corpus::loader::load_corpus`.
#[allow(clippy::type_complexity)]
fn load_on_disk(
    dir: &std::path::Path,
) -> Result<(Vec<WorkItem>, Vec<ProjectFailure>), EngineError> {
    let entries = std::fs::read_dir(dir).map_err(|e| EngineError {
        project: dir.display().to_string(),
        stage: Stage::Load,
        kind: EngineErrorKind::Load(format!("unreadable corpus directory: {e}")),
    })?;
    let mut project_dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join("manifest.json").exists())
        .collect();
    project_dirs.sort();

    let mut items = Vec::new();
    let mut failures = Vec::new();
    for pdir in project_dirs {
        let fallback_name = pdir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| pdir.display().to_string());
        match load_project_raw(&pdir) {
            Ok((name, git_log, ddl_versions, dialect, taxon)) => items.push(WorkItem {
                index: 0, // assigned after sorting
                name,
                git_log,
                ddl_versions,
                dialect,
                taxon,
            }),
            Err(kind) => failures.push(ProjectFailure::from(EngineError {
                project: fallback_name,
                stage: Stage::Load,
                kind,
            })),
        }
    }
    items.sort_by(|a, b| a.name.cmp(&b.name));
    for (i, item) in items.iter_mut().enumerate() {
        item.index = i;
    }
    Ok((items, failures))
}

/// Load a whole sharded corpus eagerly, in global order — the in-memory
/// counterpart (and differential oracle) of the streamed path, sharing its
/// per-shard leniency so both paths surface identical failures.
#[allow(clippy::type_complexity)]
fn load_sharded(
    dir: &std::path::Path,
) -> Result<(Vec<WorkItem>, Vec<ProjectFailure>), EngineError> {
    let stream = open_corpus_stream(dir)?;
    let mut entries = stream.manifest().shards.clone();
    entries.sort_by_key(|e| e.start);
    let mut items = Vec::new();
    let mut failures = Vec::new();
    for entry in &entries {
        let (projects, fails) = read_shard_lenient(&stream, entry);
        failures.extend(fails);
        for p in projects {
            let index = items.len();
            items.push(work_item(index, p));
        }
    }
    Ok((items, failures))
}

/// Open a sharded corpus, mapping an unusable corpus (missing manifest,
/// format-version mismatch, unreadable `corpus.json`) to a hard load error.
pub(crate) fn open_corpus_stream(
    dir: &std::path::Path,
) -> Result<coevo_corpus::CorpusStream, EngineError> {
    coevo_corpus::CorpusStream::open(dir).map_err(|e| EngineError {
        project: dir.display().to_string(),
        stage: Stage::Load,
        kind: EngineErrorKind::Load(e.to_string()),
    })
}

/// Read one shard with record-level leniency: a shard that cannot be opened
/// (bad magic, count mismatch, unreadable file) becomes one failure named
/// after the shard file; a corrupt record becomes a failure named
/// `<file>[record N]` while the remaining records still load. Both the
/// eager and the streamed sharded paths call this, so their failure sets
/// are identical by construction.
pub(crate) fn read_shard_lenient(
    stream: &coevo_corpus::CorpusStream,
    entry: &coevo_corpus::ShardEntry,
) -> (Vec<ProjectArtifacts>, Vec<ProjectFailure>) {
    let shard_failure = |kind: String| {
        ProjectFailure::from(EngineError {
            project: entry.file.clone(),
            stage: Stage::Load,
            kind: EngineErrorKind::Load(kind),
        })
    };
    let reader = match stream.shard_reader(entry) {
        Ok(r) => r,
        Err(e) => return (Vec::new(), vec![shard_failure(e.to_string())]),
    };
    let mut projects = Vec::with_capacity(entry.projects);
    let mut failures = Vec::new();
    for record in reader {
        match record {
            Ok(p) => projects.push(p),
            Err(coevo_corpus::ShardError::Record { file, index, detail }) => {
                failures.push(ProjectFailure::from(EngineError {
                    project: format!("{file}[record {index}]"),
                    stage: Stage::Load,
                    kind: EngineErrorKind::Load(detail),
                }));
            }
            Err(e) => failures.push(shard_failure(e.to_string())),
        }
    }
    (projects, failures)
}

type RawProjectParts =
    (String, String, Vec<(DateTime, String)>, Dialect, Option<coevo_taxa::Taxon>);

/// Read one project directory's raw artifacts without running the pipeline
/// (parsing happens inside the instrumented worker stages).
pub(crate) fn load_project_raw(
    dir: &std::path::Path,
) -> Result<RawProjectParts, EngineErrorKind> {
    let io = |what: &str, e: std::io::Error| EngineErrorKind::Load(format!("{what}: {e}"));
    let manifest_text = std::fs::read_to_string(dir.join("manifest.json"))
        .map_err(|e| io("manifest.json", e))?;
    let manifest: Manifest = coevo_corpus::loader::manifest_from_json(&manifest_text)
        .map_err(|e| EngineErrorKind::Load(e.to_string()))?;
    let dialect = Dialect::from_name(&manifest.dialect).ok_or_else(|| {
        EngineErrorKind::Load(format!("unknown dialect {:?}", manifest.dialect))
    })?;
    let git_log = std::fs::read_to_string(dir.join("git.log")).map_err(|e| io("git.log", e))?;
    let mut ddl_versions = Vec::with_capacity(manifest.versions.len());
    for v in &manifest.versions {
        let date = DateTime::parse(&v.date)
            .map_err(|_| EngineErrorKind::Load(format!("bad date {:?}", v.date)))?;
        let text = std::fs::read_to_string(dir.join("versions").join(&v.file))
            .map_err(|e| io(&format!("versions/{}", v.file), e))?;
        ddl_versions.push((date, text));
    }
    let taxon = manifest.taxon.as_deref().and_then(coevo_taxa::Taxon::parse);
    Ok((manifest.name, git_log, ddl_versions, dialect, taxon))
}

#[cfg(test)]
mod tests {
    use super::*;
    use coevo_core::Study;

    fn small_spec(per_taxon: usize) -> CorpusSpec {
        let mut spec = CorpusSpec::paper();
        for t in &mut spec.taxa {
            t.count = per_taxon;
        }
        spec
    }

    #[test]
    fn parallel_equals_sequential_on_small_corpus() {
        let spec = small_spec(2);
        let seq = StudyRunner::new(StudyConfig::default())
            .with_workers(1)
            .run(Source::Spec(spec.clone()))
            .expect("sequential run");
        let par = StudyRunner::new(StudyConfig::default())
            .with_workers(4)
            .run(Source::Spec(spec))
            .expect("parallel run");
        assert!(seq.failures.is_empty());
        assert_eq!(seq.projects, par.projects);
        assert_eq!(seq.results, par.results);
    }

    #[test]
    fn engine_matches_free_function_study() {
        let spec = small_spec(1);
        let report = StudyRunner::new(StudyConfig::default())
            .run(Source::Spec(spec.clone()))
            .expect("engine run");
        let projects: Vec<_> = coevo_corpus::generate_corpus(&spec)
            .iter()
            .map(|p| crate::pipeline::project_from_generated(p).expect("pipeline"))
            .collect();
        let reference = Study::new(projects).run();
        assert_eq!(report.results, reference);
    }

    #[test]
    fn metrics_cover_all_stages() {
        let report = StudyRunner::new(StudyConfig::default())
            .with_workers(2)
            .run(Source::Spec(small_spec(1)))
            .expect("engine run");
        let m = &report.metrics;
        assert_eq!(m.workers, 2);
        assert_eq!(m.stage(Stage::Load).unwrap().items, 6);
        assert_eq!(m.stage(Stage::Measure).unwrap().items, 6);
        assert_eq!(m.stage(Stage::Stats).unwrap().items, 1);
        assert!(m.stage(Stage::Parse).unwrap().items > 6); // logs + versions
        assert!(m.stage(Stage::Diff).unwrap().items >= 6);
        assert!(m.stage(Stage::Heartbeat).unwrap().items == 12);
    }

    #[test]
    fn store_backed_rerun_serves_every_project() {
        let dir =
            std::env::temp_dir().join(format!("coevo_engine_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = small_spec(1);
        let runner = StudyRunner::new(StudyConfig::default()).with_store(&dir);

        let cold = runner.run(Source::Spec(spec.clone())).expect("cold run");
        let s = cold.metrics.store.expect("store-backed metrics");
        assert_eq!((s.hits, s.misses, s.published), (0, 6, 6));

        let warm = runner.run(Source::Spec(spec)).expect("warm run");
        let s = warm.metrics.store.expect("store-backed metrics");
        assert_eq!((s.hits, s.misses, s.published), (6, 0, 0));
        assert_eq!(cold.projects, warm.projects);
        assert_eq!(cold.results, warm.results);
        assert!(warm.metrics.render().contains("6/6 served"));

        // A store-less run reports no store metrics at all.
        let plain = StudyRunner::new(StudyConfig::default())
            .run(Source::Spec(small_spec(1)))
            .expect("store-less run");
        assert!(plain.metrics.store.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unusable_store_directory_is_a_hard_error() {
        let err = StudyRunner::new(StudyConfig::default())
            .with_store("/proc/coevo-engine-store-cannot-live-here")
            .run(Source::Spec(small_spec(1)))
            .unwrap_err();
        assert_eq!(err.stage, Stage::Store);
        assert!(matches!(err.kind, EngineErrorKind::Store(_)));
    }

    #[test]
    fn empty_on_disk_corpus_is_an_empty_study() {
        let dir =
            std::env::temp_dir().join(format!("coevo_engine_empty_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let report = StudyRunner::new(StudyConfig::default())
            .run(Source::OnDisk(dir.clone()))
            .expect("engine run");
        assert!(report.projects.is_empty());
        assert!(report.failures.is_empty());
        assert_eq!(report.results.measures.len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_corpus_directory_is_a_hard_error() {
        let err = StudyRunner::new(StudyConfig::default())
            .run(Source::OnDisk(PathBuf::from("/nonexistent_coevo_corpus")))
            .unwrap_err();
        assert_eq!(err.stage, Stage::Load);
        assert!(matches!(err.kind, EngineErrorKind::Load(_)));
    }

    #[test]
    fn in_memory_source_equals_generated_source() {
        let spec = small_spec(1);
        let projects: Vec<ProjectArtifacts> = coevo_corpus::generate_corpus(&spec)
            .iter()
            .map(ProjectArtifacts::from_generated)
            .collect();
        let from_spec = StudyRunner::new(StudyConfig::default())
            .with_workers(1)
            .run(Source::Spec(spec))
            .expect("spec run");
        let from_memory = StudyRunner::new(StudyConfig::default())
            .with_workers(1)
            .run(Source::InMemory(projects))
            .expect("in-memory run");
        assert_eq!(from_spec.projects, from_memory.projects);
        assert_eq!(from_spec.results, from_memory.results);
    }

    #[test]
    fn run_project_matches_full_run_per_project() {
        let spec = small_spec(1);
        let projects: Vec<ProjectArtifacts> = coevo_corpus::generate_corpus(&spec)
            .iter()
            .map(ProjectArtifacts::from_generated)
            .collect();
        let runner = StudyRunner::new(StudyConfig::default());
        let full = runner.run(Source::InMemory(projects.clone())).expect("full run");
        for (i, p) in projects.iter().enumerate() {
            let (data, measures) = runner.run_project(p).expect("single run");
            let again = runner.run_project(p).expect("repeat run");
            assert_eq!(full.projects[i], data, "{}", p.name);
            assert_eq!(full.results.measures[i], measures, "{}", p.name);
            assert_eq!((data, measures), again, "{}", p.name);
        }
    }

    #[test]
    fn builder_overrides_config() {
        let runner = StudyRunner::new(StudyConfig::default())
            .with_workers(3)
            .with_failure_policy(FailurePolicy::FailFast);
        assert_eq!(runner.config().workers, 3);
        assert_eq!(runner.config().failure_policy, FailurePolicy::FailFast);
    }
}
