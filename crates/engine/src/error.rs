//! Structured errors for the execution engine.
//!
//! The engine replaces the corpus pipeline's stringly-typed errors with
//! [`EngineError`]: a typed error that keeps the underlying parser error
//! (with its source position) reachable through
//! [`std::error::Error::source`], and carries the project name and the
//! [`Stage`] at which processing stopped.

use std::fmt;

/// The stages of the study engine, in execution order. Used both as the
/// failure location of an [`EngineError`] and as the key of the per-stage
/// [`crate::Metrics`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Reading raw artifacts (corpus generation, or manifest + files on
    /// disk).
    Load,
    /// Consulting and publishing to the content-addressed result store
    /// (only active when a run is configured with `--store`).
    Store,
    /// Parsing the git log and every DDL version.
    Parse,
    /// Diffing consecutive schema versions into the delta sequence.
    Diff,
    /// Building the project and schema monthly heartbeats.
    Heartbeat,
    /// Deriving the per-project study measures.
    Measure,
    /// Aggregating figures and Section-7 statistics over all survivors.
    Stats,
}

impl Stage {
    /// Every stage, in execution order.
    pub const ALL: [Stage; 7] = [
        Stage::Load,
        Stage::Store,
        Stage::Parse,
        Stage::Diff,
        Stage::Heartbeat,
        Stage::Measure,
        Stage::Stats,
    ];

    /// The lowercase stage name used in error messages and profile rows.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Load => "load",
            Stage::Store => "store",
            Stage::Parse => "parse",
            Stage::Diff => "diff",
            Stage::Heartbeat => "heartbeat",
            Stage::Measure => "measure",
            Stage::Stats => "stats",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What went wrong, preserving the typed source error where one exists.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineErrorKind {
    /// The git log failed to parse.
    GitLog(coevo_vcs::LogParseError),
    /// A DDL version failed to parse (position information preserved).
    Ddl(coevo_ddl::ParseError),
    /// The project has no commits or no DDL versions.
    Empty(&'static str),
    /// The on-disk artifacts could not be loaded (missing or malformed
    /// manifest, unreadable version file, bad date or dialect).
    Load(String),
    /// The configured result store is unusable (unwritable directory,
    /// failed recovery). Per-entry corruption is *not* an error — corrupt
    /// entries are quarantined and recomputed.
    Store(String),
}

impl fmt::Display for EngineErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::GitLog(e) => write!(f, "{e}"),
            Self::Ddl(e) => write!(f, "{e}"),
            Self::Empty(what) => write!(f, "empty {what}"),
            Self::Load(msg) => write!(f, "{msg}"),
            Self::Store(msg) => write!(f, "{msg}"),
        }
    }
}

/// An engine failure with full context: which project, at which stage, and
/// the typed cause. The wrapped parser errors stay reachable through
/// [`std::error::Error::source`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineError {
    /// The project the engine was processing.
    pub project: String,
    /// The stage at which processing stopped.
    pub stage: Stage,
    /// The typed cause.
    pub kind: EngineErrorKind,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} stage: {}", self.project, self.stage, self.kind)
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            EngineErrorKind::GitLog(e) => Some(e),
            EngineErrorKind::Ddl(e) => Some(e),
            EngineErrorKind::Empty(_)
            | EngineErrorKind::Load(_)
            | EngineErrorKind::Store(_) => None,
        }
    }
}

/// One project the engine demoted instead of aborting the study: the
/// project name, the stage it failed at, and the typed error.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectFailure {
    /// The project name (or its directory name, when the manifest itself
    /// was unreadable).
    pub project: String,
    /// The stage at which the project failed.
    pub stage: Stage,
    /// The full typed error.
    pub error: EngineError,
}

impl ProjectFailure {
    /// The rendered cause, without the project/stage prefix.
    pub fn cause(&self) -> String {
        self.error.kind.to_string()
    }
}

impl From<EngineError> for ProjectFailure {
    fn from(error: EngineError) -> Self {
        Self { project: error.project.clone(), stage: error.stage, error }
    }
}

impl fmt::Display for ProjectFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.error)
    }
}

/// What the engine does when a project fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Abort the run on the first failure, returning its error.
    FailFast,
    /// Demote failing projects to [`ProjectFailure`] entries and compute
    /// the study from the survivors (the default).
    #[default]
    CollectAndContinue,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_carries_project_and_stage() {
        let e = EngineError {
            project: "g/p".into(),
            stage: Stage::Parse,
            kind: EngineErrorKind::Empty("repository"),
        };
        assert_eq!(e.to_string(), "g/p: parse stage: empty repository");
    }

    #[test]
    fn source_preserves_parser_errors() {
        let ddl_err =
            coevo_ddl::parse_schema("CREATE TABLE t (a INT", coevo_ddl::Dialect::Generic)
                .unwrap_err();
        let e = EngineError {
            project: "g/p".into(),
            stage: Stage::Parse,
            kind: EngineErrorKind::Ddl(ddl_err.clone()),
        };
        let src = e.source().expect("ddl source");
        assert_eq!(src.to_string(), ddl_err.to_string());

        let log_err = coevo_vcs::parse_log("commit abc\nAuthor: A <a@b.c>\n").unwrap_err();
        let e = EngineError {
            project: "g/p".into(),
            stage: Stage::Parse,
            kind: EngineErrorKind::GitLog(log_err.clone()),
        };
        assert_eq!(e.source().unwrap().to_string(), log_err.to_string());

        let e = EngineError {
            project: "g/p".into(),
            stage: Stage::Load,
            kind: EngineErrorKind::Load("bad manifest".into()),
        };
        assert!(e.source().is_none());
    }

    #[test]
    fn failure_from_error_keeps_context() {
        let e = EngineError {
            project: "x/y".into(),
            stage: Stage::Diff,
            kind: EngineErrorKind::Empty("schema history"),
        };
        let f = ProjectFailure::from(e);
        assert_eq!(f.project, "x/y");
        assert_eq!(f.stage, Stage::Diff);
        assert_eq!(f.cause(), "empty schema history");
    }

    #[test]
    fn default_policy_collects() {
        assert_eq!(FailurePolicy::default(), FailurePolicy::CollectAndContinue);
    }
}
