//! Allocation profiling: a counting global-allocator wrapper plus
//! thread-local counters the pipeline samples around each stage.
//!
//! The module is always compiled and costs nothing unless a binary actually
//! installs [`CountingAlloc`] as its `#[global_allocator]` — without it the
//! counters stay at zero, [`snapshot`] deltas are zero, and the profile
//! renders the alloc column as `-`. The benchmark suite (`coevo-bench`,
//! feature `count-allocs`, on by default) installs it in its bench and test
//! binaries; the production `coevo` binary never does, so the study's hot
//! path keeps the system allocator with zero indirection.
//!
//! Counters are **thread-local**: a worker thread measuring its own stage
//! spans sees only its own allocations, so parallel workers never contend on
//! a shared atomic and per-stage attribution stays exact. The trade-off is
//! that a delta taken on thread A says nothing about thread B — which is
//! precisely the semantics [`crate::pipeline::process`] wants, since one
//! project's whole pipeline runs on one worker.

use std::alloc::{GlobalAlloc, Layout};
use std::cell::Cell;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// A `#[global_allocator]` wrapper that counts allocations and allocated
/// bytes into thread-local counters before delegating to the inner
/// allocator.
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: coevo_engine::allocs::CountingAlloc<std::alloc::System> =
///     coevo_engine::allocs::CountingAlloc(std::alloc::System);
/// ```
pub struct CountingAlloc<A>(pub A);

/// Bump the thread's counters. `try_with` because the allocator runs during
/// thread teardown, after the TLS slots may already be destroyed.
fn note(bytes: usize) {
    let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
    let _ = ALLOC_BYTES.try_with(|c| c.set(c.get() + bytes as u64));
}

// SAFETY: delegates every operation unchanged to the inner allocator; the
// counter bumps touch only plain thread-local `Cell`s and never allocate.
unsafe impl<A: GlobalAlloc> GlobalAlloc for CountingAlloc<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        self.0.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        self.0.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is the moment a fresh block may be obtained; count the new
        // size so repeated `Vec` doubling shows up in the byte counter.
        note(new_size);
        self.0.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.0.dealloc(ptr, layout)
    }
}

/// A point-in-time reading of the current thread's allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Allocations (including zeroed allocs and reallocs) since thread
    /// start.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// The counter delta from `earlier` to `self` (saturating, so a
    /// snapshot pair taken across threads degrades to zero instead of
    /// wrapping).
    pub fn since(self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Read the current thread's allocation counters. All zeros unless the
/// binary installed a [`CountingAlloc`] as its global allocator.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOC_COUNT.try_with(Cell::get).unwrap_or(0),
        bytes: ALLOC_BYTES.try_with(Cell::get).unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The engine's own test binary does not install the counting allocator,
    // so these tests pin the *inert* behavior: snapshots read zero and
    // deltas are zero — the production-path contract.
    #[test]
    fn snapshots_are_zero_without_installed_allocator() {
        let before = snapshot();
        let v: Vec<u64> = (0..1024).collect();
        let after = snapshot();
        assert_eq!(v.len(), 1024);
        assert_eq!(after.since(before), AllocSnapshot::default());
    }

    #[test]
    fn since_saturates() {
        let a = AllocSnapshot { allocs: 3, bytes: 100 };
        let b = AllocSnapshot { allocs: 5, bytes: 90 };
        assert_eq!(b.since(a), AllocSnapshot { allocs: 2, bytes: 0 });
        assert_eq!(a.since(b), AllocSnapshot { allocs: 0, bytes: 10 });
    }

    // The wrapper itself is exercised (counts and delegates) without
    // installing it globally, by calling the `GlobalAlloc` methods directly.
    #[test]
    fn wrapper_counts_and_delegates() {
        let alloc = CountingAlloc(std::alloc::System);
        let layout = Layout::from_size_align(64, 8).unwrap();
        let before = snapshot();
        unsafe {
            let p = alloc.alloc(layout);
            assert!(!p.is_null());
            alloc.dealloc(p, layout);
        }
        let delta = snapshot().since(before);
        assert_eq!(delta.allocs, 1);
        assert_eq!(delta.bytes, 64);
    }
}
