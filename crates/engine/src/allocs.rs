//! Allocation profiling: a counting global-allocator wrapper plus
//! thread-local counters the pipeline samples around each stage.
//!
//! The module is always compiled and costs nothing unless a binary actually
//! installs [`CountingAlloc`] as its `#[global_allocator]` — without it the
//! counters stay at zero, [`snapshot`] deltas are zero, and the profile
//! renders the alloc column as `-`. The benchmark suite (`coevo-bench`,
//! feature `count-allocs`, on by default) installs it in its bench and test
//! binaries; the production `coevo` binary never does, so the study's hot
//! path keeps the system allocator with zero indirection.
//!
//! Counters are **thread-local**: a worker thread measuring its own stage
//! spans sees only its own allocations, so parallel workers never contend on
//! a shared atomic and per-stage attribution stays exact. The trade-off is
//! that a delta taken on thread A says nothing about thread B — which is
//! precisely the semantics [`crate::pipeline::process`] wants, since one
//! project's whole pipeline runs on one worker.

use std::alloc::{GlobalAlloc, Layout};
use std::cell::Cell;
use std::sync::atomic::{AtomicI64, Ordering};

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Process-wide live-byte accounting, unlike the per-stage counters above:
/// every thread's allocs and deallocs flow into one signed total, and the
/// high-water mark is maintained with `fetch_max`. Signed because a block
/// can be freed on a different thread than it was allocated on (and after a
/// [`reset_peak_live`], more bytes can die than were born since). The peak
/// is what the streamed-study memory assertions read: it bounds the live
/// heap of the whole process, exactly the O(shard) claim under test.
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_LIVE: AtomicI64 = AtomicI64::new(0);

fn note_live(delta: i64) {
    let now = LIVE_BYTES.fetch_add(delta, Ordering::Relaxed) + delta;
    if delta > 0 {
        PEAK_LIVE.fetch_max(now, Ordering::Relaxed);
    }
}

/// A `#[global_allocator]` wrapper that counts allocations and allocated
/// bytes into thread-local counters before delegating to the inner
/// allocator.
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: coevo_engine::allocs::CountingAlloc<std::alloc::System> =
///     coevo_engine::allocs::CountingAlloc(std::alloc::System);
/// ```
pub struct CountingAlloc<A>(pub A);

/// Bump the thread's counters. `try_with` because the allocator runs during
/// thread teardown, after the TLS slots may already be destroyed.
fn note(bytes: usize) {
    let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
    let _ = ALLOC_BYTES.try_with(|c| c.set(c.get() + bytes as u64));
}

// SAFETY: delegates every operation unchanged to the inner allocator; the
// counter bumps touch only plain thread-local `Cell`s and never allocate.
unsafe impl<A: GlobalAlloc> GlobalAlloc for CountingAlloc<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        note_live(layout.size() as i64);
        self.0.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        note_live(layout.size() as i64);
        self.0.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is the moment a fresh block may be obtained; count the new
        // size so repeated `Vec` doubling shows up in the byte counter.
        note(new_size);
        note_live(new_size as i64 - layout.size() as i64);
        self.0.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        note_live(-(layout.size() as i64));
        self.0.dealloc(ptr, layout)
    }
}

/// A point-in-time reading of the current thread's allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Allocations (including zeroed allocs and reallocs) since thread
    /// start.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// The counter delta from `earlier` to `self` (saturating, so a
    /// snapshot pair taken across threads degrades to zero instead of
    /// wrapping).
    pub fn since(self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Read the current thread's allocation counters. All zeros unless the
/// binary installed a [`CountingAlloc`] as its global allocator.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOC_COUNT.try_with(Cell::get).unwrap_or(0),
        bytes: ALLOC_BYTES.try_with(Cell::get).unwrap_or(0),
    }
}

/// Live heap bytes right now, process-wide. Zero (or meaningless) unless a
/// [`CountingAlloc`] is installed.
pub fn live_bytes() -> i64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// The live-byte high-water mark since process start (or the last
/// [`reset_peak_live`]). Zero unless a [`CountingAlloc`] is installed.
pub fn peak_live_bytes() -> i64 {
    PEAK_LIVE.load(Ordering::Relaxed)
}

/// Restart the peak at the *current* live level, so the next reading bounds
/// only the allocations of the region under measurement. Racy against
/// concurrent allocators by nature; call it from quiescent points (between
/// runs), which is all the memory assertions need.
pub fn reset_peak_live() {
    PEAK_LIVE.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Peak resident set size of this process, self-sampled from
/// `/proc/self/status` (`VmHWM`). `None` off Linux or if the field is
/// unavailable. This is the OS's view — it includes code, stacks and
/// allocator slack, and (being a high-water mark) never decreases — so the
/// profile reports it alongside, not instead of, peak live bytes.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// The process's peak-memory readings, sampled at profile-snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryProfile {
    /// Peak resident set size (`VmHWM`), when the platform exposes it.
    pub peak_rss_bytes: Option<u64>,
    /// Live-heap high-water mark from [`CountingAlloc`], when one is
    /// installed (`None` when the counters never moved).
    pub peak_live_bytes: Option<u64>,
}

impl MemoryProfile {
    /// Sample both peaks right now.
    pub fn sample() -> Self {
        let live = peak_live_bytes();
        Self {
            peak_rss_bytes: peak_rss_bytes(),
            peak_live_bytes: (live > 0).then_some(live as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The engine's own test binary does not install the counting allocator,
    // so these tests pin the *inert* behavior: snapshots read zero and
    // deltas are zero — the production-path contract.
    #[test]
    fn snapshots_are_zero_without_installed_allocator() {
        let before = snapshot();
        let v: Vec<u64> = (0..1024).collect();
        let after = snapshot();
        assert_eq!(v.len(), 1024);
        assert_eq!(after.since(before), AllocSnapshot::default());
    }

    #[test]
    fn since_saturates() {
        let a = AllocSnapshot { allocs: 3, bytes: 100 };
        let b = AllocSnapshot { allocs: 5, bytes: 90 };
        assert_eq!(b.since(a), AllocSnapshot { allocs: 2, bytes: 0 });
        assert_eq!(a.since(b), AllocSnapshot { allocs: 0, bytes: 10 });
    }

    // The wrapper itself is exercised (counts and delegates) without
    // installing it globally, by calling the `GlobalAlloc` methods directly.
    #[test]
    fn wrapper_counts_and_delegates() {
        let alloc = CountingAlloc(std::alloc::System);
        let layout = Layout::from_size_align(64, 8).unwrap();
        let before = snapshot();
        unsafe {
            let p = alloc.alloc(layout);
            assert!(!p.is_null());
            alloc.dealloc(p, layout);
        }
        let delta = snapshot().since(before);
        assert_eq!(delta.allocs, 1);
        assert_eq!(delta.bytes, 64);
    }

    #[test]
    fn live_bytes_track_alloc_and_dealloc() {
        let alloc = CountingAlloc(std::alloc::System);
        let layout = Layout::from_size_align(256, 8).unwrap();
        let before_live = live_bytes();
        reset_peak_live();
        unsafe {
            let p = alloc.alloc(layout);
            assert!(!p.is_null());
            assert!(live_bytes() >= before_live + 256);
            assert!(peak_live_bytes() >= before_live + 256);
            alloc.dealloc(p, layout);
        }
        // Balanced: the block's 256 bytes were returned.
        assert_eq!(live_bytes(), before_live);
        // The peak keeps the high-water mark after the free.
        assert!(peak_live_bytes() >= before_live + 256);
    }

    #[test]
    fn realloc_adjusts_live_by_the_difference() {
        let alloc = CountingAlloc(std::alloc::System);
        let small = Layout::from_size_align(128, 8).unwrap();
        unsafe {
            let p = alloc.alloc(small);
            assert!(!p.is_null());
            let before = live_bytes();
            let q = alloc.realloc(p, small, 512);
            assert!(!q.is_null());
            assert_eq!(live_bytes(), before + (512 - 128));
            alloc.dealloc(q, Layout::from_size_align(512, 8).unwrap());
        }
    }

    #[test]
    fn peak_rss_is_present_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            let rss = rss.expect("VmHWM available on Linux");
            // A running test binary surely holds more than a megabyte.
            assert!(rss > 1 << 20, "{rss}");
        } else {
            assert!(rss.is_none());
        }
    }

    #[test]
    fn memory_profile_samples_without_panic() {
        let m = MemoryProfile::sample();
        // peak_live may be None (no installed allocator) — just must not lie.
        if let Some(live) = m.peak_live_bytes {
            assert!(live > 0);
        }
    }
}
