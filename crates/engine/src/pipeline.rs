//! The typed per-project measurement pipeline the engine's workers run:
//! parse → diff → heartbeat → measure, with per-stage [`Metrics`] spans and
//! [`EngineError`] failures that keep the underlying parser error.
//!
//! This is the structured replacement for the stringly-typed entry points in
//! [`coevo_corpus::pipeline`], which remain as deprecated shims.

use crate::allocs;
use crate::error::{EngineError, EngineErrorKind, Stage};
use crate::metrics::Metrics;
use coevo_core::{ProjectData, ProjectMeasures};
use coevo_corpus::GeneratedProject;
use coevo_ddl::{Dialect, ParseCache};
use coevo_diff::{MatchPolicy, SchemaHistory, SchemaVersion};
use coevo_heartbeat::DateTime;
use coevo_taxa::{Taxon, TaxonomyConfig};
use coevo_vcs::{monthly::project_heartbeat, parse_log};
use std::time::Instant;

/// One unit of work for the engine's pool: a project's raw artifacts plus
/// its position in the corpus (results are re-assembled in input order, so
/// parallel output is identical to sequential output).
#[derive(Debug, Clone)]
pub(crate) struct WorkItem {
    pub index: usize,
    pub name: String,
    pub git_log: String,
    pub ddl_versions: Vec<(DateTime, String)>,
    pub dialect: Dialect,
    pub taxon: Option<Taxon>,
}

/// Run parse → diff → heartbeat → measure on one project's raw artifacts,
/// recording per-stage spans into `metrics`.
pub(crate) fn process(
    item: &WorkItem,
    cfg: &TaxonomyConfig,
    policy: MatchPolicy,
    metrics: &Metrics,
) -> Result<(ProjectData, ProjectMeasures), EngineError> {
    let fail = |stage: Stage, kind: EngineErrorKind| EngineError {
        project: item.name.clone(),
        stage,
        kind,
    };

    // Parse: the git log, then every DDL version through a per-project
    // content-addressed cache — byte-identical versions (inactive commits)
    // parse once and share one `Arc<Schema>`.
    let a = allocs::snapshot();
    let t = Instant::now();
    let repo =
        parse_log(&item.git_log).map_err(|e| fail(Stage::Parse, EngineErrorKind::GitLog(e)))?;
    let mut cache = ParseCache::new();
    let mut versions = Vec::with_capacity(item.ddl_versions.len());
    for (date, text) in &item.ddl_versions {
        let schema = cache
            .parse(text, item.dialect)
            .map_err(|e| fail(Stage::Parse, EngineErrorKind::Ddl(e)))?;
        versions.push(SchemaVersion { date: *date, schema });
    }
    metrics.record(Stage::Parse, t.elapsed(), 1 + item.ddl_versions.len() as u64);
    metrics.record_cache(Stage::Parse, cache.hits(), cache.misses());
    metrics.record_allocs(Stage::Parse, allocs::snapshot().since(a));

    // Diff: consecutive versions into the delta sequence.
    let a = allocs::snapshot();
    let t = Instant::now();
    let history = SchemaHistory::from_schemas(versions, policy)
        .ok_or_else(|| fail(Stage::Diff, EngineErrorKind::Empty("schema history")))?;
    metrics.record(Stage::Diff, t.elapsed(), history.deltas().len() as u64);
    let dstats = history.diff_stats();
    metrics.record_cache(Stage::Diff, dstats.elided(), dstats.tables_diffed);
    metrics.record_allocs(Stage::Diff, allocs::snapshot().since(a));

    // Heartbeat: the two monthly activity series.
    let a = allocs::snapshot();
    let t = Instant::now();
    let project_hb = project_heartbeat(&repo)
        .ok_or_else(|| fail(Stage::Heartbeat, EngineErrorKind::Empty("repository")))?;
    let schema_hb = history.heartbeat();
    let birth_activity = history.deltas().first().map(|d| d.breakdown.total()).unwrap_or(0);
    metrics.record(Stage::Heartbeat, t.elapsed(), 2);
    metrics.record_allocs(Stage::Heartbeat, allocs::snapshot().since(a));

    let mut data = ProjectData::new(&item.name, project_hb, schema_hb, birth_activity);
    if let Some(taxon) = item.taxon {
        data = data.with_taxon(taxon);
    }

    // Measure: the per-project study measures.
    let a = allocs::snapshot();
    let t = Instant::now();
    let measures = data.measures(cfg);
    metrics.record(Stage::Measure, t.elapsed(), 1);
    metrics.record_allocs(Stage::Measure, allocs::snapshot().since(a));

    Ok((data, measures))
}

/// Run the typed pipeline on raw textual artifacts: a git log dump and a
/// dated DDL version sequence. The structured counterpart of
/// [`coevo_corpus::pipeline::project_from_texts`].
pub fn project_from_texts(
    name: &str,
    git_log: &str,
    ddl_versions: &[(DateTime, String)],
    dialect: Dialect,
) -> Result<ProjectData, EngineError> {
    let item = WorkItem {
        index: 0,
        name: name.to_string(),
        git_log: git_log.to_string(),
        ddl_versions: ddl_versions.to_vec(),
        dialect,
        taxon: None,
    };
    process(&item, &TaxonomyConfig::default(), MatchPolicy::ByName, &Metrics::new())
        .map(|(data, _)| data)
}

/// Run the typed pipeline on one generated project, attaching the
/// generator's taxon label.
pub fn project_from_generated(p: &GeneratedProject) -> Result<ProjectData, EngineError> {
    let item = WorkItem {
        index: 0,
        name: p.raw.name.clone(),
        git_log: p.git_log.clone(),
        ddl_versions: p.raw.ddl_versions.clone(),
        dialect: p.raw.dialect,
        taxon: Some(p.raw.taxon),
    };
    process(&item, &TaxonomyConfig::default(), MatchPolicy::ByName, &Metrics::new())
        .map(|(data, _)| data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coevo_corpus::{generate_corpus, CorpusSpec};

    const GOOD_LOG: &str =
        "commit abc\nAuthor: A <a@b.c>\nDate:   2020-01-01 00:00:00 +0000\n\n    m\n\nM\tf\n";

    fn dt(s: &str) -> DateTime {
        DateTime::parse(s).unwrap()
    }

    #[test]
    fn matches_corpus_text_pipeline_on_generated_projects() {
        let mut spec = CorpusSpec::paper();
        for t in &mut spec.taxa {
            t.count = 1;
        }
        for p in generate_corpus(&spec) {
            let typed = project_from_generated(&p).expect("typed pipeline");
            let reference = coevo_corpus::project_from_texts(
                &p.raw.name,
                &p.git_log,
                &p.raw.ddl_versions,
                p.raw.dialect,
            )
            .map(|d| d.with_taxon(p.raw.taxon))
            .expect("corpus pipeline");
            assert_eq!(typed, reference, "{}", p.raw.name);
        }
    }

    #[test]
    fn inactive_versions_hit_the_parse_and_diff_caches() {
        let same = "CREATE TABLE t (a INT);".to_string();
        let item = WorkItem {
            index: 0,
            name: "x/y".into(),
            git_log: GOOD_LOG.to_string(),
            ddl_versions: vec![
                (dt("2020-01-01 00:00:00 +0000"), same.clone()),
                (dt("2020-02-01 00:00:00 +0000"), same.clone()),
                (dt("2020-03-01 00:00:00 +0000"), same),
                (dt("2020-04-01 00:00:00 +0000"), "CREATE TABLE t (a INT, b INT);".into()),
            ],
            dialect: Dialect::Generic,
            taxon: None,
        };
        let metrics = Metrics::new();
        process(&item, &TaxonomyConfig::default(), MatchPolicy::ByName, &metrics)
            .expect("pipeline");
        let snap = metrics.snapshot(1);
        let parse = snap.stage(Stage::Parse).unwrap();
        // Item accounting is unchanged: 1 git log + 4 versions.
        assert_eq!(parse.items, 5);
        // But only 2 distinct texts parsed; 2 lookups were cache hits.
        assert_eq!((parse.cache_hits, parse.cache_misses), (2, 2));
        let diff = snap.stage(Stage::Diff).unwrap();
        // Versions 2 and 3 short-circuit whole-version; version 4 diffs
        // table `t` for real. (The creation delta has no survivors.)
        assert_eq!((diff.cache_hits, diff.cache_misses), (2, 1));
    }

    #[test]
    fn corrupt_ddl_fails_at_parse_with_position() {
        let versions = vec![
            (dt("2020-01-01 00:00:00 +0000"), "CREATE TABLE t (a INT);".to_string()),
            (dt("2020-02-01 00:00:00 +0000"), "CREATE TABLE t (a INT".to_string()),
        ];
        let err = project_from_texts("x/y", GOOD_LOG, &versions, Dialect::Generic).unwrap_err();
        assert_eq!(err.stage, Stage::Parse);
        let EngineErrorKind::Ddl(parse) = &err.kind else {
            panic!("expected Ddl kind, got {:?}", err.kind)
        };
        assert!(parse.line >= 1);
        assert_eq!(err.project, "x/y");
    }

    #[test]
    fn truncated_git_log_fails_at_parse() {
        let versions =
            vec![(dt("2020-01-01 00:00:00 +0000"), "CREATE TABLE t (a INT);".to_string())];
        let err = project_from_texts(
            "x/y",
            "commit abcdef\nAuthor: A <a@b.c>\n",
            &versions,
            Dialect::Generic,
        )
        .unwrap_err();
        assert_eq!(err.stage, Stage::Parse);
        assert!(matches!(err.kind, EngineErrorKind::GitLog(_)));
    }

    #[test]
    fn empty_inputs_fail_with_empty_kind() {
        let err = project_from_texts("x/y", GOOD_LOG, &[], Dialect::Generic).unwrap_err();
        assert_eq!(err.stage, Stage::Diff);
        assert_eq!(err.kind, EngineErrorKind::Empty("schema history"));

        let merge_only = "commit abc\nMerge: 1 2\nAuthor: A <a@b.c>\nDate:   2020-01-01 00:00:00 +0000\n\n    Merge\n\n";
        let versions =
            vec![(dt("2020-01-01 00:00:00 +0000"), "CREATE TABLE t (a INT);".to_string())];
        let err =
            project_from_texts("x/y", merge_only, &versions, Dialect::Generic).unwrap_err();
        assert_eq!(err.stage, Stage::Heartbeat);
        assert_eq!(err.kind, EngineErrorKind::Empty("repository"));
    }
}
