//! The store-aware stage: consult the result store before running the
//! per-project pipeline, publish on miss.
//!
//! The stage wraps [`crate::pipeline::process`]. For every work item it
//! derives the item's [`InputDigest`] (history hash × vcs hash × config
//! hash — see `coevo_corpus::digest` and [`store_config_hash`]) and asks
//! the store:
//!
//! - **hit** — the verified entry is deserialized and returned; parse,
//!   diff, heartbeat and measure are skipped entirely;
//! - **miss / invalidated / quarantined** — the pipeline runs as usual and
//!   the fresh result is published back (best-effort: a failed publish is
//!   counted, never fatal).
//!
//! Because the digest covers every input byte and the configuration, a
//! changed project — or a changed configuration — can never be served a
//! stale result: it simply looks up a key that does not exist.

use crate::error::{EngineError, Stage};
use crate::metrics::{Metrics, StoreEvent};
use crate::pipeline::{process, WorkItem};
use coevo_core::{ProjectData, ProjectMeasures};
use coevo_ddl::fingerprint::Fnv1a;
use coevo_diff::MatchPolicy;
use coevo_store::{InputDigest, Lookup, ResultStore};
use coevo_taxa::TaxonomyConfig;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The serialized per-project result a store entry holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct StoredProjectResult {
    /// The measured project (heartbeats, taxon, birth activity).
    pub data: ProjectData,
    /// Its derived study measures.
    pub measures: ProjectMeasures,
}

/// A run's store handle plus the run-wide configuration hash.
#[derive(Debug)]
pub(crate) struct StoreContext {
    pub store: ResultStore,
    pub config_hash: u64,
}

impl StoreContext {
    /// The input digest of one work item under this run's configuration.
    pub fn digest(&self, item: &WorkItem) -> InputDigest {
        let history = coevo_corpus::digest::history_hash(
            &item.name,
            item.taxon.map(|t| t.slug()),
            item.dialect.name(),
            &item.ddl_versions,
        );
        let vcs = coevo_corpus::digest::vcs_hash(&item.git_log);
        InputDigest::new(history, vcs, self.config_hash)
    }
}

/// Hash everything configuration-side that feeds a result: the taxonomy
/// thresholds (canonical JSON), the column-matching policy of the diff
/// stage, the measure parameters baked into the pipeline (synchronicity
/// thetas, attainment alphas), and the store format version. Any change
/// produces different digests for *every* project — a config change is a
/// full miss, never a partial reuse.
pub(crate) fn store_config_hash(taxonomy: &TaxonomyConfig, policy: MatchPolicy) -> u64 {
    let mut h = Fnv1a::new();
    h.tag(0xC5);
    h.write_str(&serde_json::to_string(taxonomy).expect("taxonomy config serializes"));
    h.write_str(&policy.digest_tag());
    h.write_str(&format!("{:?}", [0.05f64, 0.10])); // synchronicity thetas
    h.write_str(&format!("{:?}", coevo_core::ATTAINMENT_ALPHAS));
    h.write_u64(u64::from(coevo_store::FORMAT_VERSION));
    h.finish().0
}

/// Run one work item through the store-aware pipeline: serve a verified hit,
/// otherwise compute and publish.
pub(crate) fn process_with_store(
    item: &WorkItem,
    cfg: &TaxonomyConfig,
    policy: MatchPolicy,
    metrics: &Metrics,
    ctx: &StoreContext,
) -> Result<(ProjectData, ProjectMeasures), EngineError> {
    let digest = ctx.digest(item);

    let t = Instant::now();
    let lookup = ctx.store.get::<StoredProjectResult>(&digest);
    metrics.record(Stage::Store, t.elapsed(), 1);
    match lookup {
        Lookup::Hit(stored) => {
            metrics.record_store(StoreEvent::Hit);
            metrics.record_cache(Stage::Store, 1, 0);
            return Ok((stored.data, stored.measures));
        }
        Lookup::Miss => metrics.record_store(StoreEvent::Miss),
        Lookup::Invalidated => metrics.record_store(StoreEvent::Invalidated),
        Lookup::Quarantined => metrics.record_store(StoreEvent::Quarantined),
    }
    metrics.record_cache(Stage::Store, 0, 1);

    let (data, measures) = process(item, cfg, policy, metrics)?;

    let t = Instant::now();
    let stored = StoredProjectResult { data, measures };
    match ctx.store.put(&digest, &stored) {
        Ok(()) => metrics.record_store(StoreEvent::Published),
        Err(_) => metrics.record_store(StoreEvent::PublishFailure),
    }
    metrics.record(Stage::Store, t.elapsed(), 0);
    Ok((stored.data, stored.measures))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::StoreMetrics;
    use coevo_ddl::Dialect;
    use coevo_heartbeat::DateTime;

    const GOOD_LOG: &str =
        "commit abc\nAuthor: A <a@b.c>\nDate:   2020-01-01 00:00:00 +0000\n\n    m\n\nM\tf\n";

    fn item(name: &str) -> WorkItem {
        WorkItem {
            index: 0,
            name: name.into(),
            git_log: GOOD_LOG.to_string(),
            ddl_versions: vec![
                (
                    DateTime::parse("2020-01-01 00:00:00 +0000").unwrap(),
                    "CREATE TABLE t (a INT);".into(),
                ),
                (
                    DateTime::parse("2020-02-01 00:00:00 +0000").unwrap(),
                    "CREATE TABLE t (a INT, b INT);".into(),
                ),
            ],
            dialect: Dialect::Generic,
            taxon: None,
        }
    }

    fn ctx(tag: &str) -> (std::path::PathBuf, StoreContext) {
        let dir = std::env::temp_dir()
            .join(format!("coevo_store_stage_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let config_hash = store_config_hash(&TaxonomyConfig::default(), MatchPolicy::ByName);
        (dir, StoreContext { store, config_hash })
    }

    fn snapshot_store(metrics: &Metrics) -> StoreMetrics {
        metrics.enable_store();
        metrics.snapshot(1).store.unwrap()
    }

    #[test]
    fn miss_computes_publishes_and_then_hits() {
        let (dir, ctx) = ctx("hit");
        let cfg = TaxonomyConfig::default();
        let it = item("g/p");

        let metrics = Metrics::new();
        let cold = process_with_store(&it, &cfg, MatchPolicy::ByName, &metrics, &ctx).unwrap();
        let s = snapshot_store(&metrics);
        assert_eq!((s.hits, s.misses, s.published), (0, 1, 1));

        let metrics = Metrics::new();
        let warm = process_with_store(&it, &cfg, MatchPolicy::ByName, &metrics, &ctx).unwrap();
        let s = snapshot_store(&metrics);
        assert_eq!((s.hits, s.misses, s.published), (1, 0, 0));
        assert_eq!(cold, warm);
        // Served from the store: the pipeline stages never ran.
        let snap = metrics.snapshot(1);
        assert_eq!(snap.stage(Stage::Parse).unwrap().items, 0);
        assert_eq!(snap.stage(Stage::Measure).unwrap().items, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stored_result_round_trips_exactly() {
        let (dir, ctx) = ctx("exact");
        let cfg = TaxonomyConfig::default();
        let it = item("g/p");
        let metrics = Metrics::new();
        let direct = process(&it, &cfg, MatchPolicy::ByName, &metrics).unwrap();
        let cold = process_with_store(&it, &cfg, MatchPolicy::ByName, &metrics, &ctx).unwrap();
        let warm = process_with_store(&it, &cfg, MatchPolicy::ByName, &metrics, &ctx).unwrap();
        assert_eq!(direct, cold);
        assert_eq!(direct, warm);
        // Byte-identical through serialization too.
        assert_eq!(
            serde_json::to_string(&direct.0).unwrap(),
            serde_json::to_string(&warm.0).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&direct.1).unwrap(),
            serde_json::to_string(&warm.1).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_change_is_a_full_miss() {
        let (dir, mut ctx) = ctx("config");
        let cfg = TaxonomyConfig::default();
        let it = item("g/p");
        let metrics = Metrics::new();
        process_with_store(&it, &cfg, MatchPolicy::ByName, &metrics, &ctx).unwrap();

        ctx.config_hash ^= 1; // a different configuration
        let metrics = Metrics::new();
        process_with_store(&it, &cfg, MatchPolicy::ByName, &metrics, &ctx).unwrap();
        let s = snapshot_store(&metrics);
        assert_eq!((s.hits, s.misses), (0, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_change_is_a_full_miss() {
        let (dir, mut ctx) = ctx("policy");
        let cfg = TaxonomyConfig::default();
        let it = item("g/p");
        let metrics = Metrics::new();
        process_with_store(&it, &cfg, MatchPolicy::ByName, &metrics, &ctx).unwrap();

        // The same project under rename detection must be a fresh key.
        let policy = MatchPolicy::rename_detection();
        ctx.config_hash = store_config_hash(&cfg, policy);
        let metrics = Metrics::new();
        process_with_store(&it, &cfg, policy, &metrics, &ctx).unwrap();
        let s = snapshot_store(&metrics);
        assert_eq!((s.hits, s.misses, s.published), (0, 1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn touched_input_is_a_miss_for_that_project_only() {
        let (dir, ctx) = ctx("touch");
        let cfg = TaxonomyConfig::default();
        let a = item("g/a");
        let mut b = item("g/b");
        let metrics = Metrics::new();
        process_with_store(&a, &cfg, MatchPolicy::ByName, &metrics, &ctx).unwrap();
        process_with_store(&b, &cfg, MatchPolicy::ByName, &metrics, &ctx).unwrap();

        // Touch one byte of b's history.
        b.ddl_versions.last_mut().unwrap().1.push('\n');
        let metrics = Metrics::new();
        process_with_store(&a, &cfg, MatchPolicy::ByName, &metrics, &ctx).unwrap();
        process_with_store(&b, &cfg, MatchPolicy::ByName, &metrics, &ctx).unwrap();
        let s = snapshot_store(&metrics);
        assert_eq!((s.hits, s.misses, s.published), (1, 1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pipeline_failure_is_not_published() {
        let (dir, ctx) = ctx("fail");
        let cfg = TaxonomyConfig::default();
        let mut it = item("g/p");
        it.ddl_versions[1].1 = "CREATE TABLE t (".into();
        let metrics = Metrics::new();
        assert!(process_with_store(&it, &cfg, MatchPolicy::ByName, &metrics, &ctx).is_err());
        let s = snapshot_store(&metrics);
        assert_eq!((s.misses, s.published, s.publish_failures), (1, 0, 0));
        assert_eq!(ctx.store.stats().unwrap().entries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_hash_tracks_taxonomy_and_policy() {
        let base = store_config_hash(&TaxonomyConfig::default(), MatchPolicy::ByName);
        assert_eq!(base, store_config_hash(&TaxonomyConfig::default(), MatchPolicy::ByName));
        let cfg = TaxonomyConfig { almost_frozen_max: 9, ..TaxonomyConfig::default() };
        assert_ne!(base, store_config_hash(&cfg, MatchPolicy::ByName));
        let aware = MatchPolicy::rename_detection();
        assert_ne!(base, store_config_hash(&TaxonomyConfig::default(), aware));
        // Distinct thresholds are distinct configurations.
        assert_ne!(
            store_config_hash(&TaxonomyConfig::default(), aware),
            store_config_hash(
                &TaxonomyConfig::default(),
                MatchPolicy::rename_detection_with(0.8)
            )
        );
    }
}
