//! Shard-batched streamed execution: the whole corpus→results data path at
//! O(shard) peak memory instead of O(corpus).
//!
//! [`StudyRunner::run_streamed`] runs the same staged pipeline as the eager
//! [`StudyRunner::run`], but admits projects in bounded batches — one shard
//! at a time for [`Source::Sharded`], [`DEFAULT_BATCH`]-sized (or
//! [`crate::StudyConfig::max_resident_projects`]-sized) chunks for the other
//! sources. Within a batch everything is unchanged: the same work-stealing
//! pool, the same per-stage metrics, the same result-store spill. Between
//! batches only two things survive:
//!
//! - the per-project **measures** (small — a handful of curves and scalars
//!   per project), folded into a [`MeasureFold`]; the heavyweight
//!   [`coevo_core::ProjectData`] (parsed histories, heartbeats) is dropped
//!   as soon as its batch's results are collected, which is the whole
//!   O(shard) claim;
//! - the structured **failures**.
//!
//! Batches run in global corpus order and results are collected in input
//! order within each batch, so the concatenated measure sequence is the
//! exact sequence the eager path produces — corpus aggregation over it is
//! byte-identical, which the differential tests and the `coevo check`
//! corpus oracle pin (including under seeded mid-shard failure injection).

use crate::error::{EngineError, EngineErrorKind, FailurePolicy, ProjectFailure, Stage};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::runner::{
    load_project_raw, open_corpus_stream, read_shard_lenient, work_item, Source, StudyRunner,
    DEFAULT_BATCH,
};
use coevo_core::{ProjectMeasures, StatsCache, StudyResults};
use coevo_corpus::{CorpusSpec, ProjectArtifacts};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Everything one streamed run produces. Unlike [`crate::EngineReport`]
/// there is no `projects` vector: retaining every project's parsed data is
/// exactly what streaming exists to avoid. Survivor count is
/// `results.measures.len()`.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedReport {
    /// The full study results computed from the surviving projects'
    /// measures, byte-identical to the eager path's.
    pub results: StudyResults,
    /// Projects demoted to structured failures, sorted by name.
    pub failures: Vec<ProjectFailure>,
    /// Per-stage observability counters (plus peak-memory readings).
    pub metrics: MetricsSnapshot,
}

/// Streaming corpus-level aggregation: per-project measures are *folded* in
/// as their batches complete, and [`MeasureFold::finish`] computes the
/// figures and Section-7 statistics once at the end — through the same
/// [`StatsCache`]-memoized path the incremental engine uses, so the outcome
/// is bit-identical to `StudyResults::from_measures` over the eagerly
/// collected vector.
#[derive(Debug, Default)]
pub struct MeasureFold {
    measures: Vec<ProjectMeasures>,
    cache: StatsCache,
}

impl MeasureFold {
    /// An empty fold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one project's measures (corpus order is the caller's
    /// responsibility — batches arrive in global order).
    pub fn push(&mut self, m: ProjectMeasures) {
        self.measures.push(m);
    }

    /// Measures folded so far.
    pub fn len(&self) -> usize {
        self.measures.len()
    }

    /// Whether nothing has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.measures.is_empty()
    }

    /// Compute the corpus-level results from everything folded in.
    pub fn finish(mut self) -> StudyResults {
        StudyResults::from_measures_cached(self.measures, &mut self.cache)
    }
}

impl StudyRunner {
    /// Run the full study over `source` with bounded peak memory: projects
    /// are admitted to the worker pool in batches (one shard at a time for
    /// [`Source::Sharded`]), their parsed data dropped once measured, and
    /// the corpus aggregation folded over the per-project measures.
    ///
    /// The output is pinned byte-identical to [`StudyRunner::run`] on the
    /// same source: same `results`, same `failures`. Error behavior matches
    /// too — only an unusable source (or store) is a hard error under
    /// [`FailurePolicy::CollectAndContinue`], while
    /// [`FailurePolicy::FailFast`] aborts on the first project failure.
    pub fn run_streamed(&self, source: Source) -> Result<StreamedReport, EngineError> {
        let metrics = Metrics::new();
        let store = self.open_store(&metrics)?;

        let mut batches = Batches::plan(source, self.batch_cap())?;
        let mut fold = MeasureFold::new();
        let mut failures: Vec<ProjectFailure> = Vec::new();
        let mut workers_used = 1;

        loop {
            // Load stage: materialize the next batch (generate, read a
            // shard, or slice the in-memory vector).
            let t = Instant::now();
            let Some(batch) = batches.next_batch() else { break };
            metrics.record(Stage::Load, t.elapsed(), batch.projects.len() as u64);
            failures.extend(batch.failures);
            if self.config().failure_policy == FailurePolicy::FailFast {
                if let Some(f) = failures.first() {
                    return Err(f.error.clone());
                }
            }

            // Per-project stages over the work-stealing pool, batch-local
            // indices (results come back in batch order, which is global
            // order because batches are planned in global order).
            let items: Vec<_> =
                batch.projects.into_iter().enumerate().map(|(i, p)| work_item(i, p)).collect();
            let workers = self.worker_count(items.len());
            workers_used = workers_used.max(workers);
            let slots = self.run_pool(items, workers, &metrics, store.as_ref());
            for slot in slots {
                match slot {
                    // ProjectData dropped here: only the measures outlive
                    // the batch.
                    Some(Ok((_data, m))) => fold.push(m),
                    Some(Err(e)) => {
                        if self.config().failure_policy == FailurePolicy::FailFast {
                            return Err(e);
                        }
                        failures.push(ProjectFailure::from(e));
                    }
                    // Skipped after a fail-fast abort; the triggering error
                    // returns via the arm above.
                    None => {}
                }
            }
        }
        failures.sort_by(|a, b| a.project.cmp(&b.project));

        // Stats stage: fold the accumulated measures into the corpus
        // results.
        let t = Instant::now();
        let results = fold.finish();
        metrics.record(Stage::Stats, t.elapsed(), 1);

        Ok(StreamedReport { results, failures, metrics: metrics.snapshot(workers_used) })
    }

    /// The per-batch project cap for non-sharded sources (and the sub-shard
    /// cap for sharded ones).
    fn batch_cap(&self) -> usize {
        match self.config().max_resident_projects {
            0 => DEFAULT_BATCH,
            n => n,
        }
    }
}

/// One admission batch: the projects to run plus any load failures found
/// while materializing them.
struct Batch {
    projects: Vec<ProjectArtifacts>,
    failures: Vec<ProjectFailure>,
}

/// The batch planner: a resumable cursor over a source, yielding projects
/// in global corpus order without ever materializing more than one batch
/// (plus, for sharded sources, the shard it is sliced from).
enum Batches {
    /// Generate `cap` projects at a time via `generate_nth`.
    Generated { spec: CorpusSpec, next: usize, total: usize, cap: usize },
    /// Read one shard at a time (shards visited by global `start` offset);
    /// a shard larger than `cap` is admitted in `cap`-sized slices.
    Sharded {
        stream: coevo_corpus::CorpusStream,
        entries: Vec<coevo_corpus::ShardEntry>,
        next_entry: usize,
        /// Unadmitted remainder of the currently open shard (global order).
        pending: Vec<ProjectArtifacts>,
        cap: usize,
    },
    /// Load `cap` project directories at a time, in manifest-name order
    /// (established by a cheap manifest-only pre-pass).
    OnDisk { dirs: Vec<PathBuf>, next: usize, pre_failures: Vec<ProjectFailure>, cap: usize },
    /// Slice the given vector `cap` projects at a time.
    InMemory { projects: std::vec::IntoIter<ProjectArtifacts>, cap: usize },
}

impl Batches {
    fn plan(source: Source, cap: usize) -> Result<Self, EngineError> {
        let cap = cap.max(1);
        match source {
            Source::GeneratedCorpus(seed) => {
                let mut spec = CorpusSpec::paper();
                spec.seed = seed;
                Ok(Self::generated(spec, cap))
            }
            Source::Spec(spec) => Ok(Self::generated(spec, cap)),
            Source::Sharded(dir) => {
                let stream = open_corpus_stream(&dir)?;
                let mut entries = stream.manifest().shards.clone();
                entries.sort_by_key(|e| e.start);
                Ok(Self::Sharded { stream, entries, next_entry: 0, pending: Vec::new(), cap })
            }
            Source::OnDisk(dir) => {
                let (dirs, pre_failures) = plan_on_disk(&dir)?;
                Ok(Self::OnDisk { dirs, next: 0, pre_failures, cap })
            }
            Source::InMemory(projects) => {
                Ok(Self::InMemory { projects: projects.into_iter(), cap })
            }
        }
    }

    fn generated(spec: CorpusSpec, cap: usize) -> Self {
        let total = spec.taxa.iter().map(|t| t.count).sum();
        Self::Generated { spec, next: 0, total, cap }
    }

    /// The next batch, or `None` when the source is exhausted.
    fn next_batch(&mut self) -> Option<Batch> {
        match self {
            Self::Generated { spec, next, total, cap } => {
                if next == total {
                    return None;
                }
                let end = (*next + *cap).min(*total);
                let projects = (*next..end)
                    .map(|i| {
                        ProjectArtifacts::from(
                            coevo_corpus::generate_nth(spec, i).expect("index < total"),
                        )
                    })
                    .collect();
                *next = end;
                Some(Batch { projects, failures: Vec::new() })
            }
            Self::Sharded { stream, entries, next_entry, pending, cap } => {
                let mut failures = Vec::new();
                while pending.is_empty() {
                    if *next_entry == entries.len() {
                        if failures.is_empty() {
                            return None;
                        }
                        // A trailing shard produced only failures.
                        return Some(Batch { projects: Vec::new(), failures });
                    }
                    let entry = &entries[*next_entry];
                    *next_entry += 1;
                    let (projects, fails) = read_shard_lenient(stream, entry);
                    failures.extend(fails);
                    *pending = projects;
                }
                // Admit at most `cap` of the open shard; keep the rest
                // (still O(shard)) for the next call.
                let take = (*cap).min(pending.len());
                let rest = pending.split_off(take);
                let projects = std::mem::replace(pending, rest);
                Some(Batch { projects, failures })
            }
            Self::OnDisk { dirs, next, pre_failures, cap } => {
                let mut failures = std::mem::take(pre_failures);
                let mut projects = Vec::new();
                while projects.len() < *cap && *next < dirs.len() {
                    let pdir = &dirs[*next];
                    *next += 1;
                    let fallback_name = pdir
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_else(|| pdir.display().to_string());
                    match load_project_raw(pdir) {
                        Ok((name, git_log, ddl_versions, dialect, taxon)) => {
                            projects.push(ProjectArtifacts {
                                name,
                                taxon,
                                dialect,
                                ddl_versions,
                                git_log,
                            })
                        }
                        Err(kind) => failures.push(ProjectFailure::from(EngineError {
                            project: fallback_name,
                            stage: Stage::Load,
                            kind,
                        })),
                    }
                }
                if projects.is_empty() && failures.is_empty() {
                    return None;
                }
                Some(Batch { projects, failures })
            }
            Self::InMemory { projects, cap } => {
                let batch: Vec<_> = projects.take(*cap).collect();
                if batch.is_empty() {
                    return None;
                }
                Some(Batch { projects: batch, failures: Vec::new() })
            }
        }
    }
}

/// The on-disk pre-pass: find every project directory and order them by
/// *manifest* name (the eager path loads everything and then sorts by name;
/// sorting up front from a manifest-only read reproduces that order without
/// holding any version texts). Directories whose manifest cannot be read
/// become load failures here, with the same error text the eager path's
/// full load produces for them.
#[allow(clippy::type_complexity)]
fn plan_on_disk(dir: &Path) -> Result<(Vec<PathBuf>, Vec<ProjectFailure>), EngineError> {
    let entries = std::fs::read_dir(dir).map_err(|e| EngineError {
        project: dir.display().to_string(),
        stage: Stage::Load,
        kind: EngineErrorKind::Load(format!("unreadable corpus directory: {e}")),
    })?;
    let mut project_dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join("manifest.json").exists())
        .collect();
    project_dirs.sort();

    let mut named: Vec<(String, PathBuf)> = Vec::new();
    let mut failures = Vec::new();
    for pdir in project_dirs {
        let fallback_name = pdir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| pdir.display().to_string());
        let manifest = std::fs::read_to_string(pdir.join("manifest.json"))
            .map_err(|e| EngineErrorKind::Load(format!("manifest.json: {e}")))
            .and_then(|text| {
                coevo_corpus::loader::manifest_from_json(&text)
                    .map_err(|e| EngineErrorKind::Load(e.to_string()))
            });
        match manifest {
            Ok(m) => named.push((m.name, pdir)),
            Err(kind) => failures.push(ProjectFailure::from(EngineError {
                project: fallback_name,
                stage: Stage::Load,
                kind,
            })),
        }
    }
    // Stable sort by manifest name: equal names keep directory order, the
    // same tiebreak the eager path's stable sort applies.
    named.sort_by(|a, b| a.0.cmp(&b.0));
    Ok((named.into_iter().map(|(_, p)| p).collect(), failures))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::StudyConfig;
    use coevo_corpus::generate_sharded;
    use std::path::PathBuf;

    fn small_spec(per_taxon: usize) -> CorpusSpec {
        CorpusSpec::paper().with_per_taxon(per_taxon)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("coevo_streamed_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn streamed_spec_equals_eager_run() {
        let spec = small_spec(2);
        let runner = StudyRunner::new(StudyConfig::default()).with_max_resident(5);
        let eager = runner.run(Source::Spec(spec.clone())).expect("eager");
        let streamed = runner.run_streamed(Source::Spec(spec)).expect("streamed");
        assert_eq!(streamed.results, eager.results);
        assert_eq!(streamed.failures, eager.failures);
    }

    #[test]
    fn streamed_sharded_equals_eager_sharded_and_generated() {
        let dir = tmpdir("shardeq");
        let spec = small_spec(2); // 12 projects
        generate_sharded(&dir, &spec, 5).unwrap();
        let runner = StudyRunner::new(StudyConfig::default()).with_workers(2);

        let generated = runner.run(Source::Spec(spec)).expect("generated");
        let eager = runner.run(Source::Sharded(dir.clone())).expect("eager sharded");
        let streamed =
            runner.run_streamed(Source::Sharded(dir.clone())).expect("streamed sharded");

        assert_eq!(eager.results, generated.results);
        assert_eq!(streamed.results, eager.results);
        assert!(streamed.failures.is_empty());
        // Sub-shard admission (cap 2 < shard 5) changes nothing.
        let capped = runner
            .with_max_resident(2)
            .run_streamed(Source::Sharded(dir.clone()))
            .expect("capped streamed");
        assert_eq!(capped.results, eager.results);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streamed_in_memory_and_on_disk_equal_eager() {
        let spec = small_spec(1);
        let projects: Vec<ProjectArtifacts> = coevo_corpus::generate_corpus(&spec)
            .iter()
            .map(ProjectArtifacts::from_generated)
            .collect();
        let runner = StudyRunner::new(StudyConfig::default()).with_max_resident(2);

        let eager = runner.run(Source::InMemory(projects.clone())).expect("eager");
        let streamed =
            runner.run_streamed(Source::InMemory(projects.clone())).expect("streamed");
        assert_eq!(streamed.results, eager.results);

        // On-disk: save in the loader layout, then compare both paths.
        let dir = tmpdir("ondisk");
        for (i, p) in coevo_corpus::generate_corpus(&spec).iter().enumerate() {
            coevo_corpus::loader::save_project(&dir.join(format!("p{i}")), p).unwrap();
        }
        let eager = runner.run(Source::OnDisk(dir.clone())).expect("eager on-disk");
        let streamed =
            runner.run_streamed(Source::OnDisk(dir.clone())).expect("streamed on-disk");
        assert_eq!(streamed.results, eager.results);
        assert_eq!(streamed.failures, eager.failures);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_fails_that_project_in_both_paths() {
        let dir = tmpdir("corrupt");
        let spec = small_spec(1); // 6 projects
        let manifest = generate_sharded(&dir, &spec, 3).unwrap();
        // Break record 1 of shard 0 (byte right after its length prefix is
        // somewhere past the first record; easiest reliable corruption: the
        // first byte of the first record's payload).
        let path = dir.join(&manifest.shards[0].file);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8 + 4 + 4] = b'!';
        std::fs::write(&path, &bytes).unwrap();

        let runner = StudyRunner::new(StudyConfig::default());
        let eager = runner.run(Source::Sharded(dir.clone())).expect("eager");
        let streamed = runner.run_streamed(Source::Sharded(dir.clone())).expect("streamed");
        assert_eq!(eager.failures.len(), 1);
        assert!(eager.failures[0].project.contains("[record 0]"), "{:?}", eager.failures);
        assert_eq!(streamed.failures, eager.failures);
        assert_eq!(streamed.results, eager.results);
        assert_eq!(streamed.results.measures.len(), 5);

        // FailFast surfaces the load failure as a hard error.
        let err = runner
            .clone()
            .with_failure_policy(FailurePolicy::FailFast)
            .run_streamed(Source::Sharded(dir.clone()))
            .unwrap_err();
        assert_eq!(err.stage, Stage::Load);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_sharded_corpus_is_a_hard_error() {
        let runner = StudyRunner::new(StudyConfig::default());
        let err = runner
            .run_streamed(Source::Sharded(PathBuf::from("/nonexistent_coevo_shards")))
            .unwrap_err();
        assert_eq!(err.stage, Stage::Load);
        assert!(matches!(err.kind, EngineErrorKind::Load(_)));
        // Same for the eager path over the same source.
        let err2 = runner
            .run(Source::Sharded(PathBuf::from("/nonexistent_coevo_shards")))
            .unwrap_err();
        assert_eq!(err2.kind, err.kind);
    }

    #[test]
    fn empty_sources_yield_empty_studies() {
        let runner = StudyRunner::new(StudyConfig::default());
        let streamed = runner.run_streamed(Source::InMemory(Vec::new())).expect("empty");
        assert_eq!(streamed.results.measures.len(), 0);
        assert!(streamed.failures.is_empty());
    }

    #[test]
    fn measure_fold_matches_direct_aggregation() {
        let spec = small_spec(1);
        let runner = StudyRunner::new(StudyConfig::default());
        let eager = runner.run(Source::Spec(spec)).expect("eager");
        let mut fold = MeasureFold::new();
        assert!(fold.is_empty());
        for m in eager.results.measures.clone() {
            fold.push(m);
        }
        assert_eq!(fold.len(), 6);
        assert_eq!(fold.finish(), eager.results);
    }

    #[test]
    fn store_spill_serves_streamed_reruns() {
        let store_dir = tmpdir("store");
        let corpus_dir = tmpdir("storecorpus");
        let spec = small_spec(1);
        generate_sharded(&corpus_dir, &spec, 2).unwrap();
        let runner = StudyRunner::new(StudyConfig::default()).with_store(&store_dir);

        let cold = runner.run_streamed(Source::Sharded(corpus_dir.clone())).expect("cold");
        let s = cold.metrics.store.expect("store metrics");
        assert_eq!((s.hits, s.misses, s.published), (0, 6, 6));

        let warm = runner.run_streamed(Source::Sharded(corpus_dir.clone())).expect("warm");
        let s = warm.metrics.store.expect("store metrics");
        assert_eq!((s.hits, s.misses, s.published), (6, 0, 0));
        assert_eq!(warm.results, cold.results);
        let _ = std::fs::remove_dir_all(&store_dir);
        let _ = std::fs::remove_dir_all(&corpus_dir);
    }
}
