//! Constraint-level diffing: foreign keys and secondary indexes.
//!
//! The paper's Total Activity counts only attribute-level change; constraint
//! churn is *informational* — it never feeds the heartbeats — but a library
//! user replaying or reviewing a schema change wants to see it. Constraints
//! are matched structurally (by their column sets and targets), not by name:
//! real dumps rename constraints freely (`fk_1` → `orders_customer_fk`)
//! without changing meaning.

use coevo_ddl::{ForeignKey, IndexDef, Schema};
use serde::{Deserialize, Serialize};

/// One foreign-key change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ForeignKeyChange {
    /// Present only in the new version of the table.
    Added {
        /// The owning table.
        table: String,
        /// The foreign key definition.
        fk: ForeignKey,
    },
    /// Present only in the old version of the table.
    Removed {
        /// The owning table.
        table: String,
        /// The foreign key definition.
        fk: ForeignKey,
    },
}

/// One secondary-index change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IndexChange {
    /// Present only in the new version of the table.
    Added {
        /// The owning table.
        table: String,
        /// The index definition.
        index: IndexDef,
    },
    /// Present only in the old version of the table.
    Removed {
        /// The owning table.
        table: String,
        /// The index definition.
        index: IndexDef,
    },
}

/// Constraint-level delta between two schema versions (surviving tables
/// only — constraints of created/dropped tables ride along with the table).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConstraintDelta {
    /// Foreign keys gained or lost by surviving tables.
    pub foreign_keys: Vec<ForeignKeyChange>,
    /// Secondary indexes gained or lost by surviving tables.
    pub indexes: Vec<IndexChange>,
}

impl ConstraintDelta {
    /// True when no constraint changed.
    pub fn is_empty(&self) -> bool {
        self.foreign_keys.is_empty() && self.indexes.is_empty()
    }
}

/// Structural identity of a foreign key: columns, target table, target
/// columns (lowercased); names and actions are ignored.
fn fk_signature(fk: &ForeignKey) -> (Vec<String>, String, Vec<String>) {
    (
        fk.columns.iter().map(|c| c.to_ascii_lowercase()).collect(),
        fk.foreign_table.to_ascii_lowercase(),
        fk.foreign_columns.iter().map(|c| c.to_ascii_lowercase()).collect(),
    )
}

/// Structural identity of an index: uniqueness and its column list.
fn index_signature(idx: &IndexDef) -> (bool, Vec<String>) {
    (idx.unique, idx.columns.iter().map(|c| c.to_ascii_lowercase()).collect())
}

/// Diff the constraints of surviving tables between two schema versions.
pub fn diff_constraints(old: &Schema, new: &Schema) -> ConstraintDelta {
    let mut delta = ConstraintDelta::default();
    for old_table in &old.tables {
        let Some(new_table) = new.table(&old_table.name) else {
            continue; // dropped table: not reported here
        };
        let old_fks: Vec<&ForeignKey> = old_table.foreign_keys().collect();
        let new_fks: Vec<&ForeignKey> = new_table.foreign_keys().collect();
        for fk in &old_fks {
            if !new_fks.iter().any(|n| fk_signature(n) == fk_signature(fk)) {
                delta.foreign_keys.push(ForeignKeyChange::Removed {
                    table: new_table.name.to_string(),
                    fk: (*fk).clone(),
                });
            }
        }
        for fk in &new_fks {
            if !old_fks.iter().any(|o| fk_signature(o) == fk_signature(fk)) {
                delta.foreign_keys.push(ForeignKeyChange::Added {
                    table: new_table.name.to_string(),
                    fk: (*fk).clone(),
                });
            }
        }
        for idx in &old_table.indexes {
            if !new_table.indexes.iter().any(|n| index_signature(n) == index_signature(idx)) {
                delta.indexes.push(IndexChange::Removed {
                    table: new_table.name.to_string(),
                    index: idx.clone(),
                });
            }
        }
        for idx in &new_table.indexes {
            if !old_table.indexes.iter().any(|o| index_signature(o) == index_signature(idx)) {
                delta.indexes.push(IndexChange::Added {
                    table: new_table.name.to_string(),
                    index: idx.clone(),
                });
            }
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use coevo_ddl::{parse_schema, Dialect};

    fn schema(sql: &str) -> Schema {
        parse_schema(sql, Dialect::Generic).unwrap()
    }

    #[test]
    fn fk_added_and_removed() {
        let old = schema(
            "CREATE TABLE orders (id INT, cid INT,
                CONSTRAINT fk1 FOREIGN KEY (cid) REFERENCES customers (id));
             CREATE TABLE customers (id INT);",
        );
        let new = schema(
            "CREATE TABLE orders (id INT, cid INT, wid INT,
                CONSTRAINT fk2 FOREIGN KEY (wid) REFERENCES warehouses (id));
             CREATE TABLE customers (id INT);",
        );
        let d = diff_constraints(&old, &new);
        assert_eq!(d.foreign_keys.len(), 2);
        assert!(matches!(
            &d.foreign_keys[0],
            ForeignKeyChange::Removed { fk, .. } if fk.foreign_table == "customers"
        ));
        assert!(matches!(
            &d.foreign_keys[1],
            ForeignKeyChange::Added { fk, .. } if fk.foreign_table == "warehouses"
        ));
    }

    #[test]
    fn renamed_constraint_is_not_a_change() {
        let old = schema(
            "CREATE TABLE o (id INT, cid INT,
                CONSTRAINT fk_1 FOREIGN KEY (cid) REFERENCES c (id));",
        );
        let new = schema(
            "CREATE TABLE o (id INT, cid INT,
                CONSTRAINT orders_customer_fk FOREIGN KEY (cid) REFERENCES c (id));",
        );
        assert!(diff_constraints(&old, &new).is_empty());
    }

    #[test]
    fn index_changes_by_structure() {
        let old = schema("CREATE TABLE t (a INT, b INT, KEY i1 (a));");
        let new = schema("CREATE TABLE t (a INT, b INT, KEY i1 (a, b));");
        let d = diff_constraints(&old, &new);
        assert_eq!(d.indexes.len(), 2); // (a) removed, (a, b) added
    }

    #[test]
    fn uniqueness_flip_is_a_change() {
        let old = schema("CREATE TABLE t (a INT); CREATE INDEX i ON t (a);");
        let new = schema("CREATE TABLE t (a INT); CREATE UNIQUE INDEX i ON t (a);");
        let d = diff_constraints(&old, &new);
        assert_eq!(d.indexes.len(), 2);
    }

    #[test]
    fn dropped_table_constraints_not_reported() {
        let old =
            schema("CREATE TABLE gone (a INT, CONSTRAINT f FOREIGN KEY (a) REFERENCES x (y));");
        let new = Schema::new();
        assert!(diff_constraints(&old, &new).is_empty());
    }

    #[test]
    fn identical_schemas_empty() {
        let s = schema(
            "CREATE TABLE t (a INT, KEY k (a),
                CONSTRAINT f FOREIGN KEY (a) REFERENCES u (b));",
        );
        assert!(diff_constraints(&s, &s).is_empty());
    }
}
