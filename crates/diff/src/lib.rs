//! # coevo-diff — schema diff engine
//!
//! Pairwise comparison of schema versions, producing the attribute-level
//! change categories whose sum is the paper's central measure, **Total
//! Activity**:
//!
//! - attributes **born with** a new table;
//! - attributes **injected** into an existing table;
//! - attributes **deleted with** a removed table;
//! - attributes **ejected** from a surviving table;
//! - attributes with a **changed data type**;
//! - attributes with changed **primary-key participation**.
//!
//! On top of the single-step diff, [`SchemaHistory`] turns a sequence of
//! dated DDL versions into the per-commit delta sequence and the **Schema
//! (Monthly) Heartbeat** consumed by the co-evolution analysis.
//!
//! ```
//! use coevo_ddl::{parse_schema, Dialect};
//! use coevo_diff::diff_schemas;
//!
//! let v1 = parse_schema("CREATE TABLE t (a INT, b INT);", Dialect::Generic).unwrap();
//! let v2 = parse_schema("CREATE TABLE t (a BIGINT, c INT);", Dialect::Generic).unwrap();
//! let delta = diff_schemas(&v1, &v2);
//! let acts = delta.breakdown();
//! assert_eq!(acts.attrs_injected, 1);     // c
//! assert_eq!(acts.attrs_ejected, 1);      // b
//! assert_eq!(acts.attrs_type_changed, 1); // a: INT → BIGINT
//! assert_eq!(acts.total(), 3);
//! ```

#![warn(missing_docs)]

pub mod activity;
pub mod changes;
pub mod constraint_diff;
pub mod growth;
pub mod history;
pub mod localization;
pub mod rename;
pub mod schema_diff;
pub mod smo;
pub mod table_diff;

pub use activity::ActivityBreakdown;
pub use changes::{AttributeChange, SchemaDelta, TableDelta, TableFate};
pub use constraint_diff::{diff_constraints, ConstraintDelta, ForeignKeyChange, IndexChange};
pub use growth::{net_growth, schema_size_series, SizePoint};
pub use history::{DiffMode, SchemaHistory, SchemaVersion, VersionDelta};
pub use localization::{change_localization, gini_coefficient, ChangeLocalization};
pub use rename::{
    bigram_dice, jaro_winkler, pair_renames, rename_score, type_transition, RenameField,
    TypeTransition, DEFAULT_RENAME_THRESHOLD,
};
pub use schema_diff::{
    diff_schemas, diff_schemas_counted, diff_schemas_legacy, diff_schemas_with, DiffStats,
    MatchPolicy,
};
pub use smo::{delta_to_smos, Smo};
pub use table_diff::{diff_tables, diff_tables_legacy};
