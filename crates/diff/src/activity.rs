//! The six activity counters and Total Activity.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// `skip_serializing_if` predicate: the rename counter is only written when
/// rename detection actually fired, so by-name breakdowns serialize to the
/// same bytes they did before the seventh category existed.
fn is_zero(n: &u64) -> bool {
    *n == 0
}

/// Counts of attribute-level changes between two schema versions, in the six
/// categories of the Schema_Evo_2019 dataset. Their sum is **Total
/// Activity** — "the central measure that we will use to trace the amount of
/// evolution the schema undergoes."
///
/// Under `MatchPolicy::RenameDetection` a seventh category appears:
/// [`attrs_renamed`](ActivityBreakdown::attrs_renamed) counts each detected
/// rename as **one** unit where by-name matching counts an eject plus an
/// inject (two units), so rename-aware Total Activity is never above the
/// paper's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ActivityBreakdown {
    /// Attributes born with a new table.
    pub attrs_born_with_table: u64,
    /// Attributes injected into an existing table.
    pub attrs_injected: u64,
    /// Attributes deleted with a removed table.
    pub attrs_deleted_with_table: u64,
    /// Attributes ejected from a surviving table.
    pub attrs_ejected: u64,
    /// Attributes whose data type changed.
    pub attrs_type_changed: u64,
    /// Attributes whose participation in the primary key changed.
    pub attrs_key_changed: u64,
    /// Attributes recognized as renamed (rename detection only; always zero
    /// under the paper's by-name matching, and then absent from JSON so
    /// by-name serializations are byte-identical to the six-field form).
    #[serde(default, skip_serializing_if = "is_zero")]
    pub attrs_renamed: u64,
}

impl ActivityBreakdown {
    /// Total Activity: the sum of all categories (the paper's six, plus
    /// detected renames when rename detection is on).
    pub fn total(&self) -> u64 {
        self.attrs_born_with_table
            + self.attrs_injected
            + self.attrs_deleted_with_table
            + self.attrs_ejected
            + self.attrs_type_changed
            + self.attrs_key_changed
            + self.attrs_renamed
    }

    /// True when no change at the logical level occurred (the paper's
    /// "inactive" commits — versions that differ only in comments,
    /// formatting, or non-logical detail).
    pub fn is_zero(&self) -> bool {
        self.total() == 0
    }

    /// Growth-oriented activity (births + injections).
    pub fn additions(&self) -> u64 {
        self.attrs_born_with_table + self.attrs_injected
    }

    /// Shrink-oriented activity (deletions + ejections).
    pub fn removals(&self) -> u64 {
        self.attrs_deleted_with_table + self.attrs_ejected
    }

    /// In-place maintenance (type + key changes, plus detected renames — a
    /// rename keeps the attribute alive and changes it in place).
    pub fn updates(&self) -> u64 {
        self.attrs_type_changed + self.attrs_key_changed + self.attrs_renamed
    }
}

impl Add for ActivityBreakdown {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self {
            attrs_born_with_table: self.attrs_born_with_table + rhs.attrs_born_with_table,
            attrs_injected: self.attrs_injected + rhs.attrs_injected,
            attrs_deleted_with_table: self.attrs_deleted_with_table
                + rhs.attrs_deleted_with_table,
            attrs_ejected: self.attrs_ejected + rhs.attrs_ejected,
            attrs_type_changed: self.attrs_type_changed + rhs.attrs_type_changed,
            attrs_key_changed: self.attrs_key_changed + rhs.attrs_key_changed,
            attrs_renamed: self.attrs_renamed + rhs.attrs_renamed,
        }
    }
}

impl AddAssign for ActivityBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for ActivityBreakdown {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ActivityBreakdown {
        ActivityBreakdown {
            attrs_born_with_table: 1,
            attrs_injected: 2,
            attrs_deleted_with_table: 3,
            attrs_ejected: 4,
            attrs_type_changed: 5,
            attrs_key_changed: 6,
            attrs_renamed: 0,
        }
    }

    #[test]
    fn total_sums_all_six() {
        assert_eq!(sample().total(), 21);
        assert_eq!(ActivityBreakdown::default().total(), 0);
        assert!(ActivityBreakdown::default().is_zero());
        assert!(!sample().is_zero());
    }

    #[test]
    fn renames_count_in_total_and_updates() {
        let s = ActivityBreakdown { attrs_renamed: 7, ..sample() };
        assert_eq!(s.total(), 28);
        assert_eq!(s.updates(), 18);
        assert_eq!(s.additions() + s.removals() + s.updates(), s.total());
    }

    #[test]
    fn category_groupings() {
        let s = sample();
        assert_eq!(s.additions(), 3);
        assert_eq!(s.removals(), 7);
        assert_eq!(s.updates(), 11);
        assert_eq!(s.additions() + s.removals() + s.updates(), s.total());
    }

    #[test]
    fn add_and_sum() {
        let two = sample() + sample();
        assert_eq!(two.total(), 42);
        let summed: ActivityBreakdown = vec![sample(), sample(), sample()].into_iter().sum();
        assert_eq!(summed.total(), 63);
        let mut acc = ActivityBreakdown::default();
        acc += sample();
        assert_eq!(acc, sample());
        let lifted = sample() + ActivityBreakdown { attrs_renamed: 2, ..Default::default() };
        assert_eq!(lifted.attrs_renamed, 2);
    }

    #[test]
    fn zero_rename_field_is_absent_from_json() {
        // By-name serializations must be byte-identical to the six-field
        // form — the store round-trips entries through JSON.
        let json = serde_json::to_string(&sample()).unwrap();
        assert!(!json.contains("attrs_renamed"), "{json}");
        let with =
            serde_json::to_string(&ActivityBreakdown { attrs_renamed: 1, ..sample() }).unwrap();
        assert!(with.contains("\"attrs_renamed\":1"), "{with}");
        let back: ActivityBreakdown = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sample());
        let back: ActivityBreakdown = serde_json::from_str(&with).unwrap();
        assert_eq!(back.attrs_renamed, 1);
    }
}
