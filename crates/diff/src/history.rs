//! Schema histories: from a sequence of dated DDL versions to the per-commit
//! delta sequence and the Schema (Monthly) Heartbeat.

use crate::activity::ActivityBreakdown;
use crate::changes::SchemaDelta;
use crate::schema_diff::{diff_schemas_with, MatchPolicy};
use coevo_ddl::{parse_schema, Dialect, ParseError, Schema};
use coevo_heartbeat::{DateTime, Heartbeat};
use serde::{Deserialize, Serialize};

/// One version of the schema DDL file: the commit date and the parsed schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaVersion {
    /// The commit timestamp.
    pub date: DateTime,
    /// The schema.
    pub schema: Schema,
}

/// The delta between two consecutive versions, with its date (the date of
/// the *newer* version — the commit that introduced the change).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionDelta {
    /// The commit timestamp.
    pub date: DateTime,
    /// The delta.
    pub delta: SchemaDelta,
    /// The breakdown.
    pub breakdown: ActivityBreakdown,
}

/// A full schema history: versions ordered by date, plus the derived deltas.
///
/// Version 0 (the creation of the DDL file) contributes its entire content
/// as activity — every attribute of the initial schema is *born with* its
/// table, matching the dataset's accounting where the initial commit carries
/// the initial schema size as activity. This is what makes "48% of change at
/// start-up" (the paper's case study) representable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaHistory {
    versions: Vec<SchemaVersion>,
    deltas: Vec<VersionDelta>,
}

impl SchemaHistory {
    /// Build a history from dated, already-parsed schemas. Versions are
    /// sorted by date. Returns `None` when `versions` is empty.
    pub fn from_schemas(mut versions: Vec<SchemaVersion>, policy: MatchPolicy) -> Option<Self> {
        if versions.is_empty() {
            return None;
        }
        versions.sort_by_key(|v| v.date.unix_seconds());
        let empty = Schema::new();
        let mut deltas = Vec::with_capacity(versions.len());
        let mut prev = &empty;
        for v in &versions {
            let delta = diff_schemas_with(prev, &v.schema, policy);
            let breakdown = delta.breakdown();
            deltas.push(VersionDelta { date: v.date, delta, breakdown });
            prev = &v.schema;
        }
        Some(Self { versions, deltas })
    }

    /// Build a history from dated DDL texts, parsing each version.
    pub fn from_ddl_texts<'a, I>(texts: I, dialect: Dialect) -> Result<Option<Self>, ParseError>
    where
        I: IntoIterator<Item = (DateTime, &'a str)>,
    {
        let mut versions = Vec::new();
        for (date, sql) in texts {
            versions.push(SchemaVersion { date, schema: parse_schema(sql, dialect)? });
        }
        Ok(Self::from_schemas(versions, MatchPolicy::ByName))
    }

    /// The versions, oldest first.
    pub fn versions(&self) -> &[SchemaVersion] {
        &self.versions
    }

    /// The per-commit deltas, oldest first. `deltas()[0]` is the creation
    /// delta (everything born).
    pub fn deltas(&self) -> &[VersionDelta] {
        &self.deltas
    }

    /// Number of commits to the DDL file.
    pub fn commits(&self) -> usize {
        self.versions.len()
    }

    /// Number of *active* commits: those whose delta carries non-zero
    /// activity (the paper's case study distinguishes 13 schema commits from
    /// 9 active ones).
    pub fn active_commits(&self) -> usize {
        self.deltas.iter().filter(|d| !d.breakdown.is_zero()).count()
    }

    /// Total Activity accumulated over the whole history.
    pub fn total_activity(&self) -> u64 {
        self.deltas.iter().map(|d| d.breakdown.total()).sum()
    }

    /// Aggregate breakdown over the whole history.
    pub fn total_breakdown(&self) -> ActivityBreakdown {
        self.deltas.iter().map(|d| d.breakdown).sum()
    }

    /// The **Schema (Monthly) Heartbeat**: Total Activity per month.
    pub fn heartbeat(&self) -> Heartbeat {
        Heartbeat::from_events(
            self.deltas.iter().map(|d| (d.date.date, d.breakdown.total())),
        )
        .expect("history has at least one version")
    }

    /// The final schema (last version).
    pub fn final_schema(&self) -> &Schema {
        &self.versions.last().expect("non-empty history").schema
    }

    /// The initial schema (first version).
    pub fn initial_schema(&self) -> &Schema {
        &self.versions.first().expect("non-empty history").schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dt(s: &str) -> DateTime {
        DateTime::parse(s).unwrap()
    }

    fn history(texts: &[(&str, &str)]) -> SchemaHistory {
        SchemaHistory::from_ddl_texts(
            texts.iter().map(|(d, sql)| (dt(d), *sql)),
            Dialect::Generic,
        )
        .unwrap()
        .unwrap()
    }

    #[test]
    fn initial_version_is_all_births() {
        let h = history(&[("2015-01-01 10:00:00 +0000", "CREATE TABLE t (a INT, b INT);")]);
        assert_eq!(h.commits(), 1);
        assert_eq!(h.total_activity(), 2);
        assert_eq!(h.total_breakdown().attrs_born_with_table, 2);
    }

    #[test]
    fn multi_version_history() {
        let h = history(&[
            ("2015-01-01 10:00:00 +0000", "CREATE TABLE t (a INT);"),
            ("2015-02-01 10:00:00 +0000", "CREATE TABLE t (a INT, b INT);"),
            ("2015-02-15 10:00:00 +0000", "CREATE TABLE t (a INT, b INT);"), // inactive
            ("2015-04-01 10:00:00 +0000", "CREATE TABLE t (a BIGINT, b INT);"),
        ]);
        assert_eq!(h.commits(), 4);
        assert_eq!(h.active_commits(), 3);
        assert_eq!(h.total_activity(), 3); // 1 + 1 + 0 + 1 per version
        let hb = h.heartbeat();
        assert_eq!(hb.activity(), &[1, 1, 0, 1]); // Jan, Feb, Mar, Apr
    }

    #[test]
    fn versions_sorted_by_date() {
        let h = history(&[
            ("2015-03-01 10:00:00 +0000", "CREATE TABLE t (a INT, b INT);"),
            ("2015-01-01 10:00:00 +0000", "CREATE TABLE t (a INT);"),
        ]);
        assert_eq!(h.versions()[0].date.date.month, 1);
        assert_eq!(h.initial_schema().attribute_count(), 1);
        assert_eq!(h.final_schema().attribute_count(), 2);
        // Sorted: creation (1 attr born) then injection of b.
        assert_eq!(h.total_activity(), 2);
    }

    #[test]
    fn empty_history_is_none() {
        assert!(SchemaHistory::from_schemas(vec![], MatchPolicy::ByName).is_none());
    }

    #[test]
    fn parse_errors_propagate() {
        let r = SchemaHistory::from_ddl_texts(
            vec![(dt("2015-01-01 10:00:00 +0000"), "CREATE TABLE t (a INT")],
            Dialect::Generic,
        );
        assert!(r.is_err());
    }

    #[test]
    fn table_lifecycle_across_versions() {
        let h = history(&[
            ("2015-01-01 10:00:00 +0000", "CREATE TABLE a (x INT);"),
            ("2015-02-01 10:00:00 +0000", "CREATE TABLE a (x INT); CREATE TABLE b (y INT, z INT);"),
            ("2015-03-01 10:00:00 +0000", "CREATE TABLE a (x INT);"),
        ]);
        let total = h.total_breakdown();
        assert_eq!(total.attrs_born_with_table, 1 + 2);
        assert_eq!(total.attrs_deleted_with_table, 2);
        assert_eq!(h.total_activity(), 5);
    }

    #[test]
    fn heartbeat_total_equals_history_total() {
        let h = history(&[
            ("2015-01-01 10:00:00 +0000", "CREATE TABLE t (a INT);"),
            ("2015-06-01 10:00:00 +0000", "CREATE TABLE t (a INT, b TEXT, c TEXT);"),
        ]);
        assert_eq!(h.heartbeat().total(), h.total_activity());
        assert_eq!(h.heartbeat().months(), 6);
    }
}
