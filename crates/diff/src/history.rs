//! Schema histories: from a sequence of dated DDL versions to the per-commit
//! delta sequence and the Schema (Monthly) Heartbeat.

use crate::activity::ActivityBreakdown;
use crate::changes::SchemaDelta;
use crate::schema_diff::{diff_schemas_counted, diff_schemas_legacy, DiffStats, MatchPolicy};
use coevo_ddl::{Dialect, ParseCache, ParseError, Schema};
use coevo_heartbeat::{DateTime, Heartbeat};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One version of the schema DDL file: the commit date and the parsed schema.
///
/// The schema is shared: byte-identical DDL versions (inactive commits) hold
/// the *same* `Arc<Schema>` when built through [`SchemaHistory::from_ddl_texts`],
/// so a hundred-commit history of an unchanging file stores one schema, not a
/// hundred clones. Serialization sees through the `Arc` (sharing is a memory
/// optimization, not part of the value).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaVersion {
    /// The commit timestamp.
    pub date: DateTime,
    /// The schema.
    pub schema: Arc<Schema>,
}

/// Which diff algorithm a history is built with. The two produce
/// byte-identical deltas — [`DiffMode::Legacy`] exists so differential tests
/// can prove it on the full corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiffMode {
    /// The fingerprinted, incremental core: identical versions and unchanged
    /// tables short-circuit (every short-circuit confirmed by `==`).
    #[default]
    Incremental,
    /// The pre-refactor algorithm, preserved as the accounting oracle.
    Legacy,
}

/// The delta between two consecutive versions, with its date (the date of
/// the *newer* version — the commit that introduced the change).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionDelta {
    /// The commit timestamp.
    pub date: DateTime,
    /// The delta.
    pub delta: SchemaDelta,
    /// The breakdown.
    pub breakdown: ActivityBreakdown,
}

/// A full schema history: versions ordered by date, plus the derived deltas.
///
/// Version 0 (the creation of the DDL file) contributes its entire content
/// as activity — every attribute of the initial schema is *born with* its
/// table, matching the dataset's accounting where the initial commit carries
/// the initial schema size as activity. This is what makes "48% of change at
/// start-up" (the paper's case study) representable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemaHistory {
    versions: Vec<SchemaVersion>,
    deltas: Vec<VersionDelta>,
    #[serde(default, skip_serializing_if = "stats_never_serialized")]
    stats: DiffStats,
}

// Diff work counters are instrumentation, not part of the history's value:
// they are never serialized (so legacy- and incremental-built histories have
// identical wire forms) and never compared.
fn stats_never_serialized<T>(_: &T) -> bool {
    true
}

impl PartialEq for SchemaHistory {
    fn eq(&self, other: &Self) -> bool {
        self.versions == other.versions && self.deltas == other.deltas
    }
}

impl SchemaHistory {
    /// Build a history from dated, already-parsed schemas. Versions are
    /// sorted by date. Returns `None` when `versions` is empty.
    pub fn from_schemas(versions: Vec<SchemaVersion>, policy: MatchPolicy) -> Option<Self> {
        Self::from_schemas_mode(versions, policy, DiffMode::Incremental)
    }

    /// [`SchemaHistory::from_schemas`] with an explicit [`DiffMode`].
    pub fn from_schemas_mode(
        mut versions: Vec<SchemaVersion>,
        policy: MatchPolicy,
        mode: DiffMode,
    ) -> Option<Self> {
        if versions.is_empty() {
            return None;
        }
        versions.sort_by_key(|v| v.date.unix_seconds());
        let mut stats = DiffStats::default();
        let mut deltas = Vec::with_capacity(versions.len());
        let mut prev: &Schema = Schema::empty_ref();
        let mut prev_arc: Option<&Arc<Schema>> = None;
        for v in &versions {
            let delta = match mode {
                DiffMode::Incremental => {
                    if prev_arc.is_some_and(|p| Arc::ptr_eq(p, &v.schema)) {
                        // Shared-Arc fast path: the parse cache deduplicated
                        // byte-identical versions, so this commit is provably
                        // inactive without even a fingerprint compare.
                        stats.schema_diffs += 1;
                        stats.versions_unchanged += 1;
                        SchemaDelta { tables: Vec::new() }
                    } else {
                        diff_schemas_counted(prev, v.schema.as_ref(), policy, &mut stats)
                    }
                }
                DiffMode::Legacy => diff_schemas_legacy(prev, v.schema.as_ref(), policy),
            };
            let breakdown = delta.breakdown();
            deltas.push(VersionDelta { date: v.date, delta, breakdown });
            prev = v.schema.as_ref();
            prev_arc = Some(&v.schema);
        }
        Some(Self { versions, deltas, stats })
    }

    /// Build a history from dated DDL texts, parsing each version through a
    /// fresh content-addressed [`ParseCache`] (byte-identical versions parse
    /// once and share one `Arc<Schema>`).
    pub fn from_ddl_texts<'a, I>(texts: I, dialect: Dialect) -> Result<Option<Self>, ParseError>
    where
        I: IntoIterator<Item = (DateTime, &'a str)>,
    {
        Self::from_ddl_texts_with(texts, dialect, MatchPolicy::ByName)
    }

    /// [`SchemaHistory::from_ddl_texts`] under an explicit matching policy
    /// (e.g. rename detection).
    pub fn from_ddl_texts_with<'a, I>(
        texts: I,
        dialect: Dialect,
        policy: MatchPolicy,
    ) -> Result<Option<Self>, ParseError>
    where
        I: IntoIterator<Item = (DateTime, &'a str)>,
    {
        Self::from_ddl_texts_cached_with(texts, dialect, &mut ParseCache::new(), policy)
    }

    /// [`SchemaHistory::from_ddl_texts`] against a caller-owned cache, so the
    /// caller can observe hit/miss counters (the engine surfaces them in
    /// `coevo study --profile`).
    pub fn from_ddl_texts_cached<'a, I>(
        texts: I,
        dialect: Dialect,
        cache: &mut ParseCache,
    ) -> Result<Option<Self>, ParseError>
    where
        I: IntoIterator<Item = (DateTime, &'a str)>,
    {
        Self::from_ddl_texts_cached_with(texts, dialect, cache, MatchPolicy::ByName)
    }

    /// [`SchemaHistory::from_ddl_texts_cached`] under an explicit matching
    /// policy.
    pub fn from_ddl_texts_cached_with<'a, I>(
        texts: I,
        dialect: Dialect,
        cache: &mut ParseCache,
        policy: MatchPolicy,
    ) -> Result<Option<Self>, ParseError>
    where
        I: IntoIterator<Item = (DateTime, &'a str)>,
    {
        let mut versions = Vec::new();
        for (date, sql) in texts {
            versions.push(SchemaVersion { date, schema: cache.parse(sql, dialect)? });
        }
        Ok(Self::from_schemas(versions, policy))
    }

    /// Work/skip counters accumulated while the deltas were computed. All
    /// zero for a deserialized history (instrumentation is not persisted).
    pub fn diff_stats(&self) -> DiffStats {
        self.stats
    }

    /// The versions, oldest first.
    pub fn versions(&self) -> &[SchemaVersion] {
        &self.versions
    }

    /// The per-commit deltas, oldest first. `deltas()[0]` is the creation
    /// delta (everything born).
    pub fn deltas(&self) -> &[VersionDelta] {
        &self.deltas
    }

    /// Number of commits to the DDL file.
    pub fn commits(&self) -> usize {
        self.versions.len()
    }

    /// Number of *active* commits: those whose delta carries non-zero
    /// activity (the paper's case study distinguishes 13 schema commits from
    /// 9 active ones).
    pub fn active_commits(&self) -> usize {
        self.deltas.iter().filter(|d| !d.breakdown.is_zero()).count()
    }

    /// Total Activity accumulated over the whole history.
    pub fn total_activity(&self) -> u64 {
        self.deltas.iter().map(|d| d.breakdown.total()).sum()
    }

    /// Aggregate breakdown over the whole history.
    pub fn total_breakdown(&self) -> ActivityBreakdown {
        self.deltas.iter().map(|d| d.breakdown).sum()
    }

    /// The **Schema (Monthly) Heartbeat**: Total Activity per month.
    pub fn heartbeat(&self) -> Heartbeat {
        Heartbeat::from_events(self.deltas.iter().map(|d| (d.date.date, d.breakdown.total())))
            .expect("history has at least one version")
    }

    /// The final schema (last version).
    pub fn final_schema(&self) -> &Schema {
        self.versions.last().expect("non-empty history").schema.as_ref()
    }

    /// The initial schema (first version).
    pub fn initial_schema(&self) -> &Schema {
        self.versions.first().expect("non-empty history").schema.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dt(s: &str) -> DateTime {
        DateTime::parse(s).unwrap()
    }

    fn history(texts: &[(&str, &str)]) -> SchemaHistory {
        SchemaHistory::from_ddl_texts(
            texts.iter().map(|(d, sql)| (dt(d), *sql)),
            Dialect::Generic,
        )
        .unwrap()
        .unwrap()
    }

    #[test]
    fn initial_version_is_all_births() {
        let h = history(&[("2015-01-01 10:00:00 +0000", "CREATE TABLE t (a INT, b INT);")]);
        assert_eq!(h.commits(), 1);
        assert_eq!(h.total_activity(), 2);
        assert_eq!(h.total_breakdown().attrs_born_with_table, 2);
    }

    #[test]
    fn multi_version_history() {
        let h = history(&[
            ("2015-01-01 10:00:00 +0000", "CREATE TABLE t (a INT);"),
            ("2015-02-01 10:00:00 +0000", "CREATE TABLE t (a INT, b INT);"),
            ("2015-02-15 10:00:00 +0000", "CREATE TABLE t (a INT, b INT);"), // inactive
            ("2015-04-01 10:00:00 +0000", "CREATE TABLE t (a BIGINT, b INT);"),
        ]);
        assert_eq!(h.commits(), 4);
        assert_eq!(h.active_commits(), 3);
        assert_eq!(h.total_activity(), 3); // 1 + 1 + 0 + 1 per version
        let hb = h.heartbeat();
        assert_eq!(hb.activity(), &[1, 1, 0, 1]); // Jan, Feb, Mar, Apr
    }

    #[test]
    fn versions_sorted_by_date() {
        let h = history(&[
            ("2015-03-01 10:00:00 +0000", "CREATE TABLE t (a INT, b INT);"),
            ("2015-01-01 10:00:00 +0000", "CREATE TABLE t (a INT);"),
        ]);
        assert_eq!(h.versions()[0].date.date.month, 1);
        assert_eq!(h.initial_schema().attribute_count(), 1);
        assert_eq!(h.final_schema().attribute_count(), 2);
        // Sorted: creation (1 attr born) then injection of b.
        assert_eq!(h.total_activity(), 2);
    }

    #[test]
    fn empty_history_is_none() {
        assert!(SchemaHistory::from_schemas(vec![], MatchPolicy::ByName).is_none());
    }

    #[test]
    fn parse_errors_propagate() {
        let r = SchemaHistory::from_ddl_texts(
            vec![(dt("2015-01-01 10:00:00 +0000"), "CREATE TABLE t (a INT")],
            Dialect::Generic,
        );
        assert!(r.is_err());
    }

    #[test]
    fn table_lifecycle_across_versions() {
        let h = history(&[
            ("2015-01-01 10:00:00 +0000", "CREATE TABLE a (x INT);"),
            (
                "2015-02-01 10:00:00 +0000",
                "CREATE TABLE a (x INT); CREATE TABLE b (y INT, z INT);",
            ),
            ("2015-03-01 10:00:00 +0000", "CREATE TABLE a (x INT);"),
        ]);
        let total = h.total_breakdown();
        assert_eq!(total.attrs_born_with_table, 1 + 2);
        assert_eq!(total.attrs_deleted_with_table, 2);
        assert_eq!(h.total_activity(), 5);
    }

    /// Build the same history without any parse cache: every version parsed
    /// into its own `Arc`, so no `Arc::ptr_eq` fast path can fire.
    fn history_uncached(texts: &[(&str, &str)], mode: DiffMode) -> SchemaHistory {
        let versions = texts
            .iter()
            .map(|(d, sql)| SchemaVersion {
                date: dt(d),
                schema: Arc::new(coevo_ddl::parse_schema(sql, Dialect::Generic).unwrap()),
            })
            .collect();
        SchemaHistory::from_schemas_mode(versions, MatchPolicy::ByName, mode).unwrap()
    }

    const INACTIVE_HEAVY: &[(&str, &str)] = &[
        ("2015-01-01 10:00:00 +0000", "CREATE TABLE t (a INT);"),
        ("2015-01-20 10:00:00 +0000", "CREATE TABLE t (a INT);"), // inactive
        ("2015-02-01 10:00:00 +0000", "CREATE TABLE t (a INT, b INT);"),
        ("2015-02-15 10:00:00 +0000", "CREATE TABLE t (a INT, b INT);"), // inactive
        ("2015-03-15 10:00:00 +0000", "CREATE TABLE t (a INT, b INT);"), // inactive
        ("2015-04-01 10:00:00 +0000", "CREATE TABLE t (a BIGINT, b INT);"),
    ];

    #[test]
    fn cache_on_and_off_produce_identical_histories() {
        let cached = history(INACTIVE_HEAVY);
        let uncached = history_uncached(INACTIVE_HEAVY, DiffMode::Incremental);
        let legacy = history_uncached(INACTIVE_HEAVY, DiffMode::Legacy);
        assert_eq!(cached, uncached);
        assert_eq!(cached, legacy);
        assert_eq!(cached.heartbeat(), uncached.heartbeat());
        assert_eq!(cached.heartbeat(), legacy.heartbeat());
        assert_eq!(cached.active_commits(), 3);
        assert_eq!(cached.total_activity(), 3);
    }

    #[test]
    fn inactive_commits_short_circuit_with_and_without_sharing() {
        // Cached: inactive commits share the previous version's Arc, so the
        // ptr_eq fast path fires. Uncached: distinct allocations, so the
        // fingerprint short-circuit fires instead. Same counters either way.
        for h in
            [history(INACTIVE_HEAVY), history_uncached(INACTIVE_HEAVY, DiffMode::Incremental)]
        {
            let s = h.diff_stats();
            assert_eq!(s.schema_diffs, 6);
            assert_eq!(s.versions_unchanged, 3);
            assert_eq!(s.elided(), 3);
        }
        // Legacy mode does no incremental work at all.
        let s = history_uncached(INACTIVE_HEAVY, DiffMode::Legacy).diff_stats();
        assert_eq!(s, DiffStats::default());
    }

    #[test]
    fn cached_inactive_versions_share_one_schema() {
        let h = history(INACTIVE_HEAVY);
        let v = h.versions();
        assert!(Arc::ptr_eq(&v[0].schema, &v[1].schema));
        assert!(Arc::ptr_eq(&v[2].schema, &v[3].schema));
        assert!(Arc::ptr_eq(&v[2].schema, &v[4].schema));
        assert!(!Arc::ptr_eq(&v[0].schema, &v[2].schema));
    }

    #[test]
    fn unchanged_tables_are_skipped_not_rediffed() {
        let h = history(&[
            ("2015-01-01 10:00:00 +0000", "CREATE TABLE a (x INT); CREATE TABLE b (y INT);"),
            ("2015-02-01 10:00:00 +0000", "CREATE TABLE a (x BIGINT); CREATE TABLE b (y INT);"),
        ]);
        let s = h.diff_stats();
        // The creation delta has no survivors (both tables are born). The
        // second delta has two survivors: `a` changed (diffed), `b`
        // unchanged (skipped via fingerprint).
        assert_eq!(s.tables_diffed, 1);
        assert_eq!(s.tables_skipped, 1);
        assert_eq!(h.total_activity(), 3); // 2 births + 1 type change
    }

    #[test]
    fn heartbeat_total_equals_history_total() {
        let h = history(&[
            ("2015-01-01 10:00:00 +0000", "CREATE TABLE t (a INT);"),
            ("2015-06-01 10:00:00 +0000", "CREATE TABLE t (a INT, b TEXT, c TEXT);"),
        ]);
        assert_eq!(h.heartbeat().total(), h.total_activity());
        assert_eq!(h.heartbeat().months(), 6);
    }
}
