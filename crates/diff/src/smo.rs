//! Schema Modification Operators (SMOs): expressing a delta as a forward
//! script of evolution operations.
//!
//! The SMO algebra line of work (PRISM, and the operator algebras cited in
//! the paper's §2.1) describes evolution as an executable sequence of
//! operators. This module derives such a script from a [`SchemaDelta`] — an
//! extension beyond the paper's measurements, useful for replaying a history
//! against a live database.

use crate::changes::{AttributeChange, SchemaDelta, TableFate};
use coevo_ddl::SqlType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One schema modification operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Smo {
    /// A `CREATE TABLE` statement.
    CreateTable {
        /// The table name, as written.
        table: String,
    },
    /// A `DROP TABLE` statement.
    DropTable {
        /// The table name, as written.
        table: String,
    },
    /// Add a column.
    AddColumn {
        /// The table name, as written.
        table: String,
        /// The column name.
        column: String,
        /// The SQL data type.
        sql_type: SqlType,
    },
    /// Drop a column.
    DropColumn {
        /// The table name, as written.
        table: String,
        /// The column name.
        column: String,
    },
    /// Change a column’s data type.
    ChangeColumnType {
        /// The table name, as written.
        table: String,
        /// The column name.
        column: String,
        /// The new name.
        to: SqlType,
    },
    /// Rename a column.
    RenameColumn {
        /// The table name, as written.
        table: String,
        /// The old name.
        from: String,
        /// The new name.
        to: String,
    },
    /// Add a column to the primary key.
    AddToKey {
        /// The table name, as written.
        table: String,
        /// The column name.
        column: String,
    },
    /// Remove a column from the primary key.
    RemoveFromKey {
        /// The table name, as written.
        table: String,
        /// The column name.
        column: String,
    },
}

impl Smo {
    /// The table this operator targets.
    pub fn table(&self) -> &str {
        match self {
            Smo::CreateTable { table }
            | Smo::DropTable { table }
            | Smo::AddColumn { table, .. }
            | Smo::DropColumn { table, .. }
            | Smo::ChangeColumnType { table, .. }
            | Smo::RenameColumn { table, .. }
            | Smo::AddToKey { table, .. }
            | Smo::RemoveFromKey { table, .. } => table,
        }
    }
}

impl fmt::Display for Smo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Smo::CreateTable { table } => write!(f, "CREATE TABLE {table}"),
            Smo::DropTable { table } => write!(f, "DROP TABLE {table}"),
            Smo::AddColumn { table, column, sql_type } => {
                write!(f, "ALTER TABLE {table} ADD COLUMN {column} {sql_type}")
            }
            Smo::DropColumn { table, column } => {
                write!(f, "ALTER TABLE {table} DROP COLUMN {column}")
            }
            Smo::ChangeColumnType { table, column, to } => {
                write!(f, "ALTER TABLE {table} ALTER COLUMN {column} TYPE {to}")
            }
            Smo::RenameColumn { table, from, to } => {
                write!(f, "ALTER TABLE {table} RENAME COLUMN {from} TO {to}")
            }
            Smo::AddToKey { table, column } => {
                write!(f, "-- KEY: add {column} to PRIMARY KEY of {table}")
            }
            Smo::RemoveFromKey { table, column } => {
                write!(f, "-- KEY: remove {column} from PRIMARY KEY of {table}")
            }
        }
    }
}

/// Flatten a schema delta into a forward SMO script: drops first, then
/// creations, then in-place changes (a safe replay order for name reuse).
pub fn delta_to_smos(delta: &SchemaDelta) -> Vec<Smo> {
    let mut out = Vec::new();
    for td in delta.tables.iter().filter(|t| t.fate == TableFate::Dropped) {
        out.push(Smo::DropTable { table: td.table.clone() });
    }
    for td in delta.tables.iter().filter(|t| t.fate == TableFate::Created) {
        out.push(Smo::CreateTable { table: td.table.clone() });
    }
    for td in delta.tables.iter().filter(|t| t.fate == TableFate::Survived) {
        for ch in &td.changes {
            out.push(match ch {
                AttributeChange::Injected { name, sql_type } => Smo::AddColumn {
                    table: td.table.clone(),
                    column: name.clone(),
                    sql_type: sql_type.clone(),
                },
                AttributeChange::Ejected { name, .. } => {
                    Smo::DropColumn { table: td.table.clone(), column: name.clone() }
                }
                AttributeChange::TypeChanged { name, to, .. } => Smo::ChangeColumnType {
                    table: td.table.clone(),
                    column: name.clone(),
                    to: to.clone(),
                },
                AttributeChange::KeyChanged { name, now_in_key: true } => {
                    Smo::AddToKey { table: td.table.clone(), column: name.clone() }
                }
                AttributeChange::KeyChanged { name, now_in_key: false } => {
                    Smo::RemoveFromKey { table: td.table.clone(), column: name.clone() }
                }
                AttributeChange::Renamed { from, to, .. } => Smo::RenameColumn {
                    table: td.table.clone(),
                    from: from.clone(),
                    to: to.clone(),
                },
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_diff::{diff_schemas, diff_schemas_with, MatchPolicy};
    use coevo_ddl::{parse_schema, Dialect};

    fn schema(sql: &str) -> coevo_ddl::Schema {
        parse_schema(sql, Dialect::Generic).unwrap()
    }

    #[test]
    fn smo_script_covers_all_changes() {
        let old = schema(
            "CREATE TABLE gone (a INT); CREATE TABLE t (x INT, y INT, w INT, PRIMARY KEY (x));",
        );
        let new = schema("CREATE TABLE t (x INT, y INT, z TEXT, PRIMARY KEY (x, y)); CREATE TABLE born (b INT);");
        let smos = delta_to_smos(&diff_schemas(&old, &new));
        let rendered: Vec<String> = smos.iter().map(|s| s.to_string()).collect();
        assert!(rendered.contains(&"DROP TABLE gone".to_string()));
        assert!(rendered.contains(&"CREATE TABLE born".to_string()));
        assert!(rendered.contains(&"ALTER TABLE t DROP COLUMN w".to_string()));
        assert!(rendered.contains(&"ALTER TABLE t ADD COLUMN z TEXT".to_string()));
        assert!(rendered.iter().any(|s| s.contains("add y to PRIMARY KEY")));
    }

    #[test]
    fn drops_precede_creates() {
        let old = schema("CREATE TABLE a (x INT);");
        let new = schema("CREATE TABLE b (x INT);");
        let smos = delta_to_smos(&diff_schemas(&old, &new));
        assert!(matches!(smos[0], Smo::DropTable { .. }));
        assert!(matches!(smos[1], Smo::CreateTable { .. }));
    }

    #[test]
    fn rename_smo_from_rename_policy() {
        let old = schema("CREATE TABLE t (old_name INT);");
        let new = schema("CREATE TABLE t (new_name INT);");
        let smos =
            delta_to_smos(&diff_schemas_with(&old, &new, MatchPolicy::rename_detection()));
        assert_eq!(smos.len(), 1);
        assert_eq!(smos[0].to_string(), "ALTER TABLE t RENAME COLUMN old_name TO new_name");
        assert_eq!(smos[0].table(), "t");
    }

    #[test]
    fn type_change_smo() {
        let old = schema("CREATE TABLE t (a INT);");
        let new = schema("CREATE TABLE t (a VARCHAR(20));");
        let smos = delta_to_smos(&diff_schemas(&old, &new));
        assert_eq!(smos[0].to_string(), "ALTER TABLE t ALTER COLUMN a TYPE VARCHAR(20)");
    }

    #[test]
    fn empty_delta_empty_script() {
        let s = schema("CREATE TABLE t (a INT);");
        assert!(delta_to_smos(&diff_schemas(&s, &s)).is_empty());
    }
}
