//! Structured change records produced by the diff.

use crate::activity::ActivityBreakdown;
use coevo_ddl::SqlType;
use serde::{Deserialize, Serialize};

/// What happened to a table between two versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TableFate {
    /// Present only in the new version.
    Created,
    /// Present only in the old version.
    Dropped,
    /// Present in both (attribute-level changes may still exist).
    Survived,
}

/// One attribute-level change inside a table delta.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttributeChange {
    /// Attribute exists only in the new version of a surviving table.
    /// The name, as written in the source.
    Injected {
        /// The object name.
        name: String,
        /// The SQL data type.
        sql_type: SqlType,
    },
    /// Attribute exists only in the old version of a surviving table.
    /// The name, as written in the source.
    Ejected {
        /// The object name.
        name: String,
        /// The SQL data type.
        sql_type: SqlType,
    },
    /// Attribute present in both versions with a different data type.
    /// The name, as written in the source.
    TypeChanged {
        /// The object name.
        name: String,
        /// The old name.
        from: SqlType,
        /// The new name.
        to: SqlType,
    },
    /// Attribute present in both versions with changed PK participation.
    /// The name, as written in the source.
    KeyChanged {
        /// The object name.
        name: String,
        /// Whether the attribute is in the key after the change.
        now_in_key: bool,
    },
    /// Attribute recognized as renamed (only under
    /// [`crate::schema_diff::MatchPolicy::RenameDetection`]).
    /// The from.
    Renamed {
        /// The old name.
        from: String,
        /// The new name.
        to: String,
        /// The SQL data type.
        sql_type: SqlType,
    },
}

impl AttributeChange {
    /// The attribute name in the *new* version (or old, for ejections).
    pub fn name(&self) -> &str {
        match self {
            AttributeChange::Injected { name, .. }
            | AttributeChange::Ejected { name, .. }
            | AttributeChange::TypeChanged { name, .. }
            | AttributeChange::KeyChanged { name, .. } => name,
            AttributeChange::Renamed { to, .. } => to,
        }
    }
}

/// All changes affecting one table between two versions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableDelta {
    /// Table name (new-version name for survivors and creations; old-version
    /// name for drops).
    pub table: String,
    /// The fate.
    pub fate: TableFate,
    /// For Created: all attributes (born with the table). For Dropped: all
    /// attributes (deleted with the table). For Survived: the in-place
    /// changes.
    pub changes: Vec<AttributeChange>,
    /// Attribute count involved: births for Created, deaths for Dropped.
    pub attribute_count: usize,
}

/// The full delta between two schema versions.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SchemaDelta {
    /// The referenced tables.
    pub tables: Vec<TableDelta>,
}

impl SchemaDelta {
    /// Aggregate the delta into the activity counters (the paper's six,
    /// plus detected renames under rename-aware matching).
    pub fn breakdown(&self) -> ActivityBreakdown {
        let mut b = ActivityBreakdown::default();
        for td in &self.tables {
            match td.fate {
                TableFate::Created => {
                    b.attrs_born_with_table += td.attribute_count as u64;
                }
                TableFate::Dropped => {
                    b.attrs_deleted_with_table += td.attribute_count as u64;
                }
                TableFate::Survived => {
                    for ch in &td.changes {
                        match ch {
                            AttributeChange::Injected { .. } => b.attrs_injected += 1,
                            AttributeChange::Ejected { .. } => b.attrs_ejected += 1,
                            AttributeChange::TypeChanged { .. } => b.attrs_type_changed += 1,
                            AttributeChange::KeyChanged { .. } => b.attrs_key_changed += 1,
                            // Under by-name matching a rename surfaces as an
                            // eject + inject (two units). When the rename-
                            // aware matcher recognizes the pair, it is one
                            // in-place change — so rename-aware Total
                            // Activity is never above the paper's.
                            AttributeChange::Renamed { .. } => b.attrs_renamed += 1,
                        }
                    }
                }
            }
        }
        b
    }

    /// Total Activity of this delta.
    pub fn total_activity(&self) -> u64 {
        self.breakdown().total()
    }

    /// Tables created in this step.
    pub fn tables_created(&self) -> usize {
        self.tables.iter().filter(|t| t.fate == TableFate::Created).count()
    }

    /// Tables dropped in this step.
    pub fn tables_dropped(&self) -> usize {
        self.tables.iter().filter(|t| t.fate == TableFate::Dropped).count()
    }

    /// True when the two versions are logically identical.
    pub fn is_empty(&self) -> bool {
        self.tables.iter().all(|t| t.fate == TableFate::Survived && t.changes.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty(name: &str) -> SqlType {
        SqlType::simple(name)
    }

    #[test]
    fn breakdown_by_fate() {
        let delta = SchemaDelta {
            tables: vec![
                TableDelta {
                    table: "new_t".into(),
                    fate: TableFate::Created,
                    changes: vec![],
                    attribute_count: 3,
                },
                TableDelta {
                    table: "old_t".into(),
                    fate: TableFate::Dropped,
                    changes: vec![],
                    attribute_count: 2,
                },
                TableDelta {
                    table: "kept".into(),
                    fate: TableFate::Survived,
                    changes: vec![
                        AttributeChange::Injected { name: "a".into(), sql_type: ty("INT") },
                        AttributeChange::Ejected { name: "b".into(), sql_type: ty("INT") },
                        AttributeChange::TypeChanged {
                            name: "c".into(),
                            from: ty("INT"),
                            to: ty("BIGINT"),
                        },
                        AttributeChange::KeyChanged { name: "d".into(), now_in_key: true },
                    ],
                    attribute_count: 0,
                },
            ],
        };
        let b = delta.breakdown();
        assert_eq!(b.attrs_born_with_table, 3);
        assert_eq!(b.attrs_deleted_with_table, 2);
        assert_eq!(b.attrs_injected, 1);
        assert_eq!(b.attrs_ejected, 1);
        assert_eq!(b.attrs_type_changed, 1);
        assert_eq!(b.attrs_key_changed, 1);
        assert_eq!(delta.total_activity(), 9);
        assert_eq!(delta.tables_created(), 1);
        assert_eq!(delta.tables_dropped(), 1);
        assert!(!delta.is_empty());
    }

    #[test]
    fn rename_counts_as_one_unit() {
        let delta = SchemaDelta {
            tables: vec![TableDelta {
                table: "t".into(),
                fate: TableFate::Survived,
                changes: vec![AttributeChange::Renamed {
                    from: "old".into(),
                    to: "new".into(),
                    sql_type: ty("INT"),
                }],
                attribute_count: 0,
            }],
        };
        let b = delta.breakdown();
        assert_eq!(b.attrs_renamed, 1);
        assert_eq!(b.attrs_injected, 0);
        assert_eq!(b.attrs_ejected, 0);
        // One unit — the by-name accounting of the same edit is two.
        assert_eq!(b.total(), 1);
    }

    #[test]
    fn empty_delta() {
        let delta = SchemaDelta::default();
        assert!(delta.is_empty());
        assert_eq!(delta.total_activity(), 0);
    }

    #[test]
    fn change_name_accessor() {
        let c =
            AttributeChange::Renamed { from: "a".into(), to: "b".into(), sql_type: ty("X") };
        assert_eq!(c.name(), "b");
        let c = AttributeChange::KeyChanged { name: "k".into(), now_in_key: false };
        assert_eq!(c.name(), "k");
    }
}
