//! Schema-level diff: table matching, creations, drops, and survivors.
//!
//! The diff is *incremental*: schemas and tables sealed at parse time carry
//! structural fingerprints (see [`coevo_ddl::fingerprint`]), and identical
//! versions / unchanged tables are skipped without any attribute-level work.
//! Every fingerprint short-circuit is confirmed by a full structural equality
//! check, so a 64-bit collision can never alter the accounting — the output
//! is byte-identical to the pre-fingerprint algorithm, which is preserved as
//! [`diff_schemas_legacy`] and used as the oracle in differential tests.

use crate::changes::{SchemaDelta, TableDelta, TableFate};
use crate::table_diff::{diff_tables, diff_tables_legacy};
use coevo_ddl::{Schema, SchemaSeal, Table};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Counters for how much work the incremental diff core actually did — and,
/// more importantly, elided. Accumulated across a history by
/// [`crate::SchemaHistory`] and surfaced as cache/skip rates in
/// `coevo study --profile`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffStats {
    /// Schema-pair diffs requested.
    pub schema_diffs: u64,
    /// Whole-version short-circuits: the two schemas were structurally
    /// identical (fingerprint-equal and confirmed equal, or the same shared
    /// `Arc`), so no table work happened at all.
    pub versions_unchanged: u64,
    /// Surviving tables skipped because both sides were fingerprint-equal
    /// (and confirmed equal).
    pub tables_skipped: u64,
    /// Surviving tables that went through the attribute-level diff.
    pub tables_diffed: u64,
}

impl DiffStats {
    /// Lookups the incremental core answered without diffing (version- and
    /// table-level skips combined).
    pub fn elided(&self) -> u64 {
        self.versions_unchanged + self.tables_skipped
    }
}

/// How attributes (and, transitively, their changes) are matched between two
/// versions. The paper matches by name; rename detection is an ablation knob
/// (see DESIGN.md §7 and §14).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MatchPolicy {
    /// Case-insensitive name equality — the paper's policy. A renamed
    /// attribute counts as one ejection plus one injection.
    #[default]
    ByName,
    /// Additionally pair unmatched attributes through the scored matcher of
    /// [`crate::rename`]: candidate pairs whose composite name/type/position
    /// score reaches `threshold` become one [`Renamed`] change instead of an
    /// eject + inject. Construct through [`MatchPolicy::rename_detection`] /
    /// [`MatchPolicy::rename_detection_with`], which keep the threshold
    /// finite and in `[0, 1]`.
    ///
    /// [`Renamed`]: crate::AttributeChange::Renamed
    RenameDetection {
        /// Minimum composite score a pair must reach to count as a rename.
        threshold: f64,
    },
}

// The constructors guarantee a finite threshold (never NaN), so equality is
// total and `MatchPolicy` can sit in `Eq` contexts like config comparisons.
impl Eq for MatchPolicy {}

impl MatchPolicy {
    /// Rename detection at the validated default threshold
    /// [`crate::rename::DEFAULT_RENAME_THRESHOLD`].
    pub fn rename_detection() -> Self {
        Self::RenameDetection { threshold: crate::rename::DEFAULT_RENAME_THRESHOLD }
    }

    /// Rename detection at an explicit threshold, clamped to `[0, 1]`
    /// (non-finite values fall back to the default threshold).
    pub fn rename_detection_with(threshold: f64) -> Self {
        let threshold = if threshold.is_finite() {
            threshold.clamp(0.0, 1.0)
        } else {
            crate::rename::DEFAULT_RENAME_THRESHOLD
        };
        Self::RenameDetection { threshold }
    }

    /// The rename threshold, when rename detection is on.
    pub fn rename_threshold(&self) -> Option<f64> {
        match self {
            Self::ByName => None,
            Self::RenameDetection { threshold } => Some(*threshold),
        }
    }

    /// A short stable tag for config digests and profile lines.
    pub fn digest_tag(&self) -> String {
        match self {
            Self::ByName => "by-name".to_string(),
            Self::RenameDetection { threshold } => format!("rename-detection:{threshold}"),
        }
    }
}

/// Diff two schema versions under the default (paper) matching policy.
pub fn diff_schemas(old: &Schema, new: &Schema) -> SchemaDelta {
    diff_schemas_with(old, new, MatchPolicy::ByName)
}

/// Diff two schema versions under an explicit matching policy.
///
/// Tables are matched by case-insensitive name. A table present only in
/// `new` contributes its attributes as *born with table*; present only in
/// `old`, as *deleted with table*; present in both, the attribute-level
/// diff of [`diff_tables`] — unless the two sides are fingerprint-equal
/// (confirmed by `==`), in which case the table is skipped entirely.
pub fn diff_schemas_with(old: &Schema, new: &Schema, policy: MatchPolicy) -> SchemaDelta {
    let mut stats = DiffStats::default();
    diff_schemas_counted(old, new, policy, &mut stats)
}

/// [`diff_schemas_with`], accumulating work/skip counters into `stats`.
pub fn diff_schemas_counted(
    old: &Schema,
    new: &Schema,
    policy: MatchPolicy,
    stats: &mut DiffStats,
) -> SchemaDelta {
    stats.schema_diffs += 1;
    if schemas_identical(old, new) {
        stats.versions_unchanged += 1;
        return SchemaDelta { tables: Vec::new() };
    }

    let matcher = SchemaMatcher::of(old, new);

    let mut deltas = Vec::new();

    // Old-version order: drops and survivors.
    for t in &old.tables {
        match matcher.match_in_new(t) {
            Some(j) => {
                let new_t = &new.tables[j];
                if tables_identical(t, new_t) {
                    stats.tables_skipped += 1;
                    continue;
                }
                stats.tables_diffed += 1;
                let td = diff_tables(t, new_t, policy);
                if !td.changes.is_empty() {
                    deltas.push(td);
                }
            }
            None => {
                deltas.push(TableDelta {
                    table: t.name.to_string(),
                    fate: TableFate::Dropped,
                    changes: Vec::new(),
                    attribute_count: t.columns.len(),
                });
            }
        }
    }
    // New-version order: creations.
    for t in &new.tables {
        if matcher.match_in_old(t).is_none() {
            deltas.push(TableDelta {
                table: t.name.to_string(),
                fate: TableFate::Created,
                changes: Vec::new(),
                attribute_count: t.columns.len(),
            });
        }
    }

    SchemaDelta { tables: deltas }
}

/// The pre-fingerprint schema diff, preserved verbatim as the oracle for the
/// differential tests: it unconditionally rebuilds key maps and runs the
/// attribute-level diff on every surviving table.
pub fn diff_schemas_legacy(old: &Schema, new: &Schema, policy: MatchPolicy) -> SchemaDelta {
    let old_by_key: BTreeMap<String, usize> =
        old.tables.iter().enumerate().map(|(i, t)| (t.key().to_string(), i)).collect();
    let new_by_key: BTreeMap<String, usize> =
        new.tables.iter().enumerate().map(|(i, t)| (t.key().to_string(), i)).collect();

    let mut deltas = Vec::new();

    // Old-version order: drops and survivors.
    for t in &old.tables {
        match new_by_key.get(t.key()) {
            Some(&j) => {
                let td = diff_tables_legacy(t, &new.tables[j], policy);
                if !td.changes.is_empty() {
                    deltas.push(td);
                }
            }
            None => {
                deltas.push(TableDelta {
                    table: t.name.to_string(),
                    fate: TableFate::Dropped,
                    changes: Vec::new(),
                    attribute_count: t.columns.len(),
                });
            }
        }
    }
    // New-version order: creations.
    for t in &new.tables {
        if !old_by_key.contains_key(t.key()) {
            deltas.push(TableDelta {
                table: t.name.to_string(),
                fate: TableFate::Created,
                changes: Vec::new(),
                attribute_count: t.columns.len(),
            });
        }
    }

    SchemaDelta { tables: deltas }
}

/// True when the two schemas are provably structurally identical *cheaply*:
/// the same allocation, or fingerprint-equal seals confirmed by `==`. An
/// unsealed pair never short-circuits — it flows through the per-table walk,
/// exactly like the legacy algorithm.
fn schemas_identical(old: &Schema, new: &Schema) -> bool {
    if std::ptr::eq(old, new) {
        return true;
    }
    match (old.seal_data(), new.seal_data()) {
        (Some(a), Some(b)) => a.fingerprint() == b.fingerprint() && old == new,
        _ => false,
    }
}

/// True when two surviving tables are provably identical: fingerprint-equal
/// seals, confirmed by `==` so a hash collision cannot suppress real changes.
#[cfg(not(feature = "oracle-selftest"))]
fn tables_identical(old: &Table, new: &Table) -> bool {
    match (old.seal_data(), new.seal_data()) {
        (Some(a), Some(b)) => a.fingerprint() == b.fingerprint() && old == new,
        _ => false,
    }
}

/// Deliberately broken `oracle-selftest` variant: declares two tables
/// identical as soon as their column counts agree, forcing the incremental
/// short-circuit onto tables whose *contents* changed (a type change keeps
/// the count). The incremental path then undercounts Total Activity, and
/// `coevo-oracle`'s legacy-diff oracle must catch the divergence — this is
/// how the harness proves it would detect a real fingerprint bug.
#[cfg(feature = "oracle-selftest")]
fn tables_identical(old: &Table, new: &Table) -> bool {
    old.columns.len() == new.columns.len()
}

/// A table's case-folded key, borrowed either from the seal or from the
/// fold the name's [`coevo_ddl::Ident`] computed at construction time.
fn table_key(t: &Table) -> &str {
    match t.seal_data() {
        Some(s) => s.table_key(),
        None => t.key(),
    }
}

/// How the two schemas' tables are matched: by integer symbol when both
/// sides were sealed under the same live interner (see
/// [`crate::table_diff`]'s matcher for the invariant), by case-folded
/// string key otherwise.
enum SchemaMatcher<'a> {
    Syms { old: &'a SchemaSeal, new: &'a SchemaSeal },
    Strs { old: SchemaKeys<'a>, new: SchemaKeys<'a> },
}

impl<'a> SchemaMatcher<'a> {
    fn of(old: &'a Schema, new: &'a Schema) -> Self {
        if let (Some(a), Some(b)) = (old.seal_data(), new.seal_data()) {
            // A schema seal's interner id is nonzero only when *every* table
            // name was interned by that one interner, so symbol equality is
            // exactly case-folded name equality here.
            if a.interner_id() != 0 && a.interner_id() == b.interner_id() {
                return Self::Syms { old: a, new: b };
            }
        }
        Self::Strs { old: SchemaKeys::of(old), new: SchemaKeys::of(new) }
    }

    /// Index in `new` of the table matching `t` (a table of `old`).
    fn match_in_new(&self, t: &Table) -> Option<usize> {
        match self {
            Self::Syms { new, .. } => new.table_index_by_sym(t.name.symbol()),
            Self::Strs { new, .. } => new.index_of(table_key(t)),
        }
    }

    /// Index in `old` of the table matching `t` (a table of `new`).
    fn match_in_old(&self, t: &Table) -> Option<usize> {
        match self {
            Self::Syms { old, .. } => old.table_index_by_sym(t.name.symbol()),
            Self::Strs { old, .. } => old.index_of(table_key(t)),
        }
    }
}

/// Key → index lookup over a schema's tables: the sealed map when present,
/// a freshly built one (same last-declaration-wins semantics) otherwise.
enum SchemaKeys<'a> {
    Sealed(&'a SchemaSeal),
    Built(BTreeMap<String, usize>),
}

impl<'a> SchemaKeys<'a> {
    fn of(s: &'a Schema) -> Self {
        match s.seal_data() {
            Some(seal) => Self::Sealed(seal),
            None => Self::Built(
                s.tables.iter().enumerate().map(|(i, t)| (t.key().to_string(), i)).collect(),
            ),
        }
    }

    fn index_of(&self, key: &str) -> Option<usize> {
        match self {
            Self::Sealed(seal) => seal.table_index(key),
            Self::Built(map) => map.get(key).copied(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coevo_ddl::{parse_schema, Dialect};

    fn schema(sql: &str) -> Schema {
        parse_schema(sql, Dialect::Generic).unwrap()
    }

    #[test]
    fn table_creation_counts_births() {
        let old = schema("CREATE TABLE a (x INT);");
        let new = schema("CREATE TABLE a (x INT); CREATE TABLE b (y INT, z INT, w INT);");
        let d = diff_schemas(&old, &new);
        let b = d.breakdown();
        assert_eq!(b.attrs_born_with_table, 3);
        assert_eq!(b.total(), 3);
        assert_eq!(d.tables_created(), 1);
    }

    #[test]
    fn table_drop_counts_deaths() {
        let old = schema("CREATE TABLE a (x INT); CREATE TABLE b (y INT, z INT);");
        let new = schema("CREATE TABLE a (x INT);");
        let d = diff_schemas(&old, &new);
        assert_eq!(d.breakdown().attrs_deleted_with_table, 2);
        assert_eq!(d.tables_dropped(), 1);
    }

    #[test]
    fn survivor_changes_flow_through() {
        let old = schema("CREATE TABLE a (x INT, y INT);");
        let new = schema("CREATE TABLE a (x BIGINT, z INT);");
        let b = diff_schemas(&old, &new).breakdown();
        assert_eq!(b.attrs_type_changed, 1);
        assert_eq!(b.attrs_ejected, 1);
        assert_eq!(b.attrs_injected, 1);
        assert_eq!(b.total(), 3);
    }

    #[test]
    fn identical_schemas_are_empty_delta() {
        let s = schema("CREATE TABLE a (x INT); CREATE TABLE b (y TEXT);");
        let d = diff_schemas(&s, &s);
        assert!(d.is_empty());
        assert_eq!(d.total_activity(), 0);
    }

    #[test]
    fn unchanged_survivors_not_reported() {
        let old = schema("CREATE TABLE a (x INT); CREATE TABLE b (y INT);");
        let new = schema("CREATE TABLE a (x INT); CREATE TABLE b (y BIGINT);");
        let d = diff_schemas(&old, &new);
        assert_eq!(d.tables.len(), 1);
        assert_eq!(d.tables[0].table, "b");
    }

    #[test]
    fn table_rename_is_drop_plus_create() {
        // Table matching is by name only (paper policy): renaming a table is
        // a drop + create, with all attributes dying and being born.
        let old = schema("CREATE TABLE users (a INT, b INT);");
        let new = schema("CREATE TABLE members (a INT, b INT);");
        let b = diff_schemas(&old, &new).breakdown();
        assert_eq!(b.attrs_deleted_with_table, 2);
        assert_eq!(b.attrs_born_with_table, 2);
        assert_eq!(b.total(), 4);
    }

    #[test]
    fn case_insensitive_table_matching() {
        let old = schema("CREATE TABLE Users (a INT);");
        let new = schema("CREATE TABLE users (a INT);");
        assert!(diff_schemas(&old, &new).is_empty());
    }

    #[test]
    fn empty_to_initial_schema() {
        let old = Schema::new();
        let new = schema("CREATE TABLE a (x INT, y INT);");
        let b = diff_schemas(&old, &new).breakdown();
        assert_eq!(b.attrs_born_with_table, 2);
    }

    #[test]
    fn doc_example_from_lib() {
        let v1 = schema("CREATE TABLE t (a INT, b INT);");
        let v2 = schema("CREATE TABLE t (a BIGINT, c INT);");
        let acts = diff_schemas(&v1, &v2).breakdown();
        assert_eq!(acts.attrs_injected, 1);
        assert_eq!(acts.attrs_ejected, 1);
        assert_eq!(acts.attrs_type_changed, 1);
        assert_eq!(acts.total(), 3);
    }

    #[test]
    fn policy_is_threaded_to_tables() {
        let old = schema("CREATE TABLE t (user_name VARCHAR(9));");
        let new = schema("CREATE TABLE t (username VARCHAR(9));");
        let by_name = diff_schemas_with(&old, &new, MatchPolicy::ByName);
        let renames = diff_schemas_with(&old, &new, MatchPolicy::rename_detection());
        assert_eq!(by_name.breakdown().total(), 2);
        // A detected rename is one change and one unit of activity — strictly
        // below the eject + inject the by-name accounting reports.
        assert_eq!(renames.tables[0].changes.len(), 1);
        assert_eq!(renames.breakdown().total(), 1);
        assert_eq!(renames.breakdown().attrs_renamed, 1);
    }

    #[test]
    fn policy_constructors_sanitize_the_threshold() {
        assert_eq!(
            MatchPolicy::rename_detection_with(2.0),
            MatchPolicy::RenameDetection { threshold: 1.0 }
        );
        assert_eq!(
            MatchPolicy::rename_detection_with(-3.0),
            MatchPolicy::RenameDetection { threshold: 0.0 }
        );
        assert_eq!(
            MatchPolicy::rename_detection_with(f64::NAN),
            MatchPolicy::rename_detection()
        );
        assert_eq!(MatchPolicy::ByName.rename_threshold(), None);
        assert_eq!(
            MatchPolicy::rename_detection().rename_threshold(),
            Some(crate::rename::DEFAULT_RENAME_THRESHOLD)
        );
        assert_ne!(
            MatchPolicy::ByName.digest_tag(),
            MatchPolicy::rename_detection().digest_tag()
        );
        assert_ne!(
            MatchPolicy::rename_detection_with(0.5).digest_tag(),
            MatchPolicy::rename_detection_with(0.7).digest_tag()
        );
    }
}
