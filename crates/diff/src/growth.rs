//! Schema size over time: the growth view of a history.
//!
//! Related work \[10\] (the Oscar study) observes that schema size grows
//! linearly at a markedly lower rate than the application. This module
//! produces the monthly schema-size series (attributes and tables,
//! forward-filled between versions) that a regression (see
//! `coevo_stats::regression`) turns into growth rates.

use crate::history::SchemaHistory;
use coevo_heartbeat::YearMonth;
use serde::{Deserialize, Serialize};

/// Schema size at the end of one month.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizePoint {
    /// The month.
    pub month: YearMonth,
    /// The attributes.
    pub attributes: usize,
    /// The referenced tables.
    pub tables: usize,
}

/// The monthly schema-size series: one point per month from the first
/// version's month through the last version's month, carrying forward the
/// size of the latest version at each point.
pub fn schema_size_series(history: &SchemaHistory) -> Vec<SizePoint> {
    let versions = history.versions();
    let first = YearMonth::of(versions.first().expect("non-empty").date.date);
    let last = YearMonth::of(versions.last().expect("non-empty").date.date);
    let months = (last.months_since(&first) + 1) as usize;

    let mut out = Vec::with_capacity(months);
    let mut vi = 0usize;
    for m in 0..months {
        let month = first.plus(m as i64);
        // Advance to the latest version whose month is ≤ this month.
        while vi + 1 < versions.len() && YearMonth::of(versions[vi + 1].date.date) <= month {
            vi += 1;
        }
        let schema = &versions[vi].schema;
        out.push(SizePoint {
            month,
            attributes: schema.attribute_count(),
            tables: schema.tables.len(),
        });
    }
    out
}

/// Net growth over the whole history: (attribute delta, table delta) from
/// the first version to the last.
pub fn net_growth(history: &SchemaHistory) -> (i64, i64) {
    let first = history.initial_schema();
    let last = history.final_schema();
    (
        last.attribute_count() as i64 - first.attribute_count() as i64,
        last.tables.len() as i64 - first.tables.len() as i64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use coevo_ddl::Dialect;
    use coevo_heartbeat::DateTime;

    fn history(texts: &[(&str, &str)]) -> SchemaHistory {
        SchemaHistory::from_ddl_texts(
            texts.iter().map(|(d, sql)| (DateTime::parse(d).unwrap(), *sql)),
            Dialect::Generic,
        )
        .unwrap()
        .unwrap()
    }

    #[test]
    fn forward_fill_between_versions() {
        let h = history(&[
            ("2020-01-15 00:00:00 +0000", "CREATE TABLE a (x INT);"),
            (
                "2020-04-15 00:00:00 +0000",
                "CREATE TABLE a (x INT, y INT); CREATE TABLE b (z INT);",
            ),
        ]);
        let s = schema_size_series(&h);
        assert_eq!(s.len(), 4); // Jan..Apr
        assert_eq!((s[0].attributes, s[0].tables), (1, 1));
        assert_eq!((s[1].attributes, s[1].tables), (1, 1)); // Feb: carried forward
        assert_eq!((s[2].attributes, s[2].tables), (1, 1));
        assert_eq!((s[3].attributes, s[3].tables), (3, 2));
    }

    #[test]
    fn single_version() {
        let h = history(&[("2020-06-01 00:00:00 +0000", "CREATE TABLE a (x INT, y INT);")]);
        let s = schema_size_series(&h);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].attributes, 2);
    }

    #[test]
    fn shrinkage_is_negative_growth() {
        let h = history(&[
            (
                "2020-01-01 00:00:00 +0000",
                "CREATE TABLE a (x INT, y INT); CREATE TABLE b (z INT);",
            ),
            ("2020-02-01 00:00:00 +0000", "CREATE TABLE a (x INT);"),
        ]);
        assert_eq!(net_growth(&h), (-2, -1));
    }

    #[test]
    fn size_series_feeds_regression() {
        // Steady growth: 1 attribute per month.
        let mut texts = Vec::new();
        let mut cols = String::from("c0 INT");
        for m in 0..6 {
            texts.push((
                format!("2020-{:02}-10 00:00:00 +0000", m + 1),
                format!("CREATE TABLE t ({cols});"),
            ));
            cols.push_str(&format!(", c{} INT", m + 1));
        }
        let h = SchemaHistory::from_ddl_texts(
            texts.iter().map(|(d, s)| (DateTime::parse(d).unwrap(), s.as_str())),
            Dialect::Generic,
        )
        .unwrap()
        .unwrap();
        let series = schema_size_series(&h);
        let xs: Vec<f64> = (0..series.len()).map(|i| i as f64).collect();
        let ys: Vec<f64> = series.iter().map(|p| p.attributes as f64).collect();
        let fit = coevo_stats::linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 1.0).abs() < 1e-9, "slope {}", fit.slope);
        assert!(fit.r_squared > 0.999);
    }
}
