//! Attribute-level diff of two versions of the *same* table.

use crate::changes::{AttributeChange, TableDelta, TableFate};
use crate::schema_diff::MatchPolicy;
use coevo_ddl::{Table, TableSeal};
use std::collections::BTreeMap;

/// Case-folded column keys of one table side: borrowed from the parse-time
/// seal when available, built once per diff (not once per column, as the
/// pre-refactor code did) otherwise. Either way, matchers downstream see
/// `&str` and never allocate.
enum ColumnKeys<'a> {
    Sealed(&'a TableSeal),
    Built { folded: Vec<String>, by_key: BTreeMap<String, usize> },
}

impl<'a> ColumnKeys<'a> {
    fn of(t: &'a Table) -> Self {
        match t.seal_data() {
            Some(seal) => {
                // A seal always describes the current structure — every &mut
                // accessor drops it. This trips if a caller mutated `pub`
                // fields of a sealed table without `unseal()`.
                debug_assert_eq!(seal.len(), t.columns.len(), "stale seal on {}", t.name);
                Self::Sealed(seal)
            }
            None => {
                let folded: Vec<String> =
                    t.columns.iter().map(|c| c.key().to_string()).collect();
                let by_key = folded.iter().enumerate().map(|(i, k)| (k.clone(), i)).collect();
                Self::Built { folded, by_key }
            }
        }
    }

    /// The folded key of column `i` (declaration order).
    fn key(&self, i: usize) -> &str {
        match self {
            Self::Sealed(seal) => seal.column_key(i),
            Self::Built { folded, .. } => &folded[i],
        }
    }

    /// Index of the column with the given folded key (last declaration wins
    /// on duplicates, matching the legacy map-collect semantics).
    fn index_of(&self, key: &str) -> Option<usize> {
        match self {
            Self::Sealed(seal) => seal.column_index(key),
            Self::Built { by_key, .. } => by_key.get(key).copied(),
        }
    }
}

/// How the two sides' columns are matched. When both tables were sealed under
/// the *same live interner* (the engine's per-project [`coevo_ddl::ParseCache`]
/// guarantees this for every version of one history), two names fold equal
/// exactly when their symbols are equal, so matching and key-participation
/// checks degrade to integer comparisons with zero allocation. Any other
/// pairing — unsealed tables, hand-built tables, schemas parsed through
/// different interners — takes the case-folded string path, which is
/// byte-for-byte the pre-interning algorithm.
enum Matcher<'a> {
    Syms { old: &'a TableSeal, new: &'a TableSeal, old_pk: &'a [u32], new_pk: &'a [u32] },
    Strs { old: ColumnKeys<'a>, new: ColumnKeys<'a>, old_pk: Vec<String>, new_pk: Vec<String> },
}

impl<'a> Matcher<'a> {
    fn of(old: &'a Table, new: &'a Table) -> Self {
        if let (Some(a), Some(b)) = (old.seal_data(), new.seal_data()) {
            // Symbols are comparable only within one interner (id 0 means
            // "uninterned"), and pk_syms is None when a PK names a column the
            // table never declared — that case keeps string semantics.
            if a.interner_id() != 0 && a.interner_id() == b.interner_id() {
                if let (Some(old_pk), Some(new_pk)) = (a.pk_syms(), b.pk_syms()) {
                    debug_assert_eq!(a.len(), old.columns.len(), "stale seal on {}", old.name);
                    debug_assert_eq!(b.len(), new.columns.len(), "stale seal on {}", new.name);
                    return Self::Syms { old: a, new: b, old_pk, new_pk };
                }
            }
        }
        Self::Strs {
            old: ColumnKeys::of(old),
            new: ColumnKeys::of(new),
            old_pk: old.primary_key(),
            new_pk: new.primary_key(),
        }
    }

    /// Index in `new` of the column matching old column `i`.
    fn match_in_new(&self, i: usize) -> Option<usize> {
        match self {
            Self::Syms { old, new, .. } => new.column_index_by_sym(old.column_sym(i)),
            Self::Strs { old, new, .. } => new.index_of(old.key(i)),
        }
    }

    /// Index in `old` of the column matching new column `j`.
    fn match_in_old(&self, j: usize) -> Option<usize> {
        match self {
            Self::Syms { old, new, .. } => old.column_index_by_sym(new.column_sym(j)),
            Self::Strs { old, new, .. } => old.index_of(new.key(j)),
        }
    }

    /// Primary-key participation of old column `i`.
    fn old_in_key(&self, i: usize) -> bool {
        match self {
            Self::Syms { old, old_pk, .. } => old_pk.contains(&old.column_sym(i).0),
            Self::Strs { old, old_pk, .. } => old_pk.iter().any(|p| p == old.key(i)),
        }
    }

    /// Primary-key participation of new column `j`.
    fn new_in_key(&self, j: usize) -> bool {
        match self {
            Self::Syms { new, new_pk, .. } => new_pk.contains(&new.column_sym(j).0),
            Self::Strs { new, new_pk, .. } => new_pk.iter().any(|p| p == new.key(j)),
        }
    }
}

/// Diff two versions of a surviving table into attribute-level changes.
///
/// Attributes are matched by case-insensitive name (the paper's policy).
/// Under [`MatchPolicy::RenameDetection`], unmatched old/new attribute pairs
/// are additionally run through the scored matcher of [`crate::rename`] and
/// recognized as renames — an ablation of the matching construct, not the
/// paper's accounting.
pub fn diff_tables(old: &Table, new: &Table, policy: MatchPolicy) -> TableDelta {
    let matcher = Matcher::of(old, new);

    let mut changes = Vec::new();
    let mut ejected: Vec<usize> = Vec::new();
    let mut injected: Vec<usize> = Vec::new();

    // Survivors: type and key changes. Iterate in old declaration order for
    // deterministic output.
    for (i, col) in old.columns.iter().enumerate() {
        match matcher.match_in_new(i) {
            Some(j) => {
                let new_col = &new.columns[j];
                if !col.sql_type.equivalent(&new_col.sql_type) {
                    changes.push(AttributeChange::TypeChanged {
                        name: new_col.name.to_string(),
                        from: col.sql_type.clone(),
                        to: new_col.sql_type.clone(),
                    });
                }
                let was_in_key = matcher.old_in_key(i);
                let now_in_key = matcher.new_in_key(j);
                if was_in_key != now_in_key {
                    changes.push(AttributeChange::KeyChanged {
                        name: new_col.name.to_string(),
                        now_in_key,
                    });
                }
            }
            None => ejected.push(i),
        }
    }
    for (j, _col) in new.columns.iter().enumerate() {
        if matcher.match_in_old(j).is_none() {
            injected.push(j);
        }
    }

    if let MatchPolicy::RenameDetection { threshold } = policy {
        // The scored matcher pairs best-score-first with deterministic
        // tie-breaks, so ambiguous candidates never depend on declaration
        // order (the naive first-match-wins pairing did).
        crate::rename::apply_rename_pairing(
            old,
            new,
            &mut ejected,
            &mut injected,
            &mut changes,
            threshold,
        );
    }

    for i in ejected {
        changes.push(AttributeChange::Ejected {
            name: old.columns[i].name.to_string(),
            sql_type: old.columns[i].sql_type.clone(),
        });
    }
    for j in injected {
        changes.push(AttributeChange::Injected {
            name: new.columns[j].name.to_string(),
            sql_type: new.columns[j].sql_type.clone(),
        });
    }

    TableDelta {
        table: new.name.to_string(),
        fate: TableFate::Survived,
        changes,
        attribute_count: 0,
    }
}

/// The pre-refactor attribute-level diff, preserved verbatim as the oracle
/// for the differential tests: it re-lowercases every column name on each
/// lookup and rebuilds both key maps per call. The rename step is the one
/// exception to "verbatim": both paths call the *same* scored pairing, so
/// rename-aware outputs stay comparable bit-for-bit.
pub fn diff_tables_legacy(old: &Table, new: &Table, policy: MatchPolicy) -> TableDelta {
    let old_by_key: BTreeMap<String, usize> =
        old.columns.iter().enumerate().map(|(i, c)| (c.key().to_string(), i)).collect();
    let new_by_key: BTreeMap<String, usize> =
        new.columns.iter().enumerate().map(|(i, c)| (c.key().to_string(), i)).collect();

    let old_pk = old.primary_key();
    let new_pk = new.primary_key();

    let mut changes = Vec::new();
    let mut ejected: Vec<usize> = Vec::new();
    let mut injected: Vec<usize> = Vec::new();

    // Survivors: type and key changes. Iterate in old declaration order for
    // deterministic output.
    for (i, col) in old.columns.iter().enumerate() {
        match new_by_key.get(col.key()) {
            Some(&j) => {
                let new_col = &new.columns[j];
                if !col.sql_type.equivalent(&new_col.sql_type) {
                    changes.push(AttributeChange::TypeChanged {
                        name: new_col.name.to_string(),
                        from: col.sql_type.clone(),
                        to: new_col.sql_type.clone(),
                    });
                }
                let was_in_key = old_pk.iter().any(|p| p == col.key());
                let now_in_key = new_pk.iter().any(|p| p == new_col.key());
                if was_in_key != now_in_key {
                    changes.push(AttributeChange::KeyChanged {
                        name: new_col.name.to_string(),
                        now_in_key,
                    });
                }
            }
            None => ejected.push(i),
        }
    }
    for (j, col) in new.columns.iter().enumerate() {
        if !old_by_key.contains_key(col.key()) {
            injected.push(j);
        }
    }

    if let MatchPolicy::RenameDetection { threshold } = policy {
        crate::rename::apply_rename_pairing(
            old,
            new,
            &mut ejected,
            &mut injected,
            &mut changes,
            threshold,
        );
    }

    for i in ejected {
        changes.push(AttributeChange::Ejected {
            name: old.columns[i].name.to_string(),
            sql_type: old.columns[i].sql_type.clone(),
        });
    }
    for j in injected {
        changes.push(AttributeChange::Injected {
            name: new.columns[j].name.to_string(),
            sql_type: new.columns[j].sql_type.clone(),
        });
    }

    TableDelta {
        table: new.name.to_string(),
        fate: TableFate::Survived,
        changes,
        attribute_count: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coevo_ddl::{parse_schema, Dialect};

    fn table(sql: &str) -> Table {
        parse_schema(sql, Dialect::Generic).unwrap().tables.into_iter().next().unwrap()
    }

    #[test]
    fn identical_tables_no_changes() {
        let t = table("CREATE TABLE t (a INT, b VARCHAR(10));");
        let d = diff_tables(&t, &t, MatchPolicy::ByName);
        assert!(d.changes.is_empty());
    }

    #[test]
    fn injection_and_ejection() {
        let old = table("CREATE TABLE t (a INT, b INT);");
        let new = table("CREATE TABLE t (a INT, c INT);");
        let d = diff_tables(&old, &new, MatchPolicy::ByName);
        assert_eq!(d.changes.len(), 2);
        assert!(d
            .changes
            .iter()
            .any(|c| matches!(c, AttributeChange::Ejected { name, .. } if name == "b")));
        assert!(d
            .changes
            .iter()
            .any(|c| matches!(c, AttributeChange::Injected { name, .. } if name == "c")));
    }

    #[test]
    fn type_change() {
        let old = table("CREATE TABLE t (a INT);");
        let new = table("CREATE TABLE t (a BIGINT);");
        let d = diff_tables(&old, &new, MatchPolicy::ByName);
        assert_eq!(d.changes.len(), 1);
        assert!(matches!(
            &d.changes[0],
            AttributeChange::TypeChanged { name, from, to }
                if name == "a" && from.name == "INT" && to.name == "BIGINT"
        ));
    }

    #[test]
    fn varchar_length_change_is_type_change() {
        let old = table("CREATE TABLE t (a VARCHAR(50));");
        let new = table("CREATE TABLE t (a VARCHAR(100));");
        let d = diff_tables(&old, &new, MatchPolicy::ByName);
        assert_eq!(d.changes.len(), 1);
        assert!(matches!(&d.changes[0], AttributeChange::TypeChanged { .. }));
    }

    #[test]
    fn key_participation_change() {
        let old = table("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a));");
        let new = table("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b));");
        let d = diff_tables(&old, &new, MatchPolicy::ByName);
        assert_eq!(d.changes.len(), 1);
        assert!(matches!(
            &d.changes[0],
            AttributeChange::KeyChanged { name, now_in_key: true } if name == "b"
        ));
    }

    #[test]
    fn key_removal_counts_per_attribute() {
        let old = table("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b));");
        let new = table("CREATE TABLE t (a INT, b INT);");
        let d = diff_tables(&old, &new, MatchPolicy::ByName);
        assert_eq!(d.changes.len(), 2);
        assert!(d
            .changes
            .iter()
            .all(|c| matches!(c, AttributeChange::KeyChanged { now_in_key: false, .. })));
    }

    #[test]
    fn case_insensitive_matching() {
        let old = table("CREATE TABLE t (UserID INT);");
        let new = table("CREATE TABLE t (userid INT);");
        let d = diff_tables(&old, &new, MatchPolicy::ByName);
        assert!(d.changes.is_empty());
    }

    #[test]
    fn nullability_change_is_not_activity() {
        // The paper's six categories do not include nullability; NOT NULL flips
        // must not create activity.
        let old = table("CREATE TABLE t (a INT);");
        let new = table("CREATE TABLE t (a INT NOT NULL);");
        let d = diff_tables(&old, &new, MatchPolicy::ByName);
        assert!(d.changes.is_empty());
    }

    #[test]
    fn rename_detection_pairs_same_type() {
        let old = table("CREATE TABLE t (user_name VARCHAR(40), age INT);");
        let new = table("CREATE TABLE t (username VARCHAR(40), age INT);");
        let by_name = diff_tables(&old, &new, MatchPolicy::ByName);
        assert_eq!(by_name.changes.len(), 2); // eject + inject
        let with_rename = diff_tables(&old, &new, MatchPolicy::rename_detection());
        assert_eq!(with_rename.changes.len(), 1);
        assert!(matches!(
            &with_rename.changes[0],
            AttributeChange::Renamed { from, to, .. } if from == "user_name" && to == "username"
        ));
    }

    #[test]
    fn rename_detection_rejects_cross_family_types() {
        let old = table("CREATE TABLE t (amount INT);");
        let new = table("CREATE TABLE t (amounts TEXT);");
        let d = diff_tables(&old, &new, MatchPolicy::rename_detection());
        assert_eq!(d.changes.len(), 2); // incomparable families never pair
    }

    #[test]
    fn rename_detection_rejects_dissimilar_names() {
        // Same type, same position — but the names share nothing, so the
        // composite score stays under the default threshold.
        let old = table("CREATE TABLE t (total_price INT);");
        let new = table("CREATE TABLE t (batch_code INT);");
        let d = diff_tables(&old, &new, MatchPolicy::rename_detection());
        assert_eq!(d.changes.len(), 2);
        // At threshold 0 the same pair is accepted: the knob is live.
        let d = diff_tables(&old, &new, MatchPolicy::rename_detection_with(0.0));
        assert_eq!(d.changes.len(), 1);
        assert!(matches!(&d.changes[0], AttributeChange::Renamed { .. }));
    }

    #[test]
    fn rename_plus_retype_along_a_ladder_pairs_with_a_type_change() {
        let old = table("CREATE TABLE t (unit_count INT, other TEXT);");
        let new = table("CREATE TABLE t (unit_counts BIGINT, other TEXT);");
        let d = diff_tables(&old, &new, MatchPolicy::rename_detection());
        assert_eq!(d.changes.len(), 2);
        assert!(matches!(
            &d.changes[0],
            AttributeChange::Renamed { from, to, .. }
                if from == "unit_count" && to == "unit_counts"
        ));
        assert!(matches!(
            &d.changes[1],
            AttributeChange::TypeChanged { name, .. } if name == "unit_counts"
        ));
    }

    #[test]
    fn ambiguous_rename_is_independent_of_declaration_order() {
        // Two ejected INT columns compete for one injected INT column. The
        // naive first-match-wins pairing bound whichever was declared first;
        // the scorer must bind `unit_count` → `unit_counts` in both orders.
        let fwd_old = table("CREATE TABLE t (total_price INT, unit_count INT, keep TEXT);");
        let rev_old = table("CREATE TABLE t (unit_count INT, total_price INT, keep TEXT);");
        let new = table("CREATE TABLE t (unit_counts INT, keep TEXT);");
        for old in [&fwd_old, &rev_old] {
            let d = diff_tables(old, &new, MatchPolicy::rename_detection());
            let renamed: Vec<_> = d
                .changes
                .iter()
                .filter_map(|c| match c {
                    AttributeChange::Renamed { from, to, .. } => {
                        Some((from.clone(), to.clone()))
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(
                renamed,
                vec![("unit_count".to_string(), "unit_counts".to_string())],
                "declaration order changed the pairing"
            );
            assert!(d.changes.iter().any(
                |c| matches!(c, AttributeChange::Ejected { name, .. } if name == "total_price")
            ));
        }
    }

    #[test]
    fn legacy_and_incremental_agree_on_renames() {
        let old = table("CREATE TABLE t (user_name VARCHAR(40), total_price INT, a TEXT);");
        let new =
            table("CREATE TABLE t (username VARCHAR(40), total_price_cents INT, b TEXT);");
        for policy in [
            MatchPolicy::ByName,
            MatchPolicy::rename_detection(),
            MatchPolicy::rename_detection_with(0.0),
            MatchPolicy::rename_detection_with(1.0),
        ] {
            assert_eq!(
                diff_tables(&old, &new, policy),
                diff_tables_legacy(&old, &new, policy),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn simultaneous_type_and_key_change() {
        let old = table("CREATE TABLE t (a INT);");
        let new = table("CREATE TABLE t (a BIGINT PRIMARY KEY);");
        let d = diff_tables(&old, &new, MatchPolicy::ByName);
        assert_eq!(d.changes.len(), 2);
    }

    #[test]
    fn column_reorder_is_not_activity() {
        let old = table("CREATE TABLE t (a INT, b TEXT);");
        let new = table("CREATE TABLE t (b TEXT, a INT);");
        let d = diff_tables(&old, &new, MatchPolicy::ByName);
        assert!(d.changes.is_empty());
    }
}
