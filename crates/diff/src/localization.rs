//! Change localization: *where* in the schema does evolution concentrate?
//!
//! Qiu et al. (cited as \[24\] in the paper) report that schema change is
//! local in space: "60%–90% of changes refer to 20% of the tables and nearly
//! 40% of schema tables did not change". This module derives the same
//! statistics from a [`SchemaHistory`]: per-table activity over the
//! post-birth deltas, the share of activity carried by the busiest 20% of
//! tables, the fraction of never-changed tables, and a Gini concentration
//! coefficient.

use crate::changes::TableFate;
use crate::history::SchemaHistory;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Localization statistics for one schema history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChangeLocalization {
    /// Post-birth activity per table (lowercased name), descending.
    pub per_table: Vec<(String, u64)>,
    /// Number of tables that ever existed in the history.
    pub tables_seen: usize,
    /// Fraction of tables with zero post-birth activity.
    pub untouched_fraction: f64,
    /// Share of total post-birth activity carried by the busiest 20% of
    /// tables (rounded up). 0 when there is no post-birth activity.
    pub top20_share: f64,
    /// Gini coefficient of the per-table activity distribution (0 = evenly
    /// spread, → 1 = concentrated in one table). 0 when there is no
    /// activity.
    pub gini: f64,
}

/// Compute localization statistics over the post-birth deltas of a history.
pub fn change_localization(history: &SchemaHistory) -> ChangeLocalization {
    // Universe: every table key appearing in any version.
    let mut universe: BTreeMap<String, u64> = BTreeMap::new();
    for v in history.versions() {
        for t in &v.schema.tables {
            universe.entry(t.key().to_string()).or_insert(0);
        }
    }
    // Post-birth activity attribution (delta 0 is the creation).
    for vd in history.deltas().iter().skip(1) {
        for td in &vd.delta.tables {
            let key = td.table.to_ascii_lowercase();
            let amount = match td.fate {
                TableFate::Created | TableFate::Dropped => td.attribute_count as u64,
                TableFate::Survived => td.changes.len() as u64,
            };
            *universe.entry(key).or_insert(0) += amount;
        }
    }

    let tables_seen = universe.len();
    let mut per_table: Vec<(String, u64)> = universe.into_iter().collect();
    per_table.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    let total: u64 = per_table.iter().map(|(_, a)| a).sum();
    let untouched = per_table.iter().filter(|(_, a)| *a == 0).count();
    let untouched_fraction =
        if tables_seen == 0 { 0.0 } else { untouched as f64 / tables_seen as f64 };

    let top_n = (tables_seen as f64 * 0.2).ceil() as usize;
    let top20: u64 = per_table.iter().take(top_n).map(|(_, a)| a).sum();
    let top20_share = if total == 0 { 0.0 } else { top20 as f64 / total as f64 };

    ChangeLocalization {
        gini: gini_coefficient(&per_table.iter().map(|(_, a)| *a).collect::<Vec<_>>()),
        per_table,
        tables_seen,
        untouched_fraction,
        top20_share,
    }
}

/// Gini coefficient of a non-negative sample; 0 for empty/all-zero input.
pub fn gini_coefficient(values: &[u64]) -> f64 {
    let n = values.len();
    let total: u64 = values.iter().sum();
    if n == 0 || total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = values.to_vec();
    sorted.sort_unstable();
    // G = (2·Σ i·x_(i) / (n·Σx)) − (n+1)/n, with 1-based i over ascending x.
    let weighted: f64 =
        sorted.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * x as f64).sum();
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::SchemaHistory;
    use coevo_ddl::Dialect;
    use coevo_heartbeat::DateTime;

    fn dt(s: &str) -> DateTime {
        DateTime::parse(s).unwrap()
    }

    fn history(texts: &[(&str, &str)]) -> SchemaHistory {
        SchemaHistory::from_ddl_texts(
            texts.iter().map(|(d, sql)| (dt(d), *sql)),
            Dialect::Generic,
        )
        .unwrap()
        .unwrap()
    }

    #[test]
    fn concentrated_change() {
        // Three tables; all post-birth change hits table `hot`.
        let h = history(&[
            (
                "2020-01-01 00:00:00 +0000",
                "CREATE TABLE hot (a INT); CREATE TABLE cold1 (b INT); CREATE TABLE cold2 (c INT);",
            ),
            (
                "2020-02-01 00:00:00 +0000",
                "CREATE TABLE hot (a INT, x INT); CREATE TABLE cold1 (b INT); CREATE TABLE cold2 (c INT);",
            ),
            (
                "2020-03-01 00:00:00 +0000",
                "CREATE TABLE hot (a INT, x INT, y INT, z INT); CREATE TABLE cold1 (b INT); CREATE TABLE cold2 (c INT);",
            ),
        ]);
        let loc = change_localization(&h);
        assert_eq!(loc.tables_seen, 3);
        assert_eq!(loc.per_table[0], ("hot".to_string(), 3));
        // 2 of 3 tables never changed.
        assert!((loc.untouched_fraction - 2.0 / 3.0).abs() < 1e-12);
        // ceil(0.6) = 1 table = all activity.
        assert!((loc.top20_share - 1.0).abs() < 1e-12);
        assert!(loc.gini > 0.5);
    }

    #[test]
    fn even_change_low_gini() {
        let h = history(&[
            ("2020-01-01 00:00:00 +0000", "CREATE TABLE a (x INT); CREATE TABLE b (y INT);"),
            (
                "2020-02-01 00:00:00 +0000",
                "CREATE TABLE a (x INT, x2 INT); CREATE TABLE b (y INT, y2 INT);",
            ),
        ]);
        let loc = change_localization(&h);
        assert_eq!(loc.untouched_fraction, 0.0);
        assert!(loc.gini < 0.01, "gini {}", loc.gini);
    }

    #[test]
    fn dropped_tables_attributed() {
        let h = history(&[
            (
                "2020-01-01 00:00:00 +0000",
                "CREATE TABLE a (x INT); CREATE TABLE b (y INT, z INT);",
            ),
            ("2020-02-01 00:00:00 +0000", "CREATE TABLE a (x INT);"),
        ]);
        let loc = change_localization(&h);
        let b = loc.per_table.iter().find(|(n, _)| n == "b").unwrap();
        assert_eq!(b.1, 2); // two attributes died with the table
    }

    #[test]
    fn frozen_history_all_untouched() {
        let h = history(&[("2020-01-01 00:00:00 +0000", "CREATE TABLE a (x INT);")]);
        let loc = change_localization(&h);
        assert_eq!(loc.untouched_fraction, 1.0);
        assert_eq!(loc.top20_share, 0.0);
        assert_eq!(loc.gini, 0.0);
    }

    #[test]
    fn gini_known_values() {
        assert_eq!(gini_coefficient(&[]), 0.0);
        assert_eq!(gini_coefficient(&[0, 0]), 0.0);
        assert!((gini_coefficient(&[5, 5, 5, 5])).abs() < 1e-12);
        // All mass in one of n: G = (n−1)/n.
        let g = gini_coefficient(&[0, 0, 0, 12]);
        assert!((g - 0.75).abs() < 1e-12, "{g}");
        // Hand-computed: [1,3]: G = 2·(1·1+2·3)/(2·4) − 3/2 = 14/8 − 1.5 = 0.25.
        assert!((gini_coefficient(&[1, 3]) - 0.25).abs() < 1e-12);
    }
}
