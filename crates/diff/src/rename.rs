//! Scored column-rename detection: pair ejected and injected attributes of
//! a surviving table by a composite similarity score.
//!
//! The paper's by-name matching reports a renamed attribute as one ejection
//! plus one injection. Under [`crate::MatchPolicy::RenameDetection`] this
//! module additionally pairs unmatched old/new attributes whose composite
//! score clears a confidence threshold, following the column-matching
//! methodology of statistically validated rename studies: every component is
//! a from-scratch, dependency-free metric, and the whole matcher is
//! validated against generator-planted ground truth by `coevo-oracle`.
//!
//! # Scoring
//!
//! For an ejected column *o* and an injected column *n* of the same table:
//!
//! ```text
//! score(o, n) = 0.60 · name(o, n) + 0.25 · type(o, n) + 0.15 · pos(o, n)
//! ```
//!
//! - **name** — the mean of bigram Dice similarity and Jaro-Winkler
//!   similarity over the case-folded column keys;
//! - **type** — `1.0` for equivalent types, [`SAME_FAMILY_TYPE_SCORE`] when
//!   the types sit on one widening ladder (see [`type_transition`]), and a
//!   *disqualifier* for incomparable families: a column that changed its
//!   name **and** crossed type families is never a rename;
//! - **pos** — ordinal proximity in the declared column list, normalized by
//!   the larger column count.
//!
//! # Assignment
//!
//! Candidate pairs at or above the threshold are resolved best-score-first:
//! edges are sorted by descending score with deterministic lexicographic
//! name tie-breaks, then greedily accepted while both endpoints are free.
//! Two properties follow by construction and are enforced by the rename
//! oracle family:
//!
//! - **threshold monotonicity** — the edge order is threshold-independent,
//!   so raising the threshold only truncates a suffix of the candidate
//!   list; the surviving prefix decisions are unchanged and the match set
//!   under a higher threshold is a subset of the one under a lower;
//! - **permutation determinism** — ties break on column *keys*, never on
//!   enumeration order, so shuffling the candidate lists cannot change the
//!   assignment. (Declared column position is a genuine scoring signal, so
//!   *reordering columns* is a semantic input change; reordering *tables*
//!   never is.)

use crate::changes::AttributeChange;
use coevo_ddl::{SqlType, Table};

/// The default confidence threshold of `MatchPolicy::RenameDetection`:
/// unrelated same-type columns at equal positions score ≈ 0.45, genuine
/// renames ≥ 0.75 on the planted corpora, so 0.6 splits them with margin.
pub const DEFAULT_RENAME_THRESHOLD: f64 = 0.6;

/// Weight of the name-similarity component.
const NAME_WEIGHT: f64 = 0.60;
/// Weight of the type-compatibility component.
const TYPE_WEIGHT: f64 = 0.25;
/// Weight of the positional-evidence component.
const POS_WEIGHT: f64 = 0.15;

/// Type score for a same-family (widened or narrowed) transition — a
/// rename+retype along one ladder is still a plausible rename.
pub const SAME_FAMILY_TYPE_SCORE: f64 = 0.6;

/// How a type change compares within the widening partial order. This is
/// the single source of truth for the widening ladders: `coevo-compat`'s
/// rule table classifies with it, and the rename scorer reuses it as its
/// type-compatibility evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeTransition {
    /// Strictly wider within one family: every old value still fits.
    Widened,
    /// Same family, not wider: values can be truncated or rejected.
    Narrowed,
    /// Different families: nothing can be promised.
    Incomparable,
}

/// Integer family rank; `None` for non-integer types.
pub fn int_rank(name: &str) -> Option<u8> {
    match name {
        "TINYINT" => Some(1),
        "SMALLINT" => Some(2),
        "MEDIUMINT" => Some(3),
        "INT" | "INTEGER" => Some(4),
        "BIGINT" => Some(5),
        _ => None,
    }
}

/// Character family rank; parameterized lengths compare within one rank.
pub fn char_rank(name: &str) -> Option<u8> {
    match name {
        "CHAR" => Some(1),
        "VARCHAR" => Some(2),
        "TEXT" | "MEDIUMTEXT" | "LONGTEXT" | "CLOB" => Some(3),
        _ => None,
    }
}

fn first_param(t: &SqlType) -> Option<u64> {
    t.params.first().and_then(|p| p.as_str().parse().ok())
}

/// Classify a type change. Widening is only claimed when it is provable
/// from the names and parameters; everything else is conservative.
pub fn type_transition(from: &SqlType, to: &SqlType) -> TypeTransition {
    let (f, t) = (from.name.key().to_ascii_uppercase(), to.name.key().to_ascii_uppercase());
    if from.modifiers != to.modifiers {
        return TypeTransition::Incomparable; // UNSIGNED flips change the domain
    }
    if let (Some(rf), Some(rt)) = (int_rank(&f), int_rank(&t)) {
        return if rt > rf { TypeTransition::Widened } else { TypeTransition::Narrowed };
    }
    if let (Some(rf), Some(rt)) = (char_rank(&f), char_rank(&t)) {
        return match rt.cmp(&rf) {
            std::cmp::Ordering::Greater => TypeTransition::Widened,
            std::cmp::Ordering::Less => TypeTransition::Narrowed,
            std::cmp::Ordering::Equal => {
                // Same kind: compare declared lengths (absent = unbounded
                // only for the TEXT rank, which has no parameters anyway).
                match (first_param(from), first_param(to)) {
                    (Some(a), Some(b)) if b > a => TypeTransition::Widened,
                    (Some(_), Some(_)) => TypeTransition::Narrowed,
                    _ => TypeTransition::Narrowed,
                }
            }
        };
    }
    if f == "DECIMAL" && t == "DECIMAL" || f == "NUMERIC" && t == "NUMERIC" {
        let precision = |ty: &SqlType, i: usize| {
            ty.params.get(i).and_then(|p| p.as_str().parse::<u64>().ok()).unwrap_or(0)
        };
        let wider = precision(to, 0) >= precision(from, 0)
            && precision(to, 1) >= precision(from, 1)
            && (precision(to, 0) > precision(from, 0) || precision(to, 1) > precision(from, 1));
        return if wider { TypeTransition::Widened } else { TypeTransition::Narrowed };
    }
    TypeTransition::Incomparable
}

/// Dice coefficient over character bigrams of the two (pre-folded) strings:
/// `2·|A ∩ B| / (|A| + |B|)` with multiset intersection. Strings shorter
/// than two characters have no bigrams; two such strings compare by
/// equality.
pub fn bigram_dice(a: &str, b: &str) -> f64 {
    let bigrams = |s: &str| {
        let chars: Vec<char> = s.chars().collect();
        let mut out: Vec<[char; 2]> = chars.windows(2).map(|w| [w[0], w[1]]).collect();
        out.sort_unstable();
        out
    };
    let (mut xs, ys) = (bigrams(a), bigrams(b));
    if xs.is_empty() && ys.is_empty() {
        return if a == b { 1.0 } else { 0.0 };
    }
    if xs.is_empty() || ys.is_empty() {
        return 0.0;
    }
    let total = xs.len() + ys.len();
    let mut common = 0usize;
    // Multiset intersection: consume one x per matching y.
    for y in &ys {
        if let Ok(pos) = xs.binary_search(y) {
            xs.remove(pos);
            common += 1;
        }
    }
    2.0 * common as f64 / total as f64
}

/// Jaro similarity of two strings, the base of Jaro-Winkler.
fn jaro(a: &[char], b: &[char]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_taken = vec![false; b.len()];
    let mut a_matched = vec![false; a.len()];
    let mut matches = 0usize;
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_taken[j] && b[j] == ca {
                b_taken[j] = true;
                a_matched[i] = true;
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Transpositions: matched characters of both sides, in order.
    let a_seq: Vec<char> =
        a.iter().zip(&a_matched).filter(|(_, &m)| m).map(|(&c, _)| c).collect();
    let b_seq: Vec<char> =
        b.iter().zip(&b_taken).filter(|(_, &m)| m).map(|(&c, _)| c).collect();
    let transposed = a_seq.iter().zip(&b_seq).filter(|(x, y)| x != y).count();
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transposed as f64 / 2.0) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by up to four characters of common
/// prefix when the base similarity already exceeds 0.7.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let (ac, bc): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let base = jaro(&ac, &bc);
    if base <= 0.7 {
        return base;
    }
    let prefix = ac.iter().zip(&bc).take(4).take_while(|(x, y)| x == y).count();
    base + prefix as f64 * 0.1 * (1.0 - base)
}

/// Name similarity: the mean of the two metrics, on case-folded keys.
fn name_similarity(a: &str, b: &str) -> f64 {
    (bigram_dice(a, b) + jaro_winkler(a, b)) / 2.0
}

/// One side of a potential rename pair: the case-folded key, the declared
/// type, and the declared ordinal in its column list.
#[derive(Debug, Clone)]
pub struct RenameField<'a> {
    /// Case-folded column key (the matcher's identity).
    pub key: &'a str,
    /// The declared SQL type.
    pub sql_type: &'a SqlType,
    /// Declared position in the column list.
    pub ordinal: usize,
}

/// The composite score of one old/new pair, or `None` when the pair is
/// disqualified (incomparable type families). `old_len`/`new_len` are the
/// two sides' total column counts, normalizing the positional component.
pub fn rename_score(
    old: &RenameField<'_>,
    new: &RenameField<'_>,
    old_len: usize,
    new_len: usize,
) -> Option<f64> {
    let type_score = if old.sql_type.equivalent(new.sql_type) {
        1.0
    } else {
        match type_transition(old.sql_type, new.sql_type) {
            TypeTransition::Widened | TypeTransition::Narrowed => SAME_FAMILY_TYPE_SCORE,
            TypeTransition::Incomparable => return None,
        }
    };
    let span = old_len.max(new_len).max(1) as f64;
    let pos_score = 1.0 - (old.ordinal as f64 - new.ordinal as f64).abs() / span;
    let name_score = name_similarity(old.key, new.key);
    Some(NAME_WEIGHT * name_score + TYPE_WEIGHT * type_score + POS_WEIGHT * pos_score)
}

/// Pair ejected (`old`) against injected (`new`) fields: every candidate
/// edge at or above `threshold` enters a best-score-first greedy assignment.
/// Returns `(old_slice_index, new_slice_index)` pairs sorted by the old
/// field's ordinal. Deterministic under any permutation of either input
/// slice: ordering depends only on scores and keys.
pub fn pair_renames(
    old: &[RenameField<'_>],
    new: &[RenameField<'_>],
    old_len: usize,
    new_len: usize,
    threshold: f64,
) -> Vec<(usize, usize)> {
    let mut edges: Vec<(f64, usize, usize)> = Vec::new();
    for (i, o) in old.iter().enumerate() {
        for (j, n) in new.iter().enumerate() {
            if let Some(score) = rename_score(o, n, old_len, new_len) {
                if score >= threshold {
                    edges.push((score, i, j));
                }
            }
        }
    }
    // Descending score; ties break on the pair's keys (then ordinals for
    // pathological duplicate-key tables), never on enumeration order.
    edges.sort_by(|a, b| {
        b.0.total_cmp(&a.0)
            .then_with(|| old[a.1].key.cmp(old[b.1].key))
            .then_with(|| new[a.2].key.cmp(new[b.2].key))
            .then_with(|| old[a.1].ordinal.cmp(&old[b.1].ordinal))
            .then_with(|| new[a.2].ordinal.cmp(&new[b.2].ordinal))
    });
    let mut old_used = vec![false; old.len()];
    let mut new_used = vec![false; new.len()];
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for (_, i, j) in edges {
        if !old_used[i] && !new_used[j] {
            old_used[i] = true;
            new_used[j] = true;
            pairs.push((i, j));
        }
    }
    pairs.sort_by_key(|&(i, _)| old[i].ordinal);
    pairs
}

/// The shared rename step of [`crate::diff_tables`] and
/// [`crate::diff_tables_legacy`]: pair the ejected/injected column indices
/// of a surviving-table diff, emit [`AttributeChange::Renamed`] (plus a
/// [`AttributeChange::TypeChanged`] when the pair also retyped along a
/// ladder) for each accepted pair, and drop the paired indices from the
/// eject/inject lists. Both diff paths call exactly this function, so the
/// incremental and legacy outputs stay bit-identical under every policy.
pub(crate) fn apply_rename_pairing(
    old: &Table,
    new: &Table,
    ejected: &mut Vec<usize>,
    injected: &mut Vec<usize>,
    changes: &mut Vec<AttributeChange>,
    threshold: f64,
) {
    if ejected.is_empty() || injected.is_empty() {
        return;
    }
    let old_fields: Vec<RenameField<'_>> = ejected
        .iter()
        .map(|&i| RenameField {
            key: old.columns[i].key(),
            sql_type: &old.columns[i].sql_type,
            ordinal: i,
        })
        .collect();
    let new_fields: Vec<RenameField<'_>> = injected
        .iter()
        .map(|&j| RenameField {
            key: new.columns[j].key(),
            sql_type: &new.columns[j].sql_type,
            ordinal: j,
        })
        .collect();
    let pairs =
        pair_renames(&old_fields, &new_fields, old.columns.len(), new.columns.len(), threshold);
    let mut paired_old: Vec<usize> = Vec::new();
    let mut paired_new: Vec<usize> = Vec::new();
    for (oi, nj) in pairs {
        let (i, j) = (ejected[oi], injected[nj]);
        let (old_col, new_col) = (&old.columns[i], &new.columns[j]);
        changes.push(AttributeChange::Renamed {
            from: old_col.name.to_string(),
            to: new_col.name.to_string(),
            sql_type: old_col.sql_type.clone(),
        });
        if !old_col.sql_type.equivalent(&new_col.sql_type) {
            // Rename + retype along one ladder: one rename plus one type
            // change — still ≤ the two units by-name matching would report.
            changes.push(AttributeChange::TypeChanged {
                name: new_col.name.to_string(),
                from: old_col.sql_type.clone(),
                to: new_col.sql_type.clone(),
            });
        }
        paired_old.push(i);
        paired_new.push(j);
    }
    ejected.retain(|i| !paired_old.contains(i));
    injected.retain(|j| !paired_new.contains(j));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int() -> SqlType {
        SqlType::simple("INT")
    }

    fn field<'a>(key: &'a str, ty: &'a SqlType, ordinal: usize) -> RenameField<'a> {
        RenameField { key, sql_type: ty, ordinal }
    }

    #[test]
    fn dice_basics() {
        assert_eq!(bigram_dice("night", "night"), 1.0);
        assert_eq!(bigram_dice("abc", "xyz"), 0.0);
        let s = bigram_dice("user_name", "username");
        assert!(s > 0.7 && s < 1.0, "{s}");
        // Single-character strings: equality decides.
        assert_eq!(bigram_dice("a", "a"), 1.0);
        assert_eq!(bigram_dice("a", "b"), 0.0);
        // Symmetry.
        assert_eq!(bigram_dice("night", "nacht"), bigram_dice("nacht", "night"));
    }

    #[test]
    fn jaro_winkler_basics() {
        assert_eq!(jaro_winkler("martha", "martha"), 1.0);
        assert_eq!(jaro_winkler("abc", "xyz"), 0.0);
        let jw = jaro_winkler("martha", "marhta");
        assert!((jw - 0.9611).abs() < 1e-3, "{jw}");
        let plain = jaro_winkler("dwayne", "duane");
        assert!((plain - 0.84).abs() < 1e-2, "{plain}");
        // The prefix boost lifts shared-prefix pairs.
        assert!(jaro_winkler("created", "created_at") > jaro_winkler("reated", "reated_atc"));
        assert_eq!(jaro_winkler("", ""), 1.0);
        assert_eq!(jaro_winkler("", "abc"), 0.0);
    }

    #[test]
    fn similarity_is_bounded() {
        for (a, b) in [("user_name", "username"), ("a", "zzzz"), ("", ""), ("x", "")] {
            for s in [bigram_dice(a, b), jaro_winkler(a, b)] {
                assert!((0.0..=1.0).contains(&s), "{a} vs {b}: {s}");
            }
        }
    }

    #[test]
    fn cross_family_pairs_are_disqualified() {
        let (i, t) = (int(), SqlType::simple("TEXT"));
        let score = rename_score(&field("amount", &i, 0), &field("amount2", &t, 0), 1, 1);
        assert_eq!(score, None);
    }

    #[test]
    fn genuine_rename_outscores_unrelated_sibling() {
        let i = int();
        let old = field("user_name", &i, 1);
        let renamed = field("username", &i, 1);
        let sibling = field("batch_code", &i, 2);
        let hit = rename_score(&old, &renamed, 4, 4).unwrap();
        let miss = rename_score(&old, &sibling, 4, 4).unwrap();
        assert!(hit > DEFAULT_RENAME_THRESHOLD, "{hit}");
        assert!(miss < DEFAULT_RENAME_THRESHOLD, "{miss}");
    }

    #[test]
    fn assignment_is_permutation_stable() {
        let i = int();
        let olds =
            vec![field("total_price", &i, 0), field("unit_count", &i, 1), field("rank", &i, 2)];
        let news = vec![
            field("unit_counts", &i, 1),
            field("total_price_cents", &i, 0),
            field("owner_ref", &i, 2),
        ];
        let base = pair_renames(&olds, &news, 3, 3, DEFAULT_RENAME_THRESHOLD);
        // Shuffle both candidate lists; the pairs (as key pairs) must not move.
        let olds_rev: Vec<_> = olds.iter().rev().cloned().collect();
        let news_rev: Vec<_> = news.iter().rev().cloned().collect();
        let rev = pair_renames(&olds_rev, &news_rev, 3, 3, DEFAULT_RENAME_THRESHOLD);
        let keys = |pairs: &[(usize, usize)], o: &[RenameField<'_>], n: &[RenameField<'_>]| {
            pairs
                .iter()
                .map(|&(a, b)| (o[a].key.to_string(), n[b].key.to_string()))
                .collect::<Vec<_>>()
        };
        assert_eq!(keys(&base, &olds, &news), keys(&rev, &olds_rev, &news_rev));
    }

    #[test]
    fn threshold_is_monotone() {
        let i = int();
        let olds = vec![field("user_name", &i, 0), field("created", &i, 1)];
        let news = vec![field("username", &i, 0), field("created_at", &i, 1)];
        let mut last = usize::MAX;
        for t in [0.0, 0.3, 0.6, 0.8, 0.95, 1.0] {
            let n = pair_renames(&olds, &news, 2, 2, t).len();
            assert!(n <= last, "threshold {t} matched {n} > {last}");
            last = n;
        }
    }

    #[test]
    fn ambiguous_same_type_pair_resolves_by_score_not_order() {
        // Two ejected INT columns, one injected INT column whose name is
        // close to the *second* ejected one: the naive first-match-wins
        // pairing would bind the first. The scorer must bind `unit_count`.
        let i = int();
        let a = field("total_price", &i, 0);
        let b = field("unit_count", &i, 1);
        let target = field("unit_counts", &i, 1);
        let fwd =
            pair_renames(&[a.clone(), b.clone()], std::slice::from_ref(&target), 2, 1, 0.5);
        let rev = pair_renames(&[b, a], &[target], 2, 1, 0.5);
        assert_eq!(fwd.len(), 1);
        assert_eq!(rev.len(), 1);
        assert_eq!(fwd[0].0, 1, "forward order binds unit_count");
        assert_eq!(rev[0].0, 0, "reversed order still binds unit_count");
    }

    #[test]
    fn ladder_reuse_matches_compat_semantics() {
        let widen = type_transition(&SqlType::simple("INT"), &SqlType::simple("BIGINT"));
        assert_eq!(widen, TypeTransition::Widened);
        let narrow = type_transition(&SqlType::simple("BIGINT"), &SqlType::simple("INT"));
        assert_eq!(narrow, TypeTransition::Narrowed);
        let cross = type_transition(&SqlType::simple("INT"), &SqlType::simple("TEXT"));
        assert_eq!(cross, TypeTransition::Incomparable);
    }
}
