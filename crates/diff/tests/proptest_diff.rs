//! Property tests on diff invariants.

use coevo_ddl::{Column, Schema, SqlType, Table};
use coevo_diff::{diff_schemas, diff_schemas_legacy, diff_schemas_with, MatchPolicy};
use proptest::prelude::*;

fn sql_type_strategy() -> impl Strategy<Value = SqlType> {
    prop_oneof![
        Just(SqlType::simple("INT")),
        Just(SqlType::simple("BIGINT")),
        Just(SqlType::simple("TEXT")),
        (1u16..200).prop_map(|n| SqlType::with_params("VARCHAR", &[&n.to_string()])),
    ]
}

prop_compose! {
    fn table_strategy(name_pool: &'static [&'static str])(
        name_idx in 0..name_pool.len(),
        cols in prop::collection::btree_map("[a-f]{1,3}", sql_type_strategy(), 1..6),
        pk in any::<bool>(),
    ) -> Table {
        let mut t = Table::new(name_pool[name_idx]);
        for (cname, ty) in cols {
            t.columns.push(Column::new(cname.as_str(), ty));
        }
        if pk {
            t.columns[0].inline_primary_key = true;
        }
        t
    }
}

prop_compose! {
    fn schema_strategy()(
        mut tables in prop::collection::vec(
            table_strategy(&["alpha", "beta", "gamma", "delta", "epsilon"]), 0..5)
    ) -> Schema {
        let mut seen = std::collections::HashSet::new();
        tables.retain(|t| seen.insert(t.key().to_string()));
        Schema::from_tables(tables)
    }
}

fn sealed(s: &Schema) -> Schema {
    let mut s = s.clone();
    s.seal();
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn self_diff_is_empty(s in schema_strategy()) {
        let d = diff_schemas(&s, &s);
        prop_assert!(d.is_empty());
        prop_assert_eq!(d.total_activity(), 0);
    }

    #[test]
    fn diff_from_empty_counts_all_attributes(s in schema_strategy()) {
        let d = diff_schemas(&Schema::new(), &s);
        let b = d.breakdown();
        prop_assert_eq!(b.attrs_born_with_table, s.attribute_count() as u64);
        prop_assert_eq!(b.total(), s.attribute_count() as u64);
    }

    #[test]
    fn diff_to_empty_counts_all_attributes(s in schema_strategy()) {
        let d = diff_schemas(&s, &Schema::new());
        let b = d.breakdown();
        prop_assert_eq!(b.attrs_deleted_with_table, s.attribute_count() as u64);
    }

    #[test]
    fn forward_and_backward_totals_are_symmetric(a in schema_strategy(), b in schema_strategy()) {
        // Births ↔ deaths and injections ↔ ejections swap; type and key
        // changes are symmetric. So Total Activity is direction-independent.
        let fwd = diff_schemas(&a, &b).breakdown();
        let bwd = diff_schemas(&b, &a).breakdown();
        prop_assert_eq!(fwd.total(), bwd.total());
        prop_assert_eq!(fwd.attrs_born_with_table, bwd.attrs_deleted_with_table);
        prop_assert_eq!(fwd.attrs_injected, bwd.attrs_ejected);
        prop_assert_eq!(fwd.attrs_type_changed, bwd.attrs_type_changed);
        prop_assert_eq!(fwd.attrs_key_changed, bwd.attrs_key_changed);
    }

    #[test]
    fn rename_detection_never_increases_structural_changes(
        a in schema_strategy(), b in schema_strategy()
    ) {
        let by_name = diff_schemas_with(&a, &b, MatchPolicy::ByName);
        let count = |d: &coevo_diff::SchemaDelta| -> usize {
            d.tables.iter().map(|t| t.changes.len()).sum()
        };
        // At every threshold — including 0, where any same-family pair is
        // accepted — a detected rename replaces an eject + inject, so both
        // the structural change count and Total Activity can only go down.
        for policy in [MatchPolicy::rename_detection(), MatchPolicy::rename_detection_with(0.0)] {
            let renames = diff_schemas_with(&a, &b, policy);
            prop_assert!(count(&renames) <= count(&by_name));
            prop_assert!(renames.breakdown().total() <= by_name.breakdown().total());
        }
    }

    #[test]
    fn by_name_output_is_unaffected_by_the_rename_module(
        a in schema_strategy(), b in schema_strategy()
    ) {
        // Flag-off must be the paper's accounting bit-for-bit: no rename
        // counter in the struct, and none in the serialized bytes (the
        // store round-trips entries through JSON).
        let by_name = diff_schemas_with(&a, &b, MatchPolicy::ByName);
        let breakdown = by_name.breakdown();
        prop_assert_eq!(breakdown.attrs_renamed, 0);
        let json = serde_json::to_string(&breakdown).unwrap();
        prop_assert!(!json.contains("attrs_renamed"), "{}", json);
        for td in &by_name.tables {
            for ch in &td.changes {
                prop_assert!(
                    !matches!(ch, coevo_diff::AttributeChange::Renamed { .. }),
                    "ByName diff emitted a Renamed change"
                );
            }
        }
    }

    #[test]
    fn rename_threshold_is_monotone_on_schema_pairs(
        a in schema_strategy(), b in schema_strategy()
    ) {
        let mut last = u64::MAX;
        for t in [0.0, 0.4, 0.6, 0.8, 1.0] {
            let d = diff_schemas_with(&a, &b, MatchPolicy::rename_detection_with(t));
            let renamed = d.breakdown().attrs_renamed;
            prop_assert!(renamed <= last, "threshold {} matched {} > {}", t, renamed, last);
            last = renamed;
        }
    }

    #[test]
    fn incremental_diff_is_byte_identical_to_legacy(
        a in schema_strategy(), b in schema_strategy()
    ) {
        // The fingerprinted path must reproduce the pre-refactor algorithm's
        // output exactly — for unsealed schemas (no short-circuits possible),
        // sealed schemas (fingerprint skips active), and mixed pairs — under
        // both matching policies.
        let (sa, sb) = (sealed(&a), sealed(&b));
        let policies = [
            MatchPolicy::ByName,
            MatchPolicy::rename_detection(),
            MatchPolicy::rename_detection_with(0.0),
            MatchPolicy::rename_detection_with(1.0),
        ];
        for policy in policies {
            let oracle = diff_schemas_legacy(&a, &b, policy);
            prop_assert_eq!(&diff_schemas_with(&a, &b, policy), &oracle);
            prop_assert_eq!(&diff_schemas_with(&sa, &sb, policy), &oracle);
            prop_assert_eq!(&diff_schemas_with(&sa, &b, policy), &oracle);
            prop_assert_eq!(&diff_schemas_with(&a, &sb, policy), &oracle);
        }
    }

    #[test]
    fn sealed_self_diff_short_circuits_to_empty(s in schema_strategy()) {
        let sa = sealed(&s);
        let sb = sealed(&s);
        let mut stats = coevo_diff::DiffStats::default();
        let d = coevo_diff::diff_schemas_counted(&sa, &sb, MatchPolicy::ByName, &mut stats);
        prop_assert!(d.is_empty());
        prop_assert_eq!(stats.versions_unchanged, 1);
        prop_assert_eq!(stats.tables_diffed, 0);
    }

    #[test]
    fn triangle_inequality_on_activity(
        a in schema_strategy(), b in schema_strategy(), c in schema_strategy()
    ) {
        // Going a→c directly can never require more activity than a→b→c.
        let direct = diff_schemas(&a, &c).total_activity();
        let via = diff_schemas(&a, &b).total_activity() + diff_schemas(&b, &c).total_activity();
        prop_assert!(direct <= via, "direct {direct} > via {via}");
    }
}
