//! # coevo-store — crash-safe, content-addressed result store
//!
//! The study pipeline is change-sparse: across repeated runs, almost every
//! project's inputs (DDL history, git log, study configuration) are
//! byte-identical to the previous run. This crate persists what the engine
//! computes, keyed by what it consumed, so a re-run is ~O(changed projects)
//! instead of O(corpus):
//!
//! - **content-addressed** — an entry's key is an [`InputDigest`]: the DDL
//!   history content hash × the vcs log hash × the study-config hash. Any
//!   input change produces a different key, so stale results are simply
//!   never found (config change ⇒ full miss);
//! - **crash-safe** — entries are published atomically (temp file +
//!   `rename` in the same directory); a torn write can never be observed as
//!   an entry, and leftover temp files from crashed runs are swept on open;
//! - **self-verifying** — every entry carries a header with the store
//!   format version, its own key, and an FNV-1a checksum over the exact
//!   payload bytes. Corrupt or stale entries are quarantined (moved aside,
//!   never returned, counted by the caller, recomputed) rather than served;
//! - **bounded** — [`ResultStore::gc`] evicts least-recently-used entries
//!   beyond a byte budget (a hit refreshes the entry's modification time).
//!
//! The store is payload-agnostic: any `Serialize + Deserialize` type can be
//! stored. The execution engine stores one serialized per-project result
//! (heartbeats, measures, taxon) per entry; see `coevo-engine`.
//!
//! Everything here is std + the workspace's vendored `serde`/`serde_json` —
//! no external dependencies.

#![warn(missing_docs)]

mod digest;
mod store;

pub use digest::{config_hash, InputDigest};
pub use store::{
    GcReport, Lookup, ResultStore, StoreError, StoreStats, VerifyReport, FORMAT_VERSION,
};
