//! The on-disk store: atomic publish, checksum-verified reads, quarantine,
//! verification and GC.
//!
//! ## On-disk layout
//!
//! ```text
//! <root>/
//!   store-manifest.json   # {"format": 1} — the store-wide format version
//!   entries/
//!     <history>-<vcs>-<config>.entry   # one published result per digest
//!     .tmp-<pid>-<n>                   # in-flight publishes (swept on open)
//!   quarantine/
//!     <entry-name>.<n>                 # corrupt/stale entries, moved aside
//! ```
//!
//! ## Entry format
//!
//! An entry file is a one-line JSON header, a newline, then the payload
//! JSON:
//!
//! ```text
//! {"format":1,"digest":"<key>","bytes":N,"checksum":"<16-hex>"}
//! <payload JSON, exactly N bytes>
//! ```
//!
//! The checksum is FNV-1a 64 over the *exact* payload bytes, so truncation,
//! bit flips, and partial writes are all detected before anything is
//! deserialized. A failed check moves the file into `quarantine/` — the
//! entry is never served, and the caller recomputes and republishes.
//!
//! ## Atomicity protocol
//!
//! Publishes write the full entry to `entries/.tmp-<pid>-<n>`, fsync it,
//! and `rename(2)` it over the final name. Rename within one directory is
//! atomic on POSIX: readers observe either the old entry, the new entry, or
//! no entry — never a torn file. Temp files left behind by a crashed writer
//! are deleted the next time the store is opened.

use crate::digest::InputDigest;
use coevo_ddl::fingerprint::content_hash;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The store format version, embedded in the store manifest and in every
/// entry header. Bump this whenever the serialized payload shape, the
/// digest recipe, or the measure parameters baked into the pipeline change:
/// all previously published entries become *stale* and are quarantined
/// instead of served.
pub const FORMAT_VERSION: u32 = 1;

const MANIFEST_FILE: &str = "store-manifest.json";
const ENTRIES_DIR: &str = "entries";
const QUARANTINE_DIR: &str = "quarantine";
const ENTRY_EXT: &str = "entry";
const TMP_PREFIX: &str = ".tmp-";

/// A store operation failure: which operation, on which path, and why.
#[derive(Debug)]
pub struct StoreError {
    /// The failed operation (e.g. `"open"`, `"publish"`).
    pub op: &'static str,
    /// The path involved.
    pub path: PathBuf,
    /// The rendered cause.
    pub message: String,
}

impl StoreError {
    fn new(op: &'static str, path: &Path, message: impl fmt::Display) -> Self {
        Self { op, path: path.to_path_buf(), message: message.to_string() }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "store {} failed at {}: {}", self.op, self.path.display(), self.message)
    }
}

impl std::error::Error for StoreError {}

/// Outcome of one [`ResultStore::get`] lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup<T> {
    /// A verified entry was found and deserialized.
    Hit(T),
    /// No entry exists for the digest.
    Miss,
    /// An entry existed but was *stale* — wrong format version or a header
    /// digest that does not match its file name. It was quarantined; the
    /// caller must recompute.
    Invalidated,
    /// An entry existed but was *corrupt* — unreadable, torn, or failing
    /// its checksum. It was quarantined; the caller must recompute.
    Quarantined,
}

/// The per-entry header preceding the payload bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct EntryHeader {
    format: u32,
    digest: String,
    bytes: u64,
    checksum: String,
}

/// The store-wide manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StoreManifest {
    format: u32,
}

/// Aggregate numbers for `coevo store stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreStats {
    /// The store format version from the manifest.
    pub format: u32,
    /// Committed entries.
    pub entries: u64,
    /// Total bytes of committed entries.
    pub entry_bytes: u64,
    /// Files in the quarantine directory.
    pub quarantined: u64,
}

/// Outcome of [`ResultStore::verify`].
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Entries examined.
    pub checked: u64,
    /// Entries that passed header + checksum validation.
    pub ok: u64,
    /// File names (entry stems) moved to quarantine by this pass.
    pub quarantined: Vec<String>,
}

impl VerifyReport {
    /// Whether every checked entry verified clean.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }
}

/// Outcome of [`ResultStore::gc`].
#[derive(Debug, Clone, PartialEq)]
pub struct GcReport {
    /// Entries kept.
    pub kept: u64,
    /// Bytes kept.
    pub kept_bytes: u64,
    /// Entries evicted.
    pub evicted: u64,
    /// Bytes reclaimed.
    pub evicted_bytes: u64,
}

/// A content-addressed result store rooted at one directory.
///
/// The handle is cheap and thread-safe: lookups and publishes from the
/// engine's worker pool share one instance (`&self` everywhere; the only
/// mutable state is an atomic sequence number for temp-file and quarantine
/// names).
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    seq: AtomicU64,
}

impl ResultStore {
    /// Open (creating if needed) the store at `root`.
    ///
    /// Recovery happens here: leftover temp files from crashed publishes are
    /// deleted, and if the store manifest is missing, unreadable, or carries
    /// a different format version, every existing entry is quarantined and a
    /// fresh manifest is written — a stale-format store never serves a
    /// single entry.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        let store = Self { root, seq: AtomicU64::new(0) };
        for dir in [store.entries_dir(), store.quarantine_dir()] {
            fs::create_dir_all(&dir).map_err(|e| StoreError::new("open", &dir, e))?;
        }
        store.sweep_temp_files()?;
        store.check_manifest()?;
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory holding committed entries.
    pub fn entries_dir(&self) -> PathBuf {
        self.root.join(ENTRIES_DIR)
    }

    /// The directory corrupt/stale entries are moved into.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join(QUARANTINE_DIR)
    }

    /// The committed entry path for a digest.
    pub fn entry_path(&self, digest: &InputDigest) -> PathBuf {
        self.entries_dir().join(format!("{}.{ENTRY_EXT}", digest.key()))
    }

    /// Look up the result stored under `digest`, verifying the entry header
    /// and payload checksum before deserializing. Anything that fails
    /// verification is quarantined and reported as [`Lookup::Invalidated`]
    /// (stale) or [`Lookup::Quarantined`] (corrupt) — never returned.
    pub fn get<T: Deserialize>(&self, digest: &InputDigest) -> Lookup<T> {
        let path = self.entry_path(digest);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Lookup::Miss,
            Err(_) => {
                self.quarantine(&path);
                return Lookup::Quarantined;
            }
        };
        match validate_entry(&bytes, Some(&digest.key())) {
            Validated::Ok(payload) => match serde_json::from_str::<T>(payload) {
                Ok(value) => {
                    // Refresh the modification time so GC evicts in true
                    // least-recently-used order. Best effort: a read-only
                    // store still serves hits.
                    let _ = fs::File::open(&path)
                        .and_then(|f| f.set_modified(std::time::SystemTime::now()));
                    Lookup::Hit(value)
                }
                Err(_) => {
                    self.quarantine(&path);
                    Lookup::Quarantined
                }
            },
            Validated::Stale => {
                self.quarantine(&path);
                Lookup::Invalidated
            }
            Validated::Corrupt => {
                self.quarantine(&path);
                Lookup::Quarantined
            }
        }
    }

    /// Atomically publish `payload` under `digest`, replacing any existing
    /// entry. The entry is fully written and fsynced to a temp file in the
    /// entries directory, then renamed over the final name — a crash at any
    /// point leaves either the previous entry or a swept-on-open temp file,
    /// never a torn entry.
    pub fn put<T: Serialize + ?Sized>(
        &self,
        digest: &InputDigest,
        payload: &T,
    ) -> Result<(), StoreError> {
        let payload_json = serde_json::to_string(payload)
            .map_err(|e| StoreError::new("publish", &self.entry_path(digest), e))?;
        let header = EntryHeader {
            format: FORMAT_VERSION,
            digest: digest.key(),
            bytes: payload_json.len() as u64,
            checksum: format!("{:016x}", content_hash(payload_json.as_bytes())),
        };
        let header_json = serde_json::to_string(&header)
            .map_err(|e| StoreError::new("publish", &self.entry_path(digest), e))?;

        let tmp = self.entries_dir().join(format!(
            "{TMP_PREFIX}{}-{}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        let write = |tmp: &Path| -> std::io::Result<()> {
            let mut f = fs::File::create(tmp)?;
            f.write_all(header_json.as_bytes())?;
            f.write_all(b"\n")?;
            f.write_all(payload_json.as_bytes())?;
            f.sync_all()
        };
        write(&tmp).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            StoreError::new("publish", &tmp, e)
        })?;
        fs::rename(&tmp, self.entry_path(digest)).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            StoreError::new("publish", &self.entry_path(digest), e)
        })
    }

    /// Validate every committed entry (header parse, format version, digest
    /// vs. file name, payload checksum), quarantining anything that fails.
    /// Payloads are *not* deserialized — verification is type-agnostic.
    pub fn verify(&self) -> Result<VerifyReport, StoreError> {
        let mut report = VerifyReport { checked: 0, ok: 0, quarantined: Vec::new() };
        for path in self.entry_files()? {
            report.checked += 1;
            let expected_key = path.file_stem().map(|s| s.to_string_lossy().into_owned());
            let valid = fs::read(&path).ok().is_some_and(|bytes| {
                matches!(validate_entry(&bytes, expected_key.as_deref()), Validated::Ok(_))
            });
            if valid {
                report.ok += 1;
            } else {
                self.quarantine(&path);
                report.quarantined.push(
                    path.file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default(),
                );
            }
        }
        report.quarantined.sort();
        Ok(report)
    }

    /// Evict least-recently-used entries until the committed entries total
    /// at most `max_bytes`. Eviction order is oldest modification time
    /// first (hits refresh it), with the file name as a deterministic
    /// tie-break. Evicted entries are deleted, not quarantined — they were
    /// valid, just over budget.
    pub fn gc(&self, max_bytes: u64) -> Result<GcReport, StoreError> {
        let mut entries: Vec<(std::time::SystemTime, PathBuf, u64)> = Vec::new();
        for path in self.entry_files()? {
            let meta = match fs::metadata(&path) {
                Ok(m) => m,
                Err(_) => continue, // raced with a concurrent eviction
            };
            let modified = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            entries.push((modified, path, meta.len()));
        }
        // Newest first; keep from the front while under budget.
        entries.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| b.1.cmp(&a.1)));
        let mut report = GcReport { kept: 0, kept_bytes: 0, evicted: 0, evicted_bytes: 0 };
        for (_, path, len) in entries {
            if report.kept_bytes + len <= max_bytes {
                report.kept += 1;
                report.kept_bytes += len;
            } else {
                fs::remove_file(&path).map_err(|e| StoreError::new("gc", &path, e))?;
                report.evicted += 1;
                report.evicted_bytes += len;
            }
        }
        Ok(report)
    }

    /// The digests of every committed entry, in key order. Foreign files in
    /// the entries directory (wrong extension, unparsable stem) are skipped,
    /// not errors — the listing only reports what [`ResultStore::get`] could
    /// actually serve.
    pub fn digests(&self) -> Result<Vec<InputDigest>, StoreError> {
        Ok(self
            .entry_files()?
            .iter()
            .filter_map(|p| p.file_stem())
            .filter_map(|stem| InputDigest::parse_key(&stem.to_string_lossy()))
            .collect())
    }

    /// Aggregate store numbers.
    pub fn stats(&self) -> Result<StoreStats, StoreError> {
        let mut entries = 0;
        let mut entry_bytes = 0;
        for path in self.entry_files()? {
            entries += 1;
            entry_bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        }
        let qdir = self.quarantine_dir();
        let quarantined = match fs::read_dir(&qdir) {
            Ok(rd) => rd.filter_map(|e| e.ok()).count() as u64,
            Err(e) => return Err(StoreError::new("stats", &qdir, e)),
        };
        Ok(StoreStats { format: FORMAT_VERSION, entries, entry_bytes, quarantined })
    }

    /// Committed entry files, sorted by name for deterministic iteration.
    fn entry_files(&self) -> Result<Vec<PathBuf>, StoreError> {
        let dir = self.entries_dir();
        let rd = fs::read_dir(&dir).map_err(|e| StoreError::new("list", &dir, e))?;
        let mut files: Vec<PathBuf> = rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|x| x == ENTRY_EXT)
                    && p.file_name()
                        .is_some_and(|n| !n.to_string_lossy().starts_with(TMP_PREFIX))
            })
            .collect();
        files.sort();
        Ok(files)
    }

    /// Delete leftover `.tmp-*` files from crashed publishes.
    fn sweep_temp_files(&self) -> Result<(), StoreError> {
        let dir = self.entries_dir();
        let rd = fs::read_dir(&dir).map_err(|e| StoreError::new("open", &dir, e))?;
        for entry in rd.filter_map(|e| e.ok()) {
            if entry.file_name().to_string_lossy().starts_with(TMP_PREFIX) {
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(())
    }

    /// Enforce the manifest: absent ⇒ write it; unreadable or a different
    /// format version ⇒ quarantine every entry, then write a fresh one.
    fn check_manifest(&self) -> Result<(), StoreError> {
        let path = self.root.join(MANIFEST_FILE);
        match fs::read_to_string(&path) {
            Ok(text) => match serde_json::from_str::<StoreManifest>(&text) {
                Ok(m) if m.format == FORMAT_VERSION => return Ok(()),
                _ => self.quarantine_all()?,
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // A fresh store — but if entries exist without a manifest
                // (e.g. the manifest itself was lost), treat them as stale.
                if !self.entry_files()?.is_empty() {
                    self.quarantine_all()?;
                }
            }
            Err(e) => return Err(StoreError::new("open", &path, e)),
        }
        let manifest = serde_json::to_string(&StoreManifest { format: FORMAT_VERSION })
            .map_err(|e| StoreError::new("open", &path, e))?;
        // The manifest write follows the same temp + rename protocol.
        let tmp = self.root.join(format!("{TMP_PREFIX}manifest-{}", std::process::id()));
        fs::write(&tmp, manifest).map_err(|e| StoreError::new("open", &tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| StoreError::new("open", &path, e))
    }

    fn quarantine_all(&self) -> Result<(), StoreError> {
        for path in self.entry_files()? {
            self.quarantine(&path);
        }
        Ok(())
    }

    /// Move a bad entry into the quarantine directory (best effort — if even
    /// the move fails, fall back to deletion so the entry can never be
    /// served again).
    fn quarantine(&self, path: &Path) {
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
        let Some(name) = name else {
            let _ = fs::remove_file(path);
            return;
        };
        let dest = self
            .quarantine_dir()
            .join(format!("{name}.{}", self.seq.fetch_add(1, Ordering::Relaxed)));
        if fs::rename(path, &dest).is_err() {
            let _ = fs::remove_file(path);
        }
    }
}

enum Validated<'a> {
    /// Structurally valid; the exact payload slice.
    Ok(&'a str),
    /// Wrong format version or digest/file-name mismatch.
    Stale,
    /// Torn, truncated, or checksum-failing.
    Corrupt,
}

/// Validate raw entry bytes: header line parses, format matches, digest
/// matches `expected_key` (when known), payload length and checksum match.
fn validate_entry<'a>(bytes: &'a [u8], expected_key: Option<&str>) -> Validated<'a> {
    let Ok(text) = std::str::from_utf8(bytes) else {
        return Validated::Corrupt;
    };
    let Some((header_line, payload)) = text.split_once('\n') else {
        return Validated::Corrupt;
    };
    let Ok(header) = serde_json::from_str::<EntryHeader>(header_line) else {
        return Validated::Corrupt;
    };
    if header.format != FORMAT_VERSION {
        return Validated::Stale;
    }
    if expected_key.is_some_and(|k| k != header.digest) {
        return Validated::Stale;
    }
    if payload.len() as u64 != header.bytes
        || format!("{:016x}", content_hash(payload.as_bytes())) != header.checksum
    {
        return Validated::Corrupt;
    }
    Validated::Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Payload {
        name: String,
        values: Vec<f64>,
        count: u64,
    }

    fn payload(tag: &str) -> Payload {
        Payload { name: tag.to_string(), values: vec![0.25, 1.0, -3.5], count: 7 }
    }

    fn digest(n: u64) -> InputDigest {
        InputDigest::new(n, n.wrapping_mul(31), 0xC0FFEE)
    }

    fn tmp_store(tag: &str) -> (PathBuf, ResultStore) {
        let dir = std::env::temp_dir().join(format!(
            "coevo_store_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn put_get_round_trip() {
        let (dir, store) = tmp_store("roundtrip");
        let d = digest(1);
        assert_eq!(store.get::<Payload>(&d), Lookup::Miss);
        store.put(&d, &payload("a")).unwrap();
        assert_eq!(store.get::<Payload>(&d), Lookup::Hit(payload("a")));
        // Re-publish replaces.
        store.put(&d, &payload("b")).unwrap();
        assert_eq!(store.get::<Payload>(&d), Lookup::Hit(payload("b")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_serves_published_entries() {
        let (dir, store) = tmp_store("reopen");
        store.put(&digest(2), &payload("x")).unwrap();
        drop(store);
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.get::<Payload>(&digest(2)), Lookup::Hit(payload("x")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_quarantined_then_recomputable() {
        let (dir, store) = tmp_store("trunc");
        let d = digest(3);
        store.put(&d, &payload("x")).unwrap();
        let path = store.entry_path(&d);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        assert_eq!(store.get::<Payload>(&d), Lookup::Quarantined);
        // Quarantined, not deleted — and never served again.
        assert!(!path.exists());
        assert_eq!(store.stats().unwrap().quarantined, 1);
        assert_eq!(store.get::<Payload>(&d), Lookup::Miss);
        // Republishing repairs.
        store.put(&d, &payload("x")).unwrap();
        assert_eq!(store.get::<Payload>(&d), Lookup::Hit(payload("x")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_in_payload_is_quarantined() {
        let (dir, store) = tmp_store("flip");
        let d = digest(4);
        store.put(&d, &payload("x")).unwrap();
        let path = store.entry_path(&d);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0x01; // corrupt inside the payload
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.get::<Payload>(&d), Lookup::Quarantined);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_format_version_is_invalidated() {
        let (dir, store) = tmp_store("stale");
        let d = digest(5);
        store.put(&d, &payload("x")).unwrap();
        let path = store.entry_path(&d);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replacen("{\"format\":1", "{\"format\":999", 1)).unwrap();
        assert_eq!(store.get::<Payload>(&d), Lookup::Invalidated);
        assert_eq!(store.stats().unwrap().quarantined, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn renamed_entry_self_reports_digest_mismatch() {
        let (dir, store) = tmp_store("renamed");
        store.put(&digest(6), &payload("x")).unwrap();
        // Copy the entry under a different digest's name.
        let other = digest(7);
        fs::copy(store.entry_path(&digest(6)), store.entry_path(&other)).unwrap();
        assert_eq!(store.get::<Payload>(&other), Lookup::Invalidated);
        // The original is untouched.
        assert_eq!(store.get::<Payload>(&digest(6)), Lookup::Hit(payload("x")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn leftover_temp_files_are_swept_on_open() {
        let (dir, store) = tmp_store("sweep");
        let torn = store.entries_dir().join(".tmp-9999-0");
        fs::write(&torn, "{\"format\":1,\"digest\":\"x\",\"bytes\":4,\"checks").unwrap();
        drop(store);
        let store = ResultStore::open(&dir).unwrap();
        assert!(!torn.exists());
        assert_eq!(store.stats().unwrap().entries, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_version_mismatch_quarantines_everything() {
        let (dir, store) = tmp_store("manifest");
        store.put(&digest(8), &payload("x")).unwrap();
        store.put(&digest(9), &payload("y")).unwrap();
        drop(store);
        fs::write(dir.join(MANIFEST_FILE), "{\"format\":999}").unwrap();
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.get::<Payload>(&digest(8)), Lookup::Miss);
        let stats = store.stats().unwrap();
        assert_eq!((stats.entries, stats.quarantined), (0, 2));
        // The manifest was reset to the current version.
        assert_eq!(stats.format, FORMAT_VERSION);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_reports_and_quarantines() {
        let (dir, store) = tmp_store("verify");
        for i in 0..4 {
            store.put(&digest(10 + i), &payload(&format!("p{i}"))).unwrap();
        }
        // Corrupt one entry on disk.
        let victim = store.entry_path(&digest(11));
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() - 1]).unwrap();

        let report = store.verify().unwrap();
        assert_eq!((report.checked, report.ok), (4, 3));
        assert_eq!(report.quarantined.len(), 1);
        assert!(!report.is_clean());
        assert!(report.quarantined[0].contains(&digest(11).key()));

        // A second pass over the repaired store is clean.
        let report = store.verify().unwrap();
        assert_eq!((report.checked, report.ok), (3, 3));
        assert!(report.is_clean());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_evicts_least_recently_used_beyond_budget() {
        let (dir, store) = tmp_store("gc");
        for i in 0..3u64 {
            store.put(&digest(20 + i), &payload(&format!("p{i}"))).unwrap();
        }
        let entry_len = fs::metadata(store.entry_path(&digest(20))).unwrap().len();
        // Make entry 20 clearly the oldest, then freshen it with a hit so
        // GC keeps it and evicts the next-oldest instead.
        let old = std::time::SystemTime::now() - std::time::Duration::from_secs(3600);
        for i in 0..3u64 {
            let age = std::time::Duration::from_secs(60 * (3 - i));
            fs::File::open(store.entry_path(&digest(20 + i)))
                .unwrap()
                .set_modified(old - age)
                .unwrap();
        }
        assert!(matches!(store.get::<Payload>(&digest(20)), Lookup::Hit(_)));

        let report = store.gc(entry_len * 2 + 1).unwrap();
        assert_eq!((report.kept, report.evicted), (2, 1));
        assert!(report.kept_bytes <= entry_len * 2 + 1);
        // 21 was the least recently used (20 was refreshed by the hit).
        assert_eq!(store.get::<Payload>(&digest(21)), Lookup::Miss);
        assert!(matches!(store.get::<Payload>(&digest(20)), Lookup::Hit(_)));
        assert!(matches!(store.get::<Payload>(&digest(22)), Lookup::Hit(_)));

        // A zero budget empties the store.
        let report = store.gc(0).unwrap();
        assert_eq!(report.kept, 0);
        assert_eq!(store.stats().unwrap().entries, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn digests_lists_committed_entries_in_key_order() {
        let (dir, store) = tmp_store("digests");
        assert_eq!(store.digests().unwrap(), Vec::new());
        let mut expected: Vec<InputDigest> = (0..3).map(|i| digest(40 + i)).collect();
        for d in &expected {
            store.put(d, &payload("x")).unwrap();
        }
        expected.sort_by_key(|d| d.key());
        assert_eq!(store.digests().unwrap(), expected);
        // Foreign files are skipped, not errors.
        fs::write(store.entries_dir().join("not-a-digest.entry"), "junk").unwrap();
        fs::write(store.entries_dir().join("README"), "hello").unwrap();
        assert_eq!(store.digests().unwrap(), expected);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_counts_entries_and_bytes() {
        let (dir, store) = tmp_store("stats");
        assert_eq!(store.stats().unwrap().entries, 0);
        store.put(&digest(30), &payload("x")).unwrap();
        let stats = store.stats().unwrap();
        assert_eq!(stats.entries, 1);
        assert!(stats.entry_bytes > 0);
        assert_eq!(stats.format, FORMAT_VERSION);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unusable_root_is_a_hard_error() {
        let err = ResultStore::open("/proc/coevo-store-cannot-live-here").unwrap_err();
        assert_eq!(err.op, "open");
        assert!(err.to_string().contains("store open failed"));
    }
}
