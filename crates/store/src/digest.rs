//! Store keys: the input digest a result is addressed by.

use coevo_ddl::fingerprint::content_hash;
use std::fmt;

/// The content address of one stored result: what the pipeline consumed to
/// produce it, reduced to three domain-separated 64-bit content hashes.
///
/// Two runs that consume byte-identical inputs under the same configuration
/// produce equal digests; any difference in any component produces a
/// different digest, so a stale entry is never *returned* — it is simply
/// never *found* (and eventually evicted by GC). The store format version is
/// deliberately not part of the key: it lives in the store manifest and in
/// every entry header, so a format bump invalidates entries explicitly
/// instead of silently orphaning them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InputDigest {
    /// Content hash of the DDL history: project name, taxon label, dialect,
    /// and every dated version text (see `coevo_corpus::digest`).
    pub history: u64,
    /// Content hash of the raw vcs log text.
    pub vcs: u64,
    /// Content hash of the study configuration and measure parameters.
    pub config: u64,
}

impl InputDigest {
    /// Construct a digest from its three components.
    pub fn new(history: u64, vcs: u64, config: u64) -> Self {
        Self { history, vcs, config }
    }

    /// The canonical key string: three fixed-width hex words. Used as the
    /// entry file stem and embedded in the entry header (a moved or renamed
    /// entry file self-reports the mismatch).
    pub fn key(&self) -> String {
        format!("{:016x}-{:016x}-{:016x}", self.history, self.vcs, self.config)
    }

    /// Parse a canonical key string back into a digest — the exact inverse
    /// of [`InputDigest::key`]. Rejects anything that is not three
    /// 16-digit lowercase hex words joined by `-`, so directory listings
    /// can safely skip foreign files.
    pub fn parse_key(key: &str) -> Option<Self> {
        let mut words = key.split('-');
        let mut parse = || {
            let w = words.next()?;
            if w.len() != 16 || !w.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
                return None;
            }
            u64::from_str_radix(w, 16).ok()
        };
        let (history, vcs, config) = (parse()?, parse()?, parse()?);
        if words.next().is_some() {
            return None;
        }
        Some(Self { history, vcs, config })
    }
}

impl fmt::Display for InputDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.key())
    }
}

/// Hash a serializable configuration value into the digest's `config`
/// component: the value is rendered to canonical JSON and content-hashed.
/// Deterministic across processes and platforms (the vendored serde renders
/// structs in field order and floats in shortest round-trip form).
pub fn config_hash<T: serde::Serialize + ?Sized>(config: &T) -> u64 {
    let json = serde_json::to_string(config).expect("config serializes");
    content_hash(json.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_fixed_width_hex() {
        let d = InputDigest::new(1, 0xABCD, u64::MAX);
        assert_eq!(d.key(), "0000000000000001-000000000000abcd-ffffffffffffffff");
        assert_eq!(d.to_string(), d.key());
    }

    #[test]
    fn any_component_changes_the_key() {
        let base = InputDigest::new(1, 2, 3);
        assert_ne!(base.key(), InputDigest::new(9, 2, 3).key());
        assert_ne!(base.key(), InputDigest::new(1, 9, 3).key());
        assert_ne!(base.key(), InputDigest::new(1, 2, 9).key());
        // Components do not alias across positions.
        assert_ne!(InputDigest::new(1, 2, 3).key(), InputDigest::new(2, 1, 3).key());
    }

    #[test]
    fn parse_key_inverts_key() {
        for d in [
            InputDigest::new(0, 0, 0),
            InputDigest::new(1, 0xABCD, u64::MAX),
            InputDigest::new(0xDEAD_BEEF, 42, 7),
        ] {
            assert_eq!(InputDigest::parse_key(&d.key()), Some(d));
        }
        for bad in [
            "",
            "0000000000000001",
            "0000000000000001-000000000000abcd",
            "0000000000000001-000000000000abcd-ffffffffffffffff-0000000000000000",
            "000000000000001-000000000000abcd-ffffffffffffffff", // 15 digits
            "0000000000000001-000000000000ABCD-ffffffffffffffff", // uppercase
            "0000000000000001-000000000000abcg-ffffffffffffffff", // non-hex
        ] {
            assert_eq!(InputDigest::parse_key(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn config_hash_is_content_sensitive_and_stable() {
        #[derive(serde::Serialize)]
        struct Cfg {
            threshold: f64,
            buckets: u64,
        }
        let a = config_hash(&Cfg { threshold: 0.1, buckets: 5 });
        let b = config_hash(&Cfg { threshold: 0.1, buckets: 5 });
        let c = config_hash(&Cfg { threshold: 0.2, buckets: 5 });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
