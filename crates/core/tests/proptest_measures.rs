//! Property tests on the co-evolution measures over arbitrary heartbeats.

use coevo_core::advance::advance_measures;
use coevo_core::attainment::AttainmentLevels;
use coevo_core::progress::ProjectData;
use coevo_core::synchronicity::theta_synchronicity;
use coevo_heartbeat::{Heartbeat, YearMonth};
use coevo_taxa::TaxonomyConfig;
use proptest::prelude::*;

prop_compose! {
    fn project_strategy()(
        start_idx in 24_000i64..24_200,
        schema_offset in 0i64..24,
        project_act in prop::collection::vec(0u64..20, 1..80),
        schema_act in prop::collection::vec(0u64..15, 1..80),
        birth in 0u64..30,
    ) -> ProjectData {
        let start = YearMonth::from_index(start_idx);
        // Guarantee some activity on both sides (the pipeline rejects
        // zero-activity projects before measures are taken).
        let mut pa = project_act;
        pa[0] += 1;
        let mut sa = schema_act;
        sa[0] += 1;
        ProjectData::new(
            "prop/test",
            Heartbeat::new(start, pa),
            Heartbeat::new(start.plus(schema_offset), sa),
            birth,
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn measures_always_well_formed(p in project_strategy()) {
        let m = p.measures(&TaxonomyConfig::default());
        prop_assert!((0.0..=1.0).contains(&m.sync_05));
        prop_assert!((0.0..=1.0).contains(&m.sync_10));
        prop_assert!(m.sync_05 <= m.sync_10 + 1e-12);
        for v in [m.advance.over_source, m.advance.over_time].into_iter().flatten() {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        // Attainment fractions monotone in alpha.
        let levels = [m.attainment.at_50, m.attainment.at_75, m.attainment.at_80, m.attainment.at_100];
        let mut prev = -1.0;
        for a in levels.into_iter().flatten() {
            prop_assert!((0.0..=1.0).contains(&a));
            prop_assert!(a >= prev);
            prev = a;
        }
        // always ⇒ fraction 1.0, and both = and of the two.
        if m.advance.always_over_source {
            prop_assert_eq!(m.advance.over_source, Some(1.0));
        }
        if m.advance.always_over_time {
            prop_assert_eq!(m.advance.over_time, Some(1.0));
        }
        prop_assert_eq!(
            m.advance.always_over_both,
            m.advance.always_over_source && m.advance.always_over_time
        );
    }

    #[test]
    fn synchronicity_monotone_in_theta(p in project_strategy()) {
        let jp = p.joint_progress();
        let mut prev = 0.0;
        for theta in [0.0, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0] {
            let s = theta_synchronicity(&jp.project, &jp.schema, theta);
            prop_assert!(s >= prev - 1e-12);
            prev = s;
        }
        // θ = 1 covers every month: both series live in [0, 1].
        prop_assert!((prev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn self_synchronicity_is_total(p in project_strategy()) {
        let jp = p.joint_progress();
        prop_assert_eq!(theta_synchronicity(&jp.schema, &jp.schema, 0.0), 1.0);
    }

    #[test]
    fn advance_degenerate_tolerance(p in project_strategy()) {
        // advance_measures over identical series: full advance (≥ 0 holds
        // with equality everywhere).
        let jp = p.joint_progress();
        let m = advance_measures(&jp.schema, &jp.schema, &jp.schema);
        if jp.months() > 1 {
            prop_assert_eq!(m.over_source, Some(1.0));
            prop_assert!(m.always_over_both);
        } else {
            prop_assert_eq!(m.over_source, None);
        }
    }

    #[test]
    fn attainment_of_cumulative_is_consistent(p in project_strategy()) {
        let jp = p.joint_progress();
        let att = AttainmentLevels::of(&jp.schema);
        // The schema has activity by construction, so 100% is attained.
        prop_assert!(att.at_100.is_some());
        // At the attainment index, the cumulative value really is ≥ α.
        for (alpha, frac) in [(0.5, att.at_50), (0.75, att.at_75), (0.8, att.at_80)] {
            if let Some(f) = frac {
                let idx = (f * (jp.months() - 1) as f64).round() as usize;
                prop_assert!(jp.schema[idx] >= alpha - 1e-9,
                    "alpha {alpha}: cum {} at idx {idx}", jp.schema[idx]);
            }
        }
    }

    #[test]
    fn measures_are_deterministic(p in project_strategy()) {
        let cfg = TaxonomyConfig::default();
        prop_assert_eq!(p.measures(&cfg), p.measures(&cfg));
    }
}
