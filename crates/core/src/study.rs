//! The end-to-end study pipeline: from per-project inputs to every figure
//! and statistical test of the paper.

use crate::progress::{ProjectData, ProjectMeasures};
use coevo_stats::{
    bucket_counts, chi_square_independence, fisher_exact_rx2, fisher_rx2_monte_carlo,
    kendall_tau_b, kruskal_wallis, mann_whitney_u, median, shapiro_wilk, Bucketing, Chi2Result,
    KruskalResult, ShapiroResult,
};
use coevo_taxa::{Taxon, TaxonomyConfig};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The study: a corpus of projects plus the taxonomy configuration.
pub struct Study {
    /// The projects.
    pub projects: Vec<ProjectData>,
    /// The config.
    pub config: TaxonomyConfig,
}

impl Study {
    /// Construct a new instance.
    pub fn new(projects: Vec<ProjectData>) -> Self {
        Self { projects, config: TaxonomyConfig::default() }
    }

    /// Run every analysis of the paper.
    pub fn run(&self) -> StudyResults {
        let measures: Vec<ProjectMeasures> =
            self.projects.iter().map(|p| p.measures(&self.config)).collect();
        StudyResults::from_measures(measures)
    }
}

/// Figure 4: breakdown of projects per value range of 10%-synchronicity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Histogram {
    /// Bucket labels, ascending (`[0%-20%)` … `[80%-100%]`).
    pub labels: Vec<String>,
    /// The counts.
    pub counts: Vec<u64>,
}

/// One point of Figure 5's duration × synchronicity scatter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Point {
    /// The name, as written in the source.
    pub name: String,
    /// The evolution taxon.
    pub taxon: Taxon,
    /// Project duration in elapsed months.
    pub duration_months: usize,
    /// The sync 10.
    pub sync_10: f64,
}

/// One row of Figure 6 (a range of the life-percentage measure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Row {
    /// `"0.9-1.0"`, `"0.8-0.9"`, … descending as in the paper.
    pub range: String,
    /// Projects in this range for the *source* measure.
    pub source_count: u64,
    /// Share of all projects (source measure).
    pub source_pct: f64,
    /// The source cum pct.
    pub source_cum_pct: f64,
    /// Projects in this range for the *time* measure.
    pub time_count: u64,
    /// Share of all projects (time measure).
    pub time_pct: f64,
    /// The time cum pct.
    pub time_cum_pct: f64,
}

/// Figure 6: life percentage of schema advance over source and over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Table {
    /// The rows.
    pub rows: Vec<Fig6Row>,
    /// Projects with no measurable advance (single-month lives).
    pub blank: u64,
    /// The total.
    pub total: u64,
}

/// One taxon's row of Figure 7 (counts of always-in-advance projects).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Row {
    /// The evolution taxon.
    pub taxon: Taxon,
    /// The projects.
    pub projects: u64,
    /// The always over time.
    pub always_over_time: u64,
    /// The always over source.
    pub always_over_source: u64,
    /// The always over both.
    pub always_over_both: u64,
}

/// Figure 7: always-in-advance counts per taxon, plus the totals the paper
/// headlines (time 80 ≈ 41%, source 57 ≈ 29%, both 55 ≈ 28%).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Table {
    /// The rows.
    pub rows: Vec<Fig7Row>,
    /// Projects always in advance of time.
    pub total_time: u64,
    /// Projects always in advance of source.
    pub total_source: u64,
    /// Projects always in advance of both.
    pub total_both: u64,
    /// Total projects in the study.
    pub total_projects: u64,
}

/// Figure 8: for each completion level α, how many projects attained it
/// within each lifetime range [0–20), [20–50), [50–80), [80–100]%.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Grid {
    /// The four α levels (0.50, 0.75, 0.80, 1.00).
    pub alphas: Vec<f64>,
    /// The four lifetime-range labels.
    pub range_labels: Vec<String>,
    /// `counts[a][r]` = projects attaining α = alphas\[a\] in range r.
    pub counts: Vec<Vec<u64>>,
    /// Projects whose schema never attains the level (zero-activity).
    pub unattained: Vec<u64>,
}

/// One Shapiro–Wilk entry of the normality screen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NormalityEntry {
    /// The attribute.
    pub attribute: String,
    /// The W statistic.
    pub w: f64,
    /// The p-value of the test.
    pub p_value: f64,
}

/// A Kruskal–Wallis result with per-taxon medians.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaxonEffect {
    /// The H statistic.
    pub h: f64,
    /// Degrees of freedom.
    pub df: usize,
    /// The p-value of the test.
    pub p_value: f64,
    /// The medians.
    pub medians: Vec<(Taxon, f64)>,
}

/// Chi-square + Fisher on one taxon × binary-flag contingency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LagTest {
    /// The flag.
    pub flag: String,
    /// The chi2 statistic.
    pub chi2_statistic: f64,
    /// The chi2 p.
    pub chi2_p: f64,
    /// Fisher exact p-value (None when the table was too large to enumerate and Monte Carlo was unavailable).
    pub fisher_p: Option<f64>,
}

/// One post-hoc pairwise comparison (Mann–Whitney U, Bonferroni-adjusted).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairwiseComparison {
    /// The a.
    pub a: Taxon,
    /// The b.
    pub b: Taxon,
    /// Bonferroni-adjusted two-sided p-value (already multiplied by the
    /// number of comparisons, capped at 1).
    pub adjusted_p: f64,
}

/// Section 7: the paper's statistical analysis, extended with post-hoc
/// pairwise taxon comparisons (an addition beyond the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Section7 {
    /// The normality.
    pub normality: Vec<NormalityEntry>,
    /// The sync by taxon.
    pub sync_by_taxon: Option<TaxonEffect>,
    /// The attainment75 by taxon.
    pub attainment75_by_taxon: Option<TaxonEffect>,
    /// Pairwise Mann–Whitney follow-up on the sync-by-taxon effect.
    pub sync_posthoc: Vec<PairwiseComparison>,
    /// The lag tests.
    pub lag_tests: Vec<LagTest>,
    /// Kendall τ between 5%- and 10%-synchronicity (paper: 0.67).
    pub kendall_sync_5_10: Option<f64>,
    /// Kendall τ between advance-over-time and advance-over-source (0.75).
    pub kendall_advance_time_source: Option<f64>,
    /// Kendall τ between every pair of study measures (the paper's "other
    /// tests" on the relationships of synchronicity and attainment with
    /// project characteristics).
    pub correlation_matrix: Vec<(String, String, f64)>,
}

/// Everything the paper's evaluation section reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyResults {
    /// The measures.
    pub measures: Vec<ProjectMeasures>,
    /// The fig4.
    pub fig4: Fig4Histogram,
    /// The fig5.
    pub fig5: Vec<Fig5Point>,
    /// The fig6.
    pub fig6: Fig6Table,
    /// The fig7.
    pub fig7: Fig7Table,
    /// The fig8.
    pub fig8: Fig8Grid,
    /// The section7.
    pub section7: Section7,
}

impl StudyResults {
    /// Derive all figures and tests from per-project measures.
    pub fn from_measures(measures: Vec<ProjectMeasures>) -> Self {
        Self::from_measures_cached(measures, &mut StatsCache::default())
    }

    /// Like [`StudyResults::from_measures`], but memoizing the expensive
    /// exact tests in `cache`. Callers that recompute the study after small
    /// deltas (one project, one month) keep the cache across calls and skip
    /// the Fisher enumerations whenever the contingency tables are
    /// unchanged; the answers are bit-identical to the uncached path.
    pub fn from_measures_cached(
        measures: Vec<ProjectMeasures>,
        cache: &mut StatsCache,
    ) -> Self {
        let fig4 = fig4(&measures);
        let fig5 = fig5(&measures);
        let fig6 = fig6(&measures);
        let fig7 = fig7(&measures);
        let fig8 = fig8(&measures);
        let section7 = section7_cached(&measures, cache);
        Self { measures, fig4, fig5, fig6, fig7, fig8, section7 }
    }

    /// Projects with 10%-synchronicity at or above `threshold` — the paper's
    /// "hand-in-hand" share (§9 reports ~20% at high synchronicity).
    pub fn hand_in_hand_share(&self, threshold: f64) -> f64 {
        if self.measures.is_empty() {
            return 0.0;
        }
        let hits = self.measures.iter().filter(|m| m.sync_10 >= threshold).count();
        hits as f64 / self.measures.len() as f64
    }
}

/// Compute Figure 4 (the synchronicity histogram) from measures.
pub fn fig4(measures: &[ProjectMeasures]) -> Fig4Histogram {
    let bucketing = Bucketing::equal_width(5);
    let values: Vec<f64> = measures.iter().map(|m| m.sync_10).collect();
    let (counts, _) = bucket_counts(&values, &bucketing);
    Fig4Histogram { labels: (0..bucketing.len()).map(|i| bucketing.label(i)).collect(), counts }
}

/// Compute Figure 5 (the duration × synchronicity scatter points).
pub fn fig5(measures: &[ProjectMeasures]) -> Vec<Fig5Point> {
    measures
        .iter()
        .map(|m| Fig5Point {
            name: m.name.clone(),
            taxon: m.taxon,
            duration_months: m.duration_months(),
            sync_10: m.sync_10,
        })
        .collect()
}

/// Compute Figure 6 (the advance table).
pub fn fig6(measures: &[ProjectMeasures]) -> Fig6Table {
    let bucketing = Bucketing::equal_width(10);
    let source: Vec<f64> = measures.iter().filter_map(|m| m.advance.over_source).collect();
    let time: Vec<f64> = measures.iter().filter_map(|m| m.advance.over_time).collect();
    let blank = (measures.len() - source.len()) as u64;
    let (src_counts, _) = bucket_counts(&source, &bucketing);
    let (time_counts, _) = bucket_counts(&time, &bucketing);
    let total = measures.len() as f64;

    // Descending ranges, with cumulative percentages from the top.
    let mut rows = Vec::new();
    let mut src_cum = 0.0;
    let mut time_cum = 0.0;
    for i in (0..bucketing.len()).rev() {
        let source_pct = src_counts[i] as f64 / total;
        let time_pct = time_counts[i] as f64 / total;
        src_cum += source_pct;
        time_cum += time_pct;
        rows.push(Fig6Row {
            range: format!("{:.1}-{:.1}", i as f64 / 10.0, (i + 1) as f64 / 10.0),
            source_count: src_counts[i],
            source_pct,
            source_cum_pct: src_cum,
            time_count: time_counts[i],
            time_pct,
            time_cum_pct: time_cum,
        });
    }
    Fig6Table { rows, blank, total: measures.len() as u64 }
}

/// Compute Figure 7 (always-in-advance per taxon).
pub fn fig7(measures: &[ProjectMeasures]) -> Fig7Table {
    let mut rows: Vec<Fig7Row> = Taxon::ALL
        .into_iter()
        .map(|taxon| Fig7Row {
            taxon,
            projects: 0,
            always_over_time: 0,
            always_over_source: 0,
            always_over_both: 0,
        })
        .collect();
    for m in measures {
        let row =
            rows.iter_mut().find(|r| r.taxon == m.taxon).expect("all taxa are pre-populated");
        row.projects += 1;
        if m.advance.always_over_time {
            row.always_over_time += 1;
        }
        if m.advance.always_over_source {
            row.always_over_source += 1;
        }
        if m.advance.always_over_both {
            row.always_over_both += 1;
        }
    }
    let total_time = rows.iter().map(|r| r.always_over_time).sum();
    let total_source = rows.iter().map(|r| r.always_over_source).sum();
    let total_both = rows.iter().map(|r| r.always_over_both).sum();
    Fig7Table {
        rows,
        total_time,
        total_source,
        total_both,
        total_projects: measures.len() as u64,
    }
}

/// Compute Figure 8 (the attainment grid).
pub fn fig8(measures: &[ProjectMeasures]) -> Fig8Grid {
    let bucketing = Bucketing::attainment_ranges();
    let alphas = crate::attainment::ATTAINMENT_ALPHAS.to_vec();
    let mut counts = Vec::new();
    let mut unattained = Vec::new();
    for &alpha in &alphas {
        let values: Vec<f64> =
            measures.iter().filter_map(|m| m.attainment.get(alpha)).collect();
        let (c, _) = bucket_counts(&values, &bucketing);
        counts.push(c);
        unattained.push((measures.len() - values.len()) as u64);
    }
    Fig8Grid {
        alphas,
        range_labels: (0..bucketing.len()).map(|i| bucketing.label(i)).collect(),
        counts,
        unattained,
    }
}

/// Memo for the expensive exact tests of [`section7`], keyed by the
/// contingency table they are computed from. The Fisher enumeration
/// dominates the study-summary cost by three orders of magnitude over
/// everything else, yet its input — the taxon × always-in-advance
/// contingency table — is a handful of small counts that a one-month
/// append to a single project rarely moves. Long-lived recomputing callers
/// (the incremental study behind `coevo serve`) carry one of these across
/// summaries; cached and fresh answers are the same deterministic numbers.
#[derive(Debug, Clone, Default)]
pub struct StatsCache {
    /// Fisher p-values (exact or Monte Carlo fallback) by table rows.
    fisher: HashMap<Vec<(u64, u64)>, Option<f64>>,
}

impl StatsCache {
    /// The Fisher r×2 p-value for `rows` — exact when the enumeration is
    /// tractable (budget 2M tables), Monte Carlo in the style of R's
    /// `simulate.p.value` otherwise — memoized by the table itself.
    fn fisher_p(&mut self, rows: &[(u64, u64)]) -> Option<f64> {
        if let Some(p) = self.fisher.get(rows) {
            return *p;
        }
        let p = fisher_exact_rx2(rows, 2_000_000)
            .or_else(|| fisher_rx2_monte_carlo(rows, 100_000, 0xF15E));
        self.fisher.insert(rows.to_vec(), p);
        p
    }

    /// Public entry to the memoized Fisher r×2 test, for callers outside the
    /// Section 7 pipeline (e.g. the compatibility FROZEN-vs-ACTIVE contrast).
    pub fn fisher_rx2(&mut self, rows: &[(u64, u64)]) -> Option<f64> {
        self.fisher_p(rows)
    }
}

/// Compute the Section 7 statistical analysis.
pub fn section7(measures: &[ProjectMeasures]) -> Section7 {
    section7_cached(measures, &mut StatsCache::default())
}

/// [`section7`] with the exact tests memoized in `cache`.
pub fn section7_cached(measures: &[ProjectMeasures], cache: &mut StatsCache) -> Section7 {
    // Normality screen over the study's attributes.
    let attrs: Vec<(&str, Vec<f64>)> = vec![
        ("sync_05", measures.iter().map(|m| m.sync_05).collect()),
        ("sync_10", measures.iter().map(|m| m.sync_10).collect()),
        (
            "advance_over_source",
            measures.iter().filter_map(|m| m.advance.over_source).collect(),
        ),
        ("advance_over_time", measures.iter().filter_map(|m| m.advance.over_time).collect()),
        ("attainment_75", measures.iter().filter_map(|m| m.attainment.at_75).collect()),
        ("duration", measures.iter().map(|m| m.duration_months() as f64).collect()),
    ];
    let normality: Vec<NormalityEntry> = attrs
        .iter()
        .filter_map(|(name, values)| {
            shapiro_wilk(values).map(|ShapiroResult { w, p_value }| NormalityEntry {
                attribute: name.to_string(),
                w,
                p_value,
            })
        })
        .collect();

    let sync_by_taxon = taxon_effect(measures, |m| Some(m.sync_10));
    let attainment75_by_taxon = taxon_effect(measures, |m| m.attainment.at_75);
    let sync_posthoc = pairwise_posthoc(measures, |m| Some(m.sync_10));

    let lag_tests = ["time", "source", "both"]
        .iter()
        .filter_map(|&flag| {
            let pick = |m: &ProjectMeasures| match flag {
                "time" => m.advance.always_over_time,
                "source" => m.advance.always_over_source,
                _ => m.advance.always_over_both,
            };
            // taxon × {always, not-always} contingency.
            let table: Vec<Vec<u64>> = Taxon::ALL
                .into_iter()
                .map(|t| {
                    let yes =
                        measures.iter().filter(|m| m.taxon == t && pick(m)).count() as u64;
                    let no =
                        measures.iter().filter(|m| m.taxon == t && !pick(m)).count() as u64;
                    vec![yes, no]
                })
                .collect();
            let chi2 = chi_square_independence(&table)?;
            let fisher_rows: Vec<(u64, u64)> = table.iter().map(|r| (r[0], r[1])).collect();
            let fisher_p = cache.fisher_p(&fisher_rows);
            Some(LagTest {
                flag: flag.to_string(),
                chi2_statistic: chi2.statistic,
                chi2_p: chi2.p_value,
                fisher_p,
            })
        })
        .collect();

    let sync5: Vec<f64> = measures.iter().map(|m| m.sync_05).collect();
    let sync10: Vec<f64> = measures.iter().map(|m| m.sync_10).collect();
    let kendall_sync_5_10 = kendall_tau_b(&sync5, &sync10);

    // Paired advance measures (only projects with both defined).
    let paired: Vec<(f64, f64)> = measures
        .iter()
        .filter_map(|m| Some((m.advance.over_time?, m.advance.over_source?)))
        .collect();
    let at: Vec<f64> = paired.iter().map(|p| p.0).collect();
    let asrc: Vec<f64> = paired.iter().map(|p| p.1).collect();
    let kendall_advance_time_source = kendall_tau_b(&at, &asrc);

    // Pairwise Kendall correlations across the study's measures.
    let measure_columns: Vec<(&str, Vec<f64>)> = vec![
        ("sync_10", measures.iter().map(|m| m.sync_10).collect()),
        (
            "advance_over_source",
            measures.iter().map(|m| m.advance.over_source.unwrap_or(f64::NAN)).collect(),
        ),
        (
            "advance_over_time",
            measures.iter().map(|m| m.advance.over_time.unwrap_or(f64::NAN)).collect(),
        ),
        (
            "attainment_75",
            measures.iter().map(|m| m.attainment.at_75.unwrap_or(f64::NAN)).collect(),
        ),
        ("duration", measures.iter().map(|m| m.duration_months() as f64).collect()),
    ];
    let mut correlation_matrix = Vec::new();
    for i in 0..measure_columns.len() {
        for j in (i + 1)..measure_columns.len() {
            // Pair-complete observations only.
            let pairs: Vec<(f64, f64)> = measure_columns[i]
                .1
                .iter()
                .zip(&measure_columns[j].1)
                .filter(|(a, b)| a.is_finite() && b.is_finite())
                .map(|(a, b)| (*a, *b))
                .collect();
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let Some(tau) = kendall_tau_b(&xs, &ys) {
                correlation_matrix.push((
                    measure_columns[i].0.to_string(),
                    measure_columns[j].0.to_string(),
                    tau,
                ));
            }
        }
    }

    Section7 {
        normality,
        sync_by_taxon,
        attainment75_by_taxon,
        sync_posthoc,
        lag_tests,
        kendall_sync_5_10,
        kendall_advance_time_source,
        correlation_matrix,
    }
}

fn taxon_effect(
    measures: &[ProjectMeasures],
    value: impl Fn(&ProjectMeasures) -> Option<f64>,
) -> Option<TaxonEffect> {
    let groups: Vec<Vec<f64>> = Taxon::ALL
        .into_iter()
        .map(|t| {
            measures.iter().filter(|m| m.taxon == t).filter_map(&value).collect::<Vec<f64>>()
        })
        .collect();
    let refs: Vec<&[f64]> = groups.iter().map(|g| g.as_slice()).collect();
    let KruskalResult { h, df, p_value } = kruskal_wallis(&refs)?;
    let medians = Taxon::ALL
        .into_iter()
        .zip(&groups)
        .filter_map(|(t, g)| median(g).map(|m| (t, m)))
        .collect();
    Some(TaxonEffect { h, df, p_value, medians })
}

/// Bonferroni-adjusted pairwise Mann–Whitney comparisons between all taxon
/// pairs (only pairs where both groups are non-empty are reported).
fn pairwise_posthoc(
    measures: &[ProjectMeasures],
    value: impl Fn(&ProjectMeasures) -> Option<f64>,
) -> Vec<PairwiseComparison> {
    let groups: Vec<(Taxon, Vec<f64>)> = Taxon::ALL
        .into_iter()
        .map(|t| (t, measures.iter().filter(|m| m.taxon == t).filter_map(&value).collect()))
        .collect();
    let mut raw: Vec<(Taxon, Taxon, f64)> = Vec::new();
    for i in 0..groups.len() {
        for j in (i + 1)..groups.len() {
            if let Some(r) = mann_whitney_u(&groups[i].1, &groups[j].1) {
                raw.push((groups[i].0, groups[j].0, r.p_value));
            }
        }
    }
    let k = raw.len() as f64;
    raw.into_iter()
        .map(|(a, b, p)| PairwiseComparison { a, b, adjusted_p: (p * k).min(1.0) })
        .collect()
}

/// Helper re-exported for reports: the chi-square result type.
pub type Chi2 = Chi2Result;

#[cfg(test)]
mod tests {
    use super::*;
    use coevo_heartbeat::{Heartbeat, YearMonth};

    fn ym() -> YearMonth {
        YearMonth::new(2015, 1).unwrap()
    }

    /// A tiny synthetic corpus with varied behaviors.
    fn corpus() -> Vec<ProjectData> {
        let mut out = Vec::new();
        // Frozen-ish: schema all at birth, project spreads out.
        for i in 0..4 {
            let project = Heartbeat::new(ym(), vec![5; 10 + i]);
            let schema = {
                let mut a = vec![0u64; 10 + i];
                a[0] = 15;
                Heartbeat::new(ym(), a)
            };
            out.push(ProjectData::new(&format!("frozen/{i}"), project, schema, 15));
        }
        // Active: schema keeps pace with project.
        for i in 0..4 {
            let project = Heartbeat::new(ym(), vec![8; 12]);
            let schema = Heartbeat::new(ym(), vec![10; 12]);
            out.push(ProjectData::new(&format!("active/{i}"), project, schema, 10 + i));
        }
        // Late bloomer: schema changes at the end.
        let project = Heartbeat::new(ym(), vec![3; 8]);
        let schema = {
            let mut a = vec![0u64; 8];
            a[0] = 5;
            a[7] = 20;
            Heartbeat::new(ym(), a)
        };
        out.push(ProjectData::new("late/0", project, schema, 5));
        // Single-month project (blank advance).
        out.push(ProjectData::new(
            "tiny/0",
            Heartbeat::new(ym(), vec![4]),
            Heartbeat::new(ym(), vec![6]),
            6,
        ));
        out
    }

    #[test]
    fn study_runs_end_to_end() {
        let results = Study::new(corpus()).run();
        assert_eq!(results.measures.len(), 10);
        // Figure sums must cover all projects.
        assert_eq!(results.fig4.counts.iter().sum::<u64>(), 10);
        assert_eq!(results.fig5.len(), 10);
        assert_eq!(
            results.fig6.rows.iter().map(|r| r.source_count).sum::<u64>() + results.fig6.blank,
            10
        );
        for (a, c) in results.fig8.alphas.iter().zip(&results.fig8.counts) {
            let covered: u64 = c.iter().sum();
            let un = results.fig8.unattained
                [results.fig8.alphas.iter().position(|x| x == a).unwrap()];
            assert_eq!(covered + un, 10);
        }
    }

    #[test]
    fn fig6_cumulative_is_monotone_and_ends_at_total() {
        let results = Study::new(corpus()).run();
        let rows = &results.fig6.rows;
        for w in rows.windows(2) {
            assert!(w[1].source_cum_pct >= w[0].source_cum_pct - 1e-12);
            assert!(w[1].time_cum_pct >= w[0].time_cum_pct - 1e-12);
        }
        let last = rows.last().unwrap();
        // Ends at (total − blank) / total.
        let expect = (10.0 - results.fig6.blank as f64) / 10.0;
        assert!((last.source_cum_pct - expect).abs() < 1e-9);
    }

    #[test]
    fn fig7_totals_consistent() {
        let results = Study::new(corpus()).run();
        let f7 = &results.fig7;
        assert_eq!(f7.total_projects, 10);
        assert_eq!(f7.rows.iter().map(|r| r.projects).sum::<u64>(), f7.total_projects);
        // "Both" can never exceed either single flag.
        assert!(f7.total_both <= f7.total_time);
        assert!(f7.total_both <= f7.total_source);
        // Birth-burst schemas are always in advance of time.
        assert!(f7.total_time >= 4);
    }

    #[test]
    fn section7_is_populated() {
        let results = Study::new(corpus()).run();
        let s7 = &results.section7;
        assert!(!s7.normality.is_empty());
        assert!(s7.kendall_sync_5_10.is_some());
        assert!(s7.kendall_advance_time_source.is_some());
        for t in &s7.lag_tests {
            assert!((0.0..=1.0).contains(&t.chi2_p));
            if let Some(fp) = t.fisher_p {
                assert!((0.0..=1.0 + 1e-9).contains(&fp));
            }
        }
    }

    #[test]
    fn hand_in_hand_share_bounds() {
        let results = Study::new(corpus()).run();
        let share = results.hand_in_hand_share(0.8);
        assert!((0.0..=1.0).contains(&share));
        assert!(results.hand_in_hand_share(0.0) >= share);
    }

    #[test]
    fn empty_study() {
        let results = Study::new(vec![]).run();
        assert_eq!(results.measures.len(), 0);
        assert_eq!(results.fig4.counts.iter().sum::<u64>(), 0);
        assert!(results.section7.kendall_sync_5_10.is_none());
        assert_eq!(results.hand_in_hand_share(0.5), 0.0);
    }
}
