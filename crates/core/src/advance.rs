//! Schema advance over time and over source — RQ2.
//!
//! > We define as the life percentage of schema advance over time (resp.,
//! > source) the fraction of (a) the number of months where the difference
//! > of the cumulative fractional activity of the schema minus the
//! > cumulative fractional progress of the time (resp. source) was larger
//! > or equal to zero, over (b) the months of the project's life after its
//! > creation.
//!
//! The denominator — months *after* creation — excludes the creation month
//! itself. Projects whose entire life fits in a single month therefore have
//! no measurable advance; these appear as the "(blank)" rows of the paper's
//! Figure 6 (2 of 195 projects).

use serde::{Deserialize, Serialize};

/// The RQ2 measures for one project.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdvanceMeasures {
    /// Life percentage of schema advance over source progress; `None` when
    /// the project's life has no months after creation.
    pub over_source: Option<f64>,
    /// Life percentage of schema advance over time progress.
    pub over_time: Option<f64>,
    /// Schema advance over source held in *every* measured month.
    pub always_over_source: bool,
    /// Schema advance over time held in every measured month.
    pub always_over_time: bool,
    /// Both advances held in every measured month.
    pub always_over_both: bool,
}

/// Compute the advance measures from the three aligned cumulative series —
/// a whole-series fold over [`crate::fold::AdvanceAccum`], the same
/// accumulator the incremental [`crate::fold::AdvanceFold`] rescans with.
pub fn advance_measures(schema: &[f64], project: &[f64], time: &[f64]) -> AdvanceMeasures {
    assert!(
        schema.len() == project.len() && project.len() == time.len(),
        "series must be aligned"
    );
    let mut acc = crate::fold::AdvanceAccum::new();
    for i in 0..schema.len() {
        acc.push(schema[i], project[i], time[i]);
    }
    acc.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_all_at_birth_always_ahead() {
        // Schema completes at birth; project and time progress linearly.
        let schema = [1.0, 1.0, 1.0, 1.0];
        let project = [0.25, 0.5, 0.75, 1.0];
        let time = [0.25, 0.5, 0.75, 1.0];
        let m = advance_measures(&schema, &project, &time);
        assert_eq!(m.over_source, Some(1.0));
        assert_eq!(m.over_time, Some(1.0));
        assert!(m.always_over_source && m.always_over_time && m.always_over_both);
    }

    #[test]
    fn late_schema_never_ahead() {
        // Schema does everything in the last month.
        let schema = [0.0, 0.0, 0.0, 1.0];
        let project = [0.4, 0.6, 0.8, 1.0];
        let time = [0.25, 0.5, 0.75, 1.0];
        let m = advance_measures(&schema, &project, &time);
        // Months 1,2: behind both. Month 3: equal (≥ 0 counts as advance).
        assert_eq!(m.over_source, Some(1.0 / 3.0));
        assert_eq!(m.over_time, Some(1.0 / 3.0));
        assert!(!m.always_over_source);
    }

    #[test]
    fn equality_counts_as_advance() {
        let schema = [0.5, 1.0];
        let project = [0.5, 1.0];
        let time = [0.5, 1.0];
        let m = advance_measures(&schema, &project, &time);
        assert_eq!(m.over_source, Some(1.0));
        assert!(m.always_over_both);
    }

    #[test]
    fn single_month_project_is_blank() {
        let m = advance_measures(&[1.0], &[1.0], &[1.0]);
        assert_eq!(m.over_source, None);
        assert_eq!(m.over_time, None);
        assert!(!m.always_over_both);
    }

    #[test]
    fn mixed_advance() {
        // Ahead of time but behind source in month 1; ahead of both in 2, 3.
        let schema = [0.3, 0.6, 0.9, 1.0];
        let project = [0.2, 0.7, 0.8, 1.0];
        let time = [0.25, 0.5, 0.75, 1.0];
        let m = advance_measures(&schema, &project, &time);
        assert_eq!(m.over_source, Some(2.0 / 3.0)); // months 2, 3
        assert_eq!(m.over_time, Some(1.0)); // all three
        assert!(m.always_over_time && !m.always_over_source && !m.always_over_both);
    }

    #[test]
    fn always_both_requires_conjunction_each_month() {
        // Ahead of source in months {1,3}, ahead of time in months {2,3}:
        // neither "always" flag holds, and in no month except 3 do both hold.
        let schema = [0.0, 0.40, 0.80, 1.0];
        let project = [0.1, 0.30, 0.90, 1.0];
        let time = [0.25, 0.5, 0.75, 1.0];
        let m = advance_measures(&schema, &project, &time);
        assert_eq!(m.over_source, Some(2.0 / 3.0));
        assert_eq!(m.over_time, Some(2.0 / 3.0));
        assert!(!m.always_over_source && !m.always_over_time && !m.always_over_both);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_panics() {
        let _ = advance_measures(&[0.1], &[0.1, 0.2], &[0.1, 0.2]);
    }
}
