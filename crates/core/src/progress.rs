//! Per-project inputs and the derived per-project measures.

use crate::advance::AdvanceMeasures;
use crate::attainment::AttainmentLevels;
use crate::fold::MeasureFolds;
use coevo_heartbeat::{Heartbeat, JointProgress};
use coevo_taxa::{classify, HeartbeatFeatures, Taxon, TaxonomyConfig};
use serde::{Deserialize, Serialize};

/// Everything the study needs to know about one project: its name, the two
/// monthly heartbeats, and the activity carried by the schema's creation
/// commit (used to separate birth from evolution when classifying taxa).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProjectData {
    /// The name, as written in the source.
    pub name: String,
    /// The project.
    pub project: Heartbeat,
    /// The schema.
    pub schema: Heartbeat,
    /// Total Activity of the schema's creation delta (the initial schema's
    /// attribute count).
    pub birth_activity: u64,
    /// Pre-assigned taxon; when absent, the classifier derives one.
    pub taxon: Option<Taxon>,
}

impl ProjectData {
    /// Construct a new instance.
    pub fn new(name: &str, project: Heartbeat, schema: Heartbeat, birth_activity: u64) -> Self {
        Self { name: name.to_string(), project, schema, birth_activity, taxon: None }
    }

    /// Set a pre-assigned taxon (e.g. from a corpus manifest).
    pub fn with_taxon(mut self, taxon: Taxon) -> Self {
        self.taxon = Some(taxon);
        self
    }

    /// The three aligned cumulative fractional series.
    pub fn joint_progress(&self) -> JointProgress {
        JointProgress::from_heartbeats(&self.project, &self.schema)
    }

    /// The effective taxon: pre-assigned, or classified from the post-birth
    /// schema heartbeat.
    pub fn effective_taxon(&self, cfg: &TaxonomyConfig) -> Taxon {
        self.taxon.unwrap_or_else(|| {
            classify(&HeartbeatFeatures::post_birth(&self.schema, self.birth_activity), cfg)
        })
    }

    /// Compute every per-project measure of the study by folding the whole
    /// aligned series through [`MeasureFolds`] — the same fold states the
    /// incremental path keeps warm, so batch and incremental measures are
    /// one semantics. No fraction vectors are materialized.
    pub fn measures(&self, cfg: &TaxonomyConfig) -> ProjectMeasures {
        let out = MeasureFolds::from_heartbeats(&self.project, &self.schema).outputs();
        ProjectMeasures {
            name: self.name.clone(),
            taxon: self.effective_taxon(cfg),
            months: out.months,
            sync_05: out.sync_05,
            sync_10: out.sync_10,
            advance: out.advance,
            attainment: out.attainment,
            schema_total_activity: self.schema.total(),
            project_total_activity: self.project.total(),
        }
    }
}

/// The study's derived measures for one project — one row of the dataset
/// behind every figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProjectMeasures {
    /// The name, as written in the source.
    pub name: String,
    /// The evolution taxon.
    pub taxon: Taxon,
    /// Project lifetime in months (the shared axis length).
    pub months: usize,
    /// 5%-synchronicity (RQ1).
    pub sync_05: f64,
    /// 10%-synchronicity (RQ1) — the figure the paper reports.
    pub sync_10: f64,
    /// RQ2 measures.
    pub advance: AdvanceMeasures,
    /// RQ3 measures.
    pub attainment: AttainmentLevels,
    /// The schema total activity.
    pub schema_total_activity: u64,
    /// The project total activity.
    pub project_total_activity: u64,
}

impl ProjectMeasures {
    /// Duration in elapsed months (the x-axis of the paper's Figure 5).
    pub fn duration_months(&self) -> usize {
        self.months.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coevo_heartbeat::YearMonth;

    fn ym(y: i32, m: u8) -> YearMonth {
        YearMonth::new(y, m).unwrap()
    }

    fn linear_project() -> ProjectData {
        let project = Heartbeat::new(ym(2015, 1), vec![10, 10, 10, 10, 10]);
        let schema = Heartbeat::new(ym(2015, 1), vec![20, 0, 0, 0, 0]);
        ProjectData::new("o/p", project, schema, 12)
    }

    #[test]
    fn measures_shape() {
        let m = linear_project().measures(&TaxonomyConfig::default());
        assert_eq!(m.months, 5);
        assert_eq!(m.duration_months(), 4);
        // Schema completes at birth: synchronous only when project reaches
        // ≥ 90%: months 4 (0.8? no: cum project = .2,.4,.6,.8,1). Within 10%
        // of schema's 1.0 only at the last month.
        assert!((m.sync_10 - 0.2).abs() < 1e-9);
        assert_eq!(m.advance.over_time, Some(1.0));
        assert_eq!(m.attainment.at_100, Some(0.0));
        assert_eq!(m.schema_total_activity, 20);
        assert_eq!(m.project_total_activity, 50);
    }

    #[test]
    fn taxon_pre_assignment_wins() {
        let cfg = TaxonomyConfig::default();
        let p = linear_project();
        // Post-birth activity = 20 − 12 = 8 → ALMOST FROZEN by classifier.
        assert_eq!(p.effective_taxon(&cfg), Taxon::AlmostFrozen);
        let forced = p.with_taxon(Taxon::Active);
        assert_eq!(forced.effective_taxon(&cfg), Taxon::Active);
    }

    #[test]
    fn sync5_never_exceeds_sync10() {
        let m = linear_project().measures(&TaxonomyConfig::default());
        assert!(m.sync_05 <= m.sync_10);
    }

    #[test]
    fn joint_progress_spans_both_heartbeats() {
        let project = Heartbeat::new(ym(2015, 1), vec![5, 5]);
        let schema = Heartbeat::new(ym(2015, 3), vec![4]);
        let p = ProjectData::new("late/schema", project, schema, 4);
        let jp = p.joint_progress();
        assert_eq!(jp.months(), 3);
        assert_eq!(jp.schema, vec![0.0, 0.0, 1.0]);
    }
}
