//! θ-synchronicity — RQ1's measure of "hand-in-hand" co-evolution.
//!
//! > For a specific timepoint tᵢ, the predicate θ-synchronous(tᵢ) is true if
//! > |pᵢ − sᵢ| ≤ θ. The θ-synchronicity of P and S is the fraction of the
//! > time-points that are θ-synchronous over the total amount of points.
//!
//! θ is an acceptance band, not a lag measure: the paper fixes θ at 5% and
//! 10% and reports the 10% results (Kendall correlation between the two:
//! 0.67).

use crate::fold::{theta_synchronous, SyncAccum};

/// Is timepoint `i` θ-synchronous for the two cumulative series?
pub fn theta_synchronous_at(p: &[f64], s: &[f64], theta: f64, i: usize) -> bool {
    theta_synchronous(p[i], s[i], theta)
}

/// The θ-synchronicity of two cumulative fractional series: the fraction of
/// timepoints where the two are within θ of each other — a whole-series
/// fold over [`SyncAccum`], the same accumulator the incremental
/// [`crate::fold::ThetaSyncFold`] maintains.
///
/// Both series must share one month axis (see
/// [`coevo_heartbeat::align_pair`]). Returns 0.0 for empty series.
pub fn theta_synchronicity(p: &[f64], s: &[f64], theta: f64) -> f64 {
    assert_eq!(p.len(), s.len(), "series must be aligned");
    let mut acc = SyncAccum::new(theta);
    for i in 0..p.len() {
        acc.push(p[i], s[i]);
    }
    acc.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_fully_synchronous() {
        let p = [0.2, 0.5, 0.9, 1.0];
        assert_eq!(theta_synchronicity(&p, &p, 0.0), 1.0);
        assert_eq!(theta_synchronicity(&p, &p, 0.10), 1.0);
    }

    #[test]
    fn constant_offset_within_band() {
        let p = [0.20, 0.50, 0.90, 1.00];
        let s = [0.28, 0.58, 0.98, 1.00];
        assert_eq!(theta_synchronicity(&p, &s, 0.10), 1.0);
        assert_eq!(theta_synchronicity(&p, &s, 0.05), 0.25); // only the last
    }

    #[test]
    fn early_schema_burst_out_of_sync() {
        // Schema does everything at birth; project progresses linearly.
        let p = [0.25, 0.50, 0.75, 1.00];
        let s = [1.00, 1.00, 1.00, 1.00];
        // |p−s| = .75, .5, .25, 0 → only the last within 10%.
        assert_eq!(theta_synchronicity(&p, &s, 0.10), 0.25);
    }

    #[test]
    fn band_is_inclusive() {
        let p = [0.5];
        let s = [0.6];
        assert_eq!(theta_synchronicity(&p, &s, 0.10), 1.0);
        assert_eq!(theta_synchronicity(&p, &s, 0.09), 0.0);
    }

    #[test]
    fn empty_series() {
        assert_eq!(theta_synchronicity(&[], &[], 0.1), 0.0);
    }

    #[test]
    fn wider_theta_never_decreases_synchronicity() {
        let p = [0.1, 0.4, 0.5, 0.8, 1.0];
        let s = [0.3, 0.45, 0.9, 0.85, 1.0];
        let s5 = theta_synchronicity(&p, &s, 0.05);
        let s10 = theta_synchronicity(&p, &s, 0.10);
        let s20 = theta_synchronicity(&p, &s, 0.20);
        assert!(s5 <= s10 && s10 <= s20);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_series_panic() {
        let _ = theta_synchronicity(&[0.1], &[0.1, 0.2], 0.1);
    }
}
