//! # coevo-core — joint source and schema co-evolution analysis
//!
//! The paper's primary contribution: measures of how a relational schema
//! co-evolves with the project that hosts it, computed over cumulative
//! fractional heartbeats (see [`coevo_heartbeat`]).
//!
//! - **RQ1 — [`synchronicity`]**: θ-synchronicity, the fraction of months
//!   where cumulative schema and project progress are within θ of each
//!   other ("hand-in-hand" co-evolution).
//! - **RQ2 — [`advance`]**: the life percentage of schema advance over time
//!   and over source, and the *always-in-advance* predicates.
//! - **RQ3 — [`attainment`]**: α-attainment fractional timepoints — how
//!   early the schema collects a given share of its total evolution.
//! - **[`study`]**: the end-to-end pipeline producing every figure and
//!   statistical test of the paper from a collection of project inputs.
//!
//! ```
//! use coevo_core::progress::ProjectData;
//! use coevo_core::synchronicity::theta_synchronicity;
//! use coevo_heartbeat::{Heartbeat, YearMonth};
//!
//! let start = YearMonth::new(2015, 1).unwrap();
//! let project = Heartbeat::new(start, vec![10, 10, 10, 10]);
//! let schema = Heartbeat::new(start, vec![20, 0, 0, 20]);
//! let p = ProjectData::new("demo/app", project, schema, 0).joint_progress();
//! let sync = theta_synchronicity(&p.schema, &p.project, 0.10);
//! assert!(sync < 1.0);
//! ```

#![warn(missing_docs)]

pub mod advance;
pub mod attainment;
pub mod fold;
pub mod progress;
pub mod study;
pub mod synchronicity;

pub use advance::{advance_measures, AdvanceMeasures};
pub use attainment::{attainment_fraction, AttainmentLevels, ATTAINMENT_ALPHAS};
pub use fold::{
    AdvanceFold, AttainmentFold, CumulativeFold, FoldOutputs, MeasureFold, MeasureFolds,
    ThetaSyncFold,
};
pub use progress::{ProjectData, ProjectMeasures};
pub use study::{StatsCache, Study, StudyResults};
pub use synchronicity::{theta_synchronicity, theta_synchronous_at};
