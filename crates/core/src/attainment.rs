//! α-attainment fractional timepoints — RQ3.
//!
//! > The α-attainment timepoint is the timepoint at which the cumulative
//! > fractional activity reaches or exceeds an arbitrarily-specified
//! > threshold α. The α-attainment fractional timepoint is the percentage
//! > of the project's life covered by the α-attainment timepoint.
//!
//! Paper example: cumulative schema activity [20%, 47%, 85%, 95%, 100%,
//! 100%, 100%] over months M0…M6 (duration 6 months): the 45%-attainment
//! timepoint is M1 and the fractional timepoint is 1/6 ≈ 16.66%.

use crate::fold::{attains, AttainmentAccum};
use serde::{Deserialize, Serialize};

/// The completion levels the paper measures (50%, 75%, 80%, 100%).
pub const ATTAINMENT_ALPHAS: [f64; 4] = [0.50, 0.75, 0.80, 1.00];

/// The α-attainment timepoint: the first index where `cumulative[i] ≥ α`.
/// `None` when the series never reaches α (e.g. a schema with zero total
/// activity, whose cumulative progression is identically zero).
pub fn attainment_index(cumulative: &[f64], alpha: f64) -> Option<usize> {
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
    cumulative.iter().position(|&v| attains(v, alpha))
}

/// The α-attainment *fractional* timepoint: the attainment index as a
/// fraction of the project's duration in elapsed months (`len − 1`).
/// A single-month project attains everything at fraction 0.
pub fn attainment_fraction(cumulative: &[f64], alpha: f64) -> Option<f64> {
    let idx = attainment_index(cumulative, alpha)?;
    let duration = cumulative.len().saturating_sub(1);
    if duration == 0 {
        return Some(0.0);
    }
    Some(idx as f64 / duration as f64)
}

/// All four attainment fractions of a cumulative schema series, in the order
/// of [`ATTAINMENT_ALPHAS`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AttainmentLevels {
    /// The at 50.
    pub at_50: Option<f64>,
    /// The at 75.
    pub at_75: Option<f64>,
    /// The at 80.
    pub at_80: Option<f64>,
    /// The at 100.
    pub at_100: Option<f64>,
}

impl AttainmentLevels {
    /// Compute all four levels — a whole-series fold over
    /// [`AttainmentAccum`], the same accumulator semantics the incremental
    /// [`crate::fold::AttainmentFold`] maintains with its cursors.
    pub fn of(cumulative: &[f64]) -> Self {
        let mut acc = AttainmentAccum::new();
        for &v in cumulative {
            acc.push(v);
        }
        acc.value()
    }

    /// The level for a given α of [`ATTAINMENT_ALPHAS`].
    pub fn get(&self, alpha: f64) -> Option<f64> {
        if (alpha - 0.50).abs() < 1e-9 {
            self.at_50
        } else if (alpha - 0.75).abs() < 1e-9 {
            self.at_75
        } else if (alpha - 0.80).abs() < 1e-9 {
            self.at_80
        } else if (alpha - 1.00).abs() < 1e-9 {
            self.at_100
        } else {
            panic!("unsupported alpha {alpha}; use ATTAINMENT_ALPHAS")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_SERIES: [f64; 7] = [0.20, 0.47, 0.85, 0.95, 1.00, 1.00, 1.00];

    #[test]
    fn paper_worked_example() {
        // 45%-attainment at M1; duration 6 → 1/6.
        assert_eq!(attainment_index(&PAPER_SERIES, 0.45), Some(1));
        let f = attainment_fraction(&PAPER_SERIES, 0.45).unwrap();
        assert!((f - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn standard_levels_on_paper_series() {
        let l = AttainmentLevels::of(&PAPER_SERIES);
        assert!((l.at_50.unwrap() - 2.0 / 6.0).abs() < 1e-12); // 85% ≥ 50% at M2
        assert!((l.at_75.unwrap() - 2.0 / 6.0).abs() < 1e-12);
        assert!((l.at_80.unwrap() - 2.0 / 6.0).abs() < 1e-12);
        assert!((l.at_100.unwrap() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn everything_at_birth() {
        let cum = [1.0, 1.0, 1.0];
        let l = AttainmentLevels::of(&cum);
        assert_eq!(l.at_50, Some(0.0));
        assert_eq!(l.at_100, Some(0.0));
    }

    #[test]
    fn zero_activity_never_attains() {
        let cum = [0.0, 0.0, 0.0];
        let l = AttainmentLevels::of(&cum);
        assert_eq!(l.at_50, None);
        assert_eq!(l.at_100, None);
        // α = 0 is attained immediately even with zero activity.
        assert_eq!(attainment_fraction(&cum, 0.0), Some(0.0));
    }

    #[test]
    fn single_month_project() {
        assert_eq!(attainment_fraction(&[1.0], 0.75), Some(0.0));
    }

    #[test]
    fn attainment_is_monotone_in_alpha() {
        let cum = [0.1, 0.3, 0.55, 0.7, 0.9, 1.0];
        let mut prev = 0.0;
        for alpha in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let f = attainment_fraction(&cum, alpha).unwrap();
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn get_accessor() {
        let l = AttainmentLevels::of(&PAPER_SERIES);
        assert_eq!(l.get(0.50), l.at_50);
        assert_eq!(l.get(1.00), l.at_100);
    }

    #[test]
    #[should_panic(expected = "unsupported alpha")]
    fn get_rejects_unknown_alpha() {
        let _ = AttainmentLevels::default().get(0.33);
    }

    #[test]
    fn boundary_inclusive() {
        let cum = [0.5, 1.0];
        assert_eq!(attainment_index(&cum, 0.5), Some(0));
    }
}
