//! Fold-based measure computation over an append-only month series.
//!
//! The batch API computes every measure from a *finished* pair of aligned
//! cumulative series. This module turns that around: a [`MeasureFolds`]
//! ingests one `(project_activity, schema_activity)` pair per month through
//! [`MeasureFolds::append_month`] and keeps every measure of the study —
//! θ-synchronicity, α-attainment fractions, advance over source/time, and
//! the cumulative series themselves — warm as the series grows.
//!
//! **One semantics.** The point predicates ([`theta_synchronous`],
//! [`attains`], [`in_advance`]) and the point accumulators ([`SyncAccum`],
//! [`AdvanceAccum`], [`AttainmentAccum`]) are the single source of truth:
//! the batch functions (`theta_synchronicity`, `advance_measures`,
//! `AttainmentLevels::of`) are literally "fold the whole series" over these
//! accumulators, and the incremental fold states rescan through the same
//! accumulators whenever a cheap update is impossible. Batch and fold can
//! therefore never drift: they evaluate the same floating-point expressions
//! over the same inputs, bit for bit.
//!
//! **Cost model.** [`MeasureFolds::append_month`] is O(1) amortized:
//!
//! - [`CumulativeFold`] pushes one prefix sum per series — O(1);
//! - [`AttainmentFold`] maintains one forward-only cursor per α. Appending
//!   activity can only *grow* the schema total, so the cumulative fraction
//!   at a fixed index never increases, and a month that once failed an
//!   α-threshold fails it forever — the cursor never moves left. Each
//!   cursor advances at most `months` times over the fold's life — O(1)
//!   amortized, and the produced index is exactly the batch
//!   `attainment_index`;
//! - [`ThetaSyncFold`] absorbs a month in O(1) when the appended month has
//!   zero activity on both series (the totals — and hence every earlier
//!   fraction — are unchanged, so only the new point needs judging). When a
//!   total moves, every fraction moves, so the hit count is recomputed
//!   lazily at the next [`MeasureFold::value`] call and cached against the
//!   `(months, totals)` stamp;
//! - [`AdvanceFold`] is always lazy: time progress `(i+1)/months` re-weighs
//!   *every* point on each append, so no incremental count can survive an
//!   append. Its rescan is likewise cached against the series stamp, making
//!   repeated queries between appends free.
//!
//! **Bounded replay.** Out-of-order events mutate months that are already
//! folded. [`MeasureFolds`] snapshots the (tiny, O(1)-sized) fold states
//! every [`SNAPSHOT_INTERVAL`] months; [`MeasureFolds::rewind_to`] restores
//! the nearest snapshot at or before the mutated month and tells the caller
//! from which month to re-append. The replay is bounded by the distance to
//! the previous snapshot plus the months after the mutation — never a full
//! pipeline recompute, and never a re-parse or re-diff.

use crate::advance::AdvanceMeasures;
use crate::attainment::{AttainmentLevels, ATTAINMENT_ALPHAS};

/// The comparison slack shared by every measure predicate of the study.
pub const MEASURE_EPS: f64 = 1e-12;

/// Fold-state snapshot cadence, in months.
pub const SNAPSHOT_INTERVAL: usize = 16;

// ---- point predicates (the single semantics) -------------------------------

/// Is a point θ-synchronous? (`|p − s| ≤ θ`, with slack.)
pub fn theta_synchronous(p: f64, s: f64, theta: f64) -> bool {
    (p - s).abs() <= theta + MEASURE_EPS
}

/// Does a cumulative fraction attain level α? (`v ≥ α`, with slack.)
pub fn attains(v: f64, alpha: f64) -> bool {
    v >= alpha - MEASURE_EPS
}

/// Is `lead` in advance of (at or ahead of) `other`? (`lead − other ≥ 0`,
/// with slack.)
pub fn in_advance(lead: f64, other: f64) -> bool {
    lead - other >= -MEASURE_EPS
}

// ---- point accumulators ----------------------------------------------------

/// Point-by-point θ-synchronicity accumulator: push every aligned point,
/// read the synchronous fraction.
#[derive(Debug, Clone)]
pub struct SyncAccum {
    theta: f64,
    months: usize,
    hits: usize,
}

impl SyncAccum {
    /// A fresh accumulator for a non-negative θ band.
    pub fn new(theta: f64) -> Self {
        assert!(theta >= 0.0, "theta must be non-negative");
        Self { theta, months: 0, hits: 0 }
    }

    /// Absorb one aligned point.
    pub fn push(&mut self, p: f64, s: f64) {
        self.months += 1;
        if theta_synchronous(p, s, self.theta) {
            self.hits += 1;
        }
    }

    /// The θ-synchronicity so far (0.0 for an empty series).
    pub fn value(&self) -> f64 {
        if self.months == 0 {
            0.0
        } else {
            self.hits as f64 / self.months as f64
        }
    }
}

/// Point-by-point advance accumulator: push every aligned
/// `(schema, project, time)` triple in month order, read the RQ2 measures.
/// The first pushed month is the creation month and is excluded from the
/// counts, matching the paper's "months after creation" denominator.
#[derive(Debug, Clone, Default)]
pub struct AdvanceAccum {
    months: usize,
    src_hits: usize,
    time_hits: usize,
    both_hits: usize,
}

impl AdvanceAccum {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb one aligned point (creation month first).
    pub fn push(&mut self, schema: f64, project: f64, time: f64) {
        self.months += 1;
        if self.months == 1 {
            return; // the creation month is not measured
        }
        let adv_src = in_advance(schema, project);
        let adv_time = in_advance(schema, time);
        if adv_src {
            self.src_hits += 1;
        }
        if adv_time {
            self.time_hits += 1;
        }
        if adv_src && adv_time {
            self.both_hits += 1;
        }
    }

    /// The advance measures so far (`None`/`false` while the life has no
    /// months after creation).
    pub fn value(&self) -> AdvanceMeasures {
        if self.months <= 1 {
            return AdvanceMeasures {
                over_source: None,
                over_time: None,
                always_over_source: false,
                always_over_time: false,
                always_over_both: false,
            };
        }
        let months_after_creation = self.months - 1;
        AdvanceMeasures {
            over_source: Some(self.src_hits as f64 / months_after_creation as f64),
            over_time: Some(self.time_hits as f64 / months_after_creation as f64),
            always_over_source: self.src_hits == months_after_creation,
            always_over_time: self.time_hits == months_after_creation,
            always_over_both: self.both_hits == months_after_creation,
        }
    }
}

/// Point-by-point attainment accumulator: push the cumulative schema
/// fraction of every month in order, read the four α-attainment fractional
/// timepoints.
#[derive(Debug, Clone, Default)]
pub struct AttainmentAccum {
    months: usize,
    indices: [Option<usize>; ATTAINMENT_ALPHAS.len()],
}

impl AttainmentAccum {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb the next month's cumulative schema fraction.
    pub fn push(&mut self, schema: f64) {
        let i = self.months;
        self.months += 1;
        for (k, &alpha) in ATTAINMENT_ALPHAS.iter().enumerate() {
            if self.indices[k].is_none() && attains(schema, alpha) {
                self.indices[k] = Some(i);
            }
        }
    }

    /// The attainment levels so far.
    pub fn value(&self) -> AttainmentLevels {
        let duration = self.months.saturating_sub(1);
        let frac = |idx: Option<usize>| {
            idx.map(|i| if duration == 0 { 0.0 } else { i as f64 / duration as f64 })
        };
        AttainmentLevels {
            at_50: frac(self.indices[0]),
            at_75: frac(self.indices[1]),
            at_80: frac(self.indices[2]),
            at_100: frac(self.indices[3]),
        }
    }
}

// ---- the series spine ------------------------------------------------------

/// The cumulative-series fold: per-month prefix sums of project and schema
/// activity on the shared (aligned) month axis. This is the spine every
/// other fold reads through — cumulative fractions are *derived* on demand
/// from `prefix / total`, evaluating the same division `cumulative_fraction`
/// performs, so no per-month `Vec<f64>` is ever materialized on the measure
/// path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CumulativeFold {
    p_prefix: Vec<u64>,
    s_prefix: Vec<u64>,
}

impl CumulativeFold {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one month of raw activity to both series.
    pub fn append_month(&mut self, p_activity: u64, s_activity: u64) {
        let p = self.p_prefix.last().copied().unwrap_or(0) + p_activity;
        let s = self.s_prefix.last().copied().unwrap_or(0) + s_activity;
        self.p_prefix.push(p);
        self.s_prefix.push(s);
    }

    /// Months folded so far.
    pub fn months(&self) -> usize {
        self.p_prefix.len()
    }

    /// Total project activity folded so far.
    pub fn project_total(&self) -> u64 {
        self.p_prefix.last().copied().unwrap_or(0)
    }

    /// Total schema activity folded so far.
    pub fn schema_total(&self) -> u64 {
        self.s_prefix.last().copied().unwrap_or(0)
    }

    /// Cumulative fractional project activity at month `i` (0.0 throughout
    /// for an all-zero series, as in `cumulative_fraction`).
    pub fn project_at(&self, i: usize) -> f64 {
        fraction(self.p_prefix[i], self.project_total())
    }

    /// Cumulative fractional schema activity at month `i`.
    pub fn schema_at(&self, i: usize) -> f64 {
        fraction(self.s_prefix[i], self.schema_total())
    }

    /// Cumulative fractional time progress at month `i`: `(i+1)/months`.
    pub fn time_at(&self, i: usize) -> f64 {
        (i + 1) as f64 / self.months() as f64
    }

    /// Drop every month at index ≥ `months` (replay support).
    pub fn truncate(&mut self, months: usize) {
        self.p_prefix.truncate(months);
        self.s_prefix.truncate(months);
    }

    /// Materialize the project fraction series into a caller-owned buffer
    /// (cleared first), so repeated queries reuse one allocation.
    pub fn project_fractions_into(&self, buf: &mut Vec<f64>) {
        buf.clear();
        buf.extend((0..self.months()).map(|i| self.project_at(i)));
    }

    /// Materialize the schema fraction series into a caller-owned buffer.
    pub fn schema_fractions_into(&self, buf: &mut Vec<f64>) {
        buf.clear();
        buf.extend((0..self.months()).map(|i| self.schema_at(i)));
    }

    /// Materialize the time progress series into a caller-owned buffer.
    pub fn time_fractions_into(&self, buf: &mut Vec<f64>) {
        buf.clear();
        buf.extend((0..self.months()).map(|i| self.time_at(i)));
    }
}

fn fraction(prefix: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        prefix as f64 / total as f64
    }
}

// ---- the per-measure folds -------------------------------------------------

/// A measure kept warm over an append-only series.
///
/// The [`CumulativeFold`] is the spine: callers append raw activity there
/// and then offer the grown series to each fold. `append_month` must be
/// called exactly once per appended month, *after* the spine grew;
/// `value` may be called at any time and may cache (hence `&mut`).
pub trait MeasureFold {
    /// What the fold measures.
    type Output;

    /// Absorb the month just appended to `series` (the series already
    /// includes it). O(1).
    fn append_month(&mut self, series: &CumulativeFold);

    /// The measure at the current frontier.
    fn value(&mut self, series: &CumulativeFold) -> Self::Output;

    /// Forget everything.
    fn reset(&mut self);
}

/// θ-synchronicity as a fold. O(1) appends for quiet months; lazy cached
/// rescan through [`SyncAccum`] when a total moves.
#[derive(Debug, Clone)]
pub struct ThetaSyncFold {
    theta: f64,
    hits: usize,
    valid_months: usize,
    valid_totals: (u64, u64),
}

impl ThetaSyncFold {
    /// A fresh fold for a non-negative θ band.
    pub fn new(theta: f64) -> Self {
        assert!(theta >= 0.0, "theta must be non-negative");
        Self { theta, hits: 0, valid_months: 0, valid_totals: (0, 0) }
    }

    fn refresh(&mut self, series: &CumulativeFold) {
        let stamp = (series.project_total(), series.schema_total());
        if self.valid_months == series.months() && self.valid_totals == stamp {
            return;
        }
        let mut acc = SyncAccum::new(self.theta);
        for i in 0..series.months() {
            acc.push(series.project_at(i), series.schema_at(i));
        }
        self.hits = acc.hits;
        self.valid_months = series.months();
        self.valid_totals = stamp;
    }
}

impl MeasureFold for ThetaSyncFold {
    type Output = f64;

    fn append_month(&mut self, series: &CumulativeFold) {
        let stamp = (series.project_total(), series.schema_total());
        // Fast path: the appended month was quiet on both series, so every
        // earlier fraction is unchanged and only the new point needs judging.
        if series.months() == self.valid_months + 1 && self.valid_totals == stamp {
            let i = series.months() - 1;
            if theta_synchronous(series.project_at(i), series.schema_at(i), self.theta) {
                self.hits += 1;
            }
            self.valid_months = series.months();
        }
        // Otherwise the count is stale; `value` rescans and re-caches.
    }

    fn value(&mut self, series: &CumulativeFold) -> f64 {
        self.refresh(series);
        if series.months() == 0 {
            0.0
        } else {
            self.hits as f64 / series.months() as f64
        }
    }

    fn reset(&mut self) {
        *self = Self::new(self.theta);
    }
}

/// α-attainment as a fold: one forward-only cursor per α. Appending
/// activity never increases the cumulative fraction at a fixed index, so a
/// month that failed a threshold fails it forever and the cursor never
/// backtracks — O(1) amortized per month, no rescans ever.
#[derive(Debug, Clone, Default)]
pub struct AttainmentFold {
    cursors: [usize; ATTAINMENT_ALPHAS.len()],
}

impl AttainmentFold {
    /// A fresh fold.
    pub fn new() -> Self {
        Self::default()
    }

    fn advance_cursors(&mut self, series: &CumulativeFold) {
        for (k, &alpha) in ATTAINMENT_ALPHAS.iter().enumerate() {
            let mut c = self.cursors[k];
            while c < series.months() && !attains(series.schema_at(c), alpha) {
                c += 1;
            }
            self.cursors[k] = c;
        }
    }
}

impl MeasureFold for AttainmentFold {
    type Output = AttainmentLevels;

    fn append_month(&mut self, series: &CumulativeFold) {
        self.advance_cursors(series);
    }

    fn value(&mut self, series: &CumulativeFold) -> AttainmentLevels {
        self.advance_cursors(series);
        let months = series.months();
        let duration = months.saturating_sub(1);
        let frac = |c: usize| {
            if c < months {
                Some(if duration == 0 { 0.0 } else { c as f64 / duration as f64 })
            } else {
                None
            }
        };
        AttainmentLevels {
            at_50: frac(self.cursors[0]),
            at_75: frac(self.cursors[1]),
            at_80: frac(self.cursors[2]),
            at_100: frac(self.cursors[3]),
        }
    }

    fn reset(&mut self) {
        self.cursors = Default::default();
    }
}

/// Advance over source/time as a fold. Time progress `(i+1)/months`
/// re-weighs every point on each append, so counts cannot survive an
/// append; the fold rescans through [`AdvanceAccum`] lazily at `value` and
/// caches against the series stamp, making repeated queries free.
#[derive(Debug, Clone, Default)]
pub struct AdvanceFold {
    cached: Option<AdvanceMeasures>,
    valid_months: usize,
    valid_totals: (u64, u64),
}

impl AdvanceFold {
    /// A fresh fold.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MeasureFold for AdvanceFold {
    type Output = AdvanceMeasures;

    fn append_month(&mut self, _series: &CumulativeFold) {
        // Nothing to maintain: the time axis shifted under every point.
    }

    fn value(&mut self, series: &CumulativeFold) -> AdvanceMeasures {
        let stamp = (series.project_total(), series.schema_total());
        if let Some(cached) = self.cached {
            if self.valid_months == series.months() && self.valid_totals == stamp {
                return cached;
            }
        }
        let mut acc = AdvanceAccum::new();
        for i in 0..series.months() {
            acc.push(series.schema_at(i), series.project_at(i), series.time_at(i));
        }
        let value = acc.value();
        self.cached = Some(value);
        self.valid_months = series.months();
        self.valid_totals = stamp;
        value
    }

    fn reset(&mut self) {
        *self = Self::default();
    }
}

// ---- the owner -------------------------------------------------------------

/// Every per-project measure of the study at the current fold frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldOutputs {
    /// Months folded (the shared axis length).
    pub months: usize,
    /// 5%-synchronicity.
    pub sync_05: f64,
    /// 10%-synchronicity.
    pub sync_10: f64,
    /// RQ2 advance measures.
    pub advance: AdvanceMeasures,
    /// RQ3 attainment levels.
    pub attainment: AttainmentLevels,
    /// Total project activity folded.
    pub project_total: u64,
    /// Total schema activity folded.
    pub schema_total: u64,
}

/// Snapshot of the (scalar) fold states at a given frontier, for bounded
/// replay after a late event.
#[derive(Debug, Clone)]
struct FoldSnapshot {
    months: usize,
    sync_05: ThetaSyncFold,
    sync_10: ThetaSyncFold,
    attainment: AttainmentFold,
    advance: AdvanceFold,
}

/// The complete fold set for one project: the cumulative spine plus the
/// four measure folds, with periodic snapshots for bounded replay.
#[derive(Debug, Clone)]
pub struct MeasureFolds {
    series: CumulativeFold,
    sync_05: ThetaSyncFold,
    sync_10: ThetaSyncFold,
    attainment: AttainmentFold,
    advance: AdvanceFold,
    snapshots: Vec<FoldSnapshot>,
    replays: u64,
}

impl Default for MeasureFolds {
    fn default() -> Self {
        Self::new()
    }
}

impl MeasureFolds {
    /// An empty fold set (θ bands 5% and 10%, the paper's α levels).
    pub fn new() -> Self {
        Self {
            series: CumulativeFold::new(),
            sync_05: ThetaSyncFold::new(0.05),
            sync_10: ThetaSyncFold::new(0.10),
            attainment: AttainmentFold::new(),
            advance: AdvanceFold::new(),
            snapshots: Vec::new(),
            replays: 0,
        }
    }

    /// Fold two raw heartbeats whole, on the axis spanning the earlier of
    /// the two starts through the later of the two ends — the fold
    /// expression of the batch `align_pair` + measure pipeline, without
    /// materializing aligned copies or fraction vectors.
    pub fn from_heartbeats(
        project: &coevo_heartbeat::Heartbeat,
        schema: &coevo_heartbeat::Heartbeat,
    ) -> Self {
        let start = project.start().min(schema.start());
        let end = project.end().max(schema.end());
        let months = end.months_since(&start) + 1;
        let mut folds = Self::new();
        for i in 0..months {
            let month = start.plus(i);
            folds.append_month(project.at(month), schema.at(month));
        }
        folds
    }

    /// Months folded so far.
    pub fn months(&self) -> usize {
        self.series.months()
    }

    /// The cumulative spine (for chart/serve queries).
    pub fn series(&self) -> &CumulativeFold {
        &self.series
    }

    /// How many bounded replays (rewinds) this fold set has absorbed.
    pub fn replays(&self) -> u64 {
        self.replays
    }

    /// Append one month of raw activity and update every fold. O(1)
    /// amortized.
    pub fn append_month(&mut self, p_activity: u64, s_activity: u64) {
        self.series.append_month(p_activity, s_activity);
        self.sync_05.append_month(&self.series);
        self.sync_10.append_month(&self.series);
        self.attainment.append_month(&self.series);
        self.advance.append_month(&self.series);
        if self.series.months().is_multiple_of(SNAPSHOT_INTERVAL) {
            self.snapshots.push(FoldSnapshot {
                months: self.series.months(),
                sync_05: self.sync_05.clone(),
                sync_10: self.sync_10.clone(),
                attainment: self.attainment.clone(),
                advance: self.advance.clone(),
            });
        }
    }

    /// Rewind to the nearest snapshot at or before `months` — the bounded
    /// replay for a late event that mutated month index `months` (or later).
    /// Returns the month index from which the caller must re-append.
    pub fn rewind_to(&mut self, months: usize) -> usize {
        debug_assert!(months <= self.series.months());
        self.replays += 1;
        while self.snapshots.last().is_some_and(|s| s.months > months) {
            self.snapshots.pop();
        }
        let resume = match self.snapshots.last() {
            Some(snap) => {
                self.sync_05 = snap.sync_05.clone();
                self.sync_10 = snap.sync_10.clone();
                self.attainment = snap.attainment.clone();
                self.advance = snap.advance.clone();
                snap.months
            }
            None => {
                self.sync_05.reset();
                self.sync_10.reset();
                self.attainment.reset();
                self.advance.reset();
                0
            }
        };
        self.series.truncate(resume);
        resume
    }

    /// Every measure at the current frontier.
    pub fn outputs(&mut self) -> FoldOutputs {
        FoldOutputs {
            months: self.series.months(),
            sync_05: self.sync_05.value(&self.series),
            sync_10: self.sync_10.value(&self.series),
            advance: self.advance.value(&self.series),
            attainment: self.attainment.value(&self.series),
            project_total: self.series.project_total(),
            schema_total: self.series.schema_total(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advance::advance_measures;
    use crate::synchronicity::theta_synchronicity;
    use coevo_heartbeat::{cumulative_fraction, time_progress};

    /// The batch reference: measures of a finished raw activity pair.
    fn batch(p_act: &[u64], s_act: &[u64]) -> FoldOutputs {
        assert_eq!(p_act.len(), s_act.len());
        let p = cumulative_fraction(p_act);
        let s = cumulative_fraction(s_act);
        let t = time_progress(p_act.len());
        FoldOutputs {
            months: p_act.len(),
            sync_05: theta_synchronicity(&p, &s, 0.05),
            sync_10: theta_synchronicity(&p, &s, 0.10),
            advance: advance_measures(&s, &p, &t),
            attainment: AttainmentLevels::of(&s),
            project_total: p_act.iter().sum(),
            schema_total: s_act.iter().sum(),
        }
    }

    fn fold_all(p_act: &[u64], s_act: &[u64]) -> MeasureFolds {
        let mut folds = MeasureFolds::new();
        for (&p, &s) in p_act.iter().zip(s_act) {
            folds.append_month(p, s);
        }
        folds
    }

    /// A deterministic pseudo-random activity pair, `n` months long.
    fn arbitrary_series(n: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let p = (0..n).map(|_| next() % 7).collect();
        let s = (0..n).map(|_| if next() % 3 == 0 { next() % 20 } else { 0 }).collect();
        (p, s)
    }

    #[test]
    fn fold_equals_batch_on_every_prefix() {
        for seed in [1, 2, 3, 99] {
            let (p, s) = arbitrary_series(40, seed);
            let mut folds = MeasureFolds::new();
            for k in 0..p.len() {
                folds.append_month(p[k], s[k]);
                assert_eq!(folds.outputs(), batch(&p[..=k], &s[..=k]), "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn zero_activity_series() {
        let mut folds = fold_all(&[0, 0, 0], &[0, 0, 0]);
        let out = folds.outputs();
        assert_eq!(out, batch(&[0, 0, 0], &[0, 0, 0]));
        // Zero-vs-zero is synchronous everywhere, attains nothing.
        assert_eq!(out.sync_10, 1.0);
        assert_eq!(out.attainment.at_50, None);
    }

    #[test]
    fn empty_fold_outputs() {
        let out = MeasureFolds::new().outputs();
        assert_eq!(out.months, 0);
        assert_eq!(out.sync_05, 0.0);
        assert_eq!(out.advance.over_source, None);
        assert_eq!(out.attainment.at_100, None);
    }

    #[test]
    fn quiet_month_fast_path_matches_rescan() {
        // Activity followed by a long quiet tail: every quiet append takes
        // the O(1) path, and the result must still equal batch.
        let mut p = vec![5, 3, 0, 2];
        let mut s = vec![10, 0, 4, 0];
        p.extend(std::iter::repeat_n(0, 30));
        s.extend(std::iter::repeat_n(0, 30));
        let mut folds = fold_all(&p, &s);
        assert_eq!(folds.outputs(), batch(&p, &s));
    }

    #[test]
    fn rewind_replays_a_mutation_exactly() {
        for mutate_at in [0usize, 5, 16, 17, 31, 39] {
            let (mut p, mut s) = arbitrary_series(40, 7);
            let mut folds = fold_all(&p, &s);
            let _ = folds.outputs(); // warm caches, then invalidate by rewind
                                     // A late event adds activity to an already-folded month.
            p[mutate_at] += 11;
            s[mutate_at] += 3;
            let resume = folds.rewind_to(mutate_at);
            assert!(resume <= mutate_at);
            for k in resume..p.len() {
                folds.append_month(p[k], s[k]);
            }
            assert_eq!(folds.outputs(), batch(&p, &s), "mutate_at {mutate_at}");
            assert_eq!(folds.replays(), 1);
        }
    }

    #[test]
    fn rewind_uses_snapshots_not_month_zero() {
        let (p, s) = arbitrary_series(64, 13);
        let mut folds = fold_all(&p, &s);
        // Mutating month 40 must resume from the snapshot at 32, not 0.
        assert_eq!(folds.rewind_to(40), 32);
        for k in 32..p.len() {
            folds.append_month(p[k], s[k]);
        }
        assert_eq!(folds.outputs(), batch(&p, &s));
    }

    #[test]
    fn repeated_rewinds_stay_consistent() {
        let (mut p, s) = arbitrary_series(50, 21);
        let mut folds = fold_all(&p, &s);
        for (i, bump) in [(45usize, 2u64), (10, 7), (30, 1), (0, 4)] {
            p[i] += bump;
            let resume = folds.rewind_to(i);
            for k in resume..p.len() {
                folds.append_month(p[k], s[k]);
            }
            assert_eq!(folds.outputs(), batch(&p, &s), "mutation at {i}");
        }
        assert_eq!(folds.replays(), 4);
    }

    #[test]
    fn from_heartbeats_matches_manual_alignment() {
        use coevo_heartbeat::{Heartbeat, YearMonth};
        let ym = |y, m| YearMonth::new(y, m).unwrap();
        let project = Heartbeat::new(ym(2020, 1), vec![1, 2, 3, 4]);
        let schema = Heartbeat::new(ym(2020, 3), vec![7, 0, 5]);
        let mut folds = MeasureFolds::from_heartbeats(&project, &schema);
        // Axis: 2020-01 .. 2020-05 (5 months).
        assert_eq!(folds.outputs(), batch(&[1, 2, 3, 4, 0], &[0, 0, 7, 0, 5]));
    }

    #[test]
    fn accumulators_match_slice_functions() {
        let p = [0.1, 0.4, 0.8, 1.0];
        let s = [0.5, 0.5, 0.75, 1.0];
        let t = [0.25, 0.5, 0.75, 1.0];
        let mut sync = SyncAccum::new(0.10);
        let mut adv = AdvanceAccum::new();
        let mut att = AttainmentAccum::new();
        for i in 0..p.len() {
            sync.push(p[i], s[i]);
            adv.push(s[i], p[i], t[i]);
            att.push(s[i]);
        }
        assert_eq!(sync.value(), theta_synchronicity(&p, &s, 0.10));
        assert_eq!(adv.value(), advance_measures(&s, &p, &t));
        assert_eq!(att.value(), AttainmentLevels::of(&s));
    }

    #[test]
    fn fractions_into_reuses_buffer_and_matches_batch() {
        let (p, s) = arbitrary_series(20, 3);
        let folds = fold_all(&p, &s);
        let mut buf = Vec::new();
        folds.series().project_fractions_into(&mut buf);
        assert_eq!(buf, cumulative_fraction(&p));
        let cap = buf.capacity();
        folds.series().schema_fractions_into(&mut buf);
        assert_eq!(buf, cumulative_fraction(&s));
        assert_eq!(buf.capacity(), cap, "buffer must be reused");
        folds.series().time_fractions_into(&mut buf);
        assert_eq!(buf, time_progress(p.len()));
    }
}
