//! Rule-based taxon classification.

use crate::features::HeartbeatFeatures;
use crate::taxon::Taxon;
use serde::{Deserialize, Serialize};

/// Thresholds operationalizing the taxa of \[33\]. The defaults encode the
/// verbal definitions ("very small change", "single spike", "high volume")
/// as concrete numbers; they are configuration — not truth — and the corpus
/// generator plus classifier recovery tests pin their joint behavior.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaxonomyConfig {
    /// Post-birth Total Activity at or below which a history is ALMOST
    /// FROZEN (when not exactly zero ⇒ FROZEN).
    pub almost_frozen_max: u64,
    /// Minimum share of total activity the busiest month must carry for a
    /// "focused shot" reading.
    pub shot_share: f64,
    /// Maximum number of active months for FOCUSED SHOT & FROZEN (the shot,
    /// plus possibly a stray tweak).
    pub shot_frozen_active_months: usize,
    /// Minimum share of total carried by the two busiest months for FOCUSED
    /// SHOT & LOW.
    pub shot_low_top2_share: f64,
    /// Post-birth Total Activity at or above which a spread-out history is
    /// ACTIVE.
    pub active_min_total: u64,
}

impl Default for TaxonomyConfig {
    fn default() -> Self {
        Self {
            almost_frozen_max: 8,
            shot_share: 0.75,
            shot_frozen_active_months: 2,
            shot_low_top2_share: 0.6,
            active_min_total: 64,
        }
    }
}

/// Classify a post-birth heartbeat-feature vector into a taxon.
///
/// Rule order (first match wins):
/// 1. zero activity → FROZEN;
/// 2. tiny activity → ALMOST FROZEN;
/// 3. one dominant spike and almost no other active month → FOCUSED SHOT &
///    FROZEN;
/// 4. spikes dominating a longer-lived background → FOCUSED SHOT & LOW;
/// 5. high total volume → ACTIVE;
/// 6. otherwise → MODERATE.
pub fn classify(f: &HeartbeatFeatures, cfg: &TaxonomyConfig) -> Taxon {
    if f.total == 0 {
        return Taxon::Frozen;
    }
    if f.total <= cfg.almost_frozen_max {
        return Taxon::AlmostFrozen;
    }
    if f.top1_share >= cfg.shot_share && f.active_months <= cfg.shot_frozen_active_months {
        return Taxon::FocusedShotAndFrozen;
    }
    if f.top2_share >= cfg.shot_low_top2_share
        && f.active_months > cfg.shot_frozen_active_months
    {
        return Taxon::FocusedShotAndLow;
    }
    if f.total >= cfg.active_min_total {
        return Taxon::Active;
    }
    Taxon::Moderate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classify_activity(activity: &[u64]) -> Taxon {
        classify(&HeartbeatFeatures::from_activity(activity), &TaxonomyConfig::default())
    }

    #[test]
    fn frozen() {
        assert_eq!(classify_activity(&[0, 0, 0, 0]), Taxon::Frozen);
        assert_eq!(classify_activity(&[]), Taxon::Frozen);
    }

    #[test]
    fn almost_frozen() {
        assert_eq!(classify_activity(&[1, 0, 2, 0, 1]), Taxon::AlmostFrozen);
        assert_eq!(classify_activity(&[8]), Taxon::AlmostFrozen);
    }

    #[test]
    fn focused_shot_and_frozen() {
        // One big spike, nothing else.
        assert_eq!(classify_activity(&[0, 40, 0, 0, 0, 0]), Taxon::FocusedShotAndFrozen);
        // Spike plus one stray tweak still qualifies.
        assert_eq!(classify_activity(&[0, 40, 0, 0, 2, 0]), Taxon::FocusedShotAndFrozen);
    }

    #[test]
    fn focused_shot_and_low() {
        // Two spikes over a low background across several months.
        assert_eq!(classify_activity(&[2, 30, 1, 0, 25, 1, 2, 0]), Taxon::FocusedShotAndLow);
    }

    #[test]
    fn moderate() {
        // Small deltas spread throughout; total below the active cutoff.
        assert_eq!(classify_activity(&[3, 4, 2, 5, 3, 4, 2, 3, 4, 3]), Taxon::Moderate);
    }

    #[test]
    fn active() {
        // High sustained volume.
        assert_eq!(classify_activity(&[10, 12, 8, 9, 11, 10, 9, 12, 8, 10]), Taxon::Active);
    }

    #[test]
    fn boundary_between_frozen_tiers() {
        let cfg = TaxonomyConfig::default();
        let f8 = HeartbeatFeatures::from_activity(&[8]);
        let f9 = HeartbeatFeatures::from_activity(&[9]);
        assert_eq!(classify(&f8, &cfg), Taxon::AlmostFrozen);
        // 9 > almost_frozen_max, single active month, 100% share → shot.
        assert_eq!(classify(&f9, &cfg), Taxon::FocusedShotAndFrozen);
    }

    #[test]
    fn custom_config_changes_decision() {
        let strict = TaxonomyConfig { active_min_total: 30, ..TaxonomyConfig::default() };
        let f = HeartbeatFeatures::from_activity(&[3, 4, 2, 5, 3, 4, 2, 3, 4, 3]);
        assert_eq!(classify(&f, &TaxonomyConfig::default()), Taxon::Moderate);
        assert_eq!(classify(&f, &strict), Taxon::Active);
    }

    #[test]
    fn big_spiky_history_is_shot_not_active() {
        // Even with large total, a single dominant spike reads as a shot.
        assert_eq!(classify_activity(&[0, 200, 0, 1]), Taxon::FocusedShotAndFrozen);
        assert_eq!(classify_activity(&[5, 100, 3, 80, 4, 2, 1]), Taxon::FocusedShotAndLow);
    }
}
