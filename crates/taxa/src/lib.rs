//! # coevo-taxa — schema evolution taxa
//!
//! The paper groups its 195 projects by the evolution archetypes ("taxa")
//! introduced in the author's preceding large-scale study \[33\]:
//!
//! 1. **FROZEN** — zero change at the logical level after birth;
//! 2. **ALMOST FROZEN** — very small change, typically few intra-table
//!    attribute modifications;
//! 3. **FOCUSED SHOT & FROZEN** — a single spike of change, almost nothing
//!    else;
//! 4. **MODERATE** — small deltas spread throughout the life of the project;
//! 5. **FOCUSED SHOT & LOW** — moderate-like background plus a pair of
//!    spikes;
//! 6. **ACTIVE** — sustained high volume of change.
//!
//! \[33\] assigned taxa by manual clustering. [`classify()`][classify::classify] operationalizes
//! the taxonomy as documented threshold rules over the *post-birth* schema
//! heartbeat — the initial commit (which carries the whole initial schema as
//! births) is excluded, since taxa describe how a schema *evolves*, not how
//! big it starts.

#![warn(missing_docs)]

pub mod classify;
pub mod features;
pub mod taxon;

pub use classify::{classify, TaxonomyConfig};
pub use features::HeartbeatFeatures;
pub use taxon::Taxon;
