//! Heartbeat features feeding the taxon classifier.

use coevo_heartbeat::Heartbeat;
use serde::{Deserialize, Serialize};

/// Summary features of a post-birth schema activity series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatFeatures {
    /// Total post-birth activity.
    pub total: u64,
    /// Number of months with non-zero activity.
    pub active_months: usize,
    /// Lifetime in months.
    pub months: usize,
    /// Largest single-month activity.
    pub max_month: u64,
    /// Fraction of total carried by the single busiest month (0 when total
    /// is 0).
    pub top1_share: f64,
    /// Fraction of total carried by the two busiest months.
    pub top2_share: f64,
}

impl HeartbeatFeatures {
    /// Compute features from a post-birth activity series.
    pub fn from_activity(activity: &[u64]) -> Self {
        let total: u64 = activity.iter().sum();
        let active_months = activity.iter().filter(|&&a| a > 0).count();
        let mut sorted: Vec<u64> = activity.to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let max_month = sorted.first().copied().unwrap_or(0);
        let top2 = sorted.iter().take(2).sum::<u64>();
        let (top1_share, top2_share) = if total > 0 {
            (max_month as f64 / total as f64, top2 as f64 / total as f64)
        } else {
            (0.0, 0.0)
        };
        Self { total, active_months, months: activity.len(), max_month, top1_share, top2_share }
    }

    /// Compute features from a full schema heartbeat by removing the birth
    /// activity: the first month's activity is reduced by `birth_activity`
    /// (the Total Activity of the creation delta, i.e. the initial schema's
    /// attribute count).
    pub fn post_birth(heartbeat: &Heartbeat, birth_activity: u64) -> Self {
        let mut activity: Vec<u64> = heartbeat.activity().to_vec();
        if let Some(first) = activity.first_mut() {
            *first = first.saturating_sub(birth_activity);
        }
        Self::from_activity(&activity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coevo_heartbeat::YearMonth;

    #[test]
    fn basic_features() {
        let f = HeartbeatFeatures::from_activity(&[0, 10, 0, 5, 5]);
        assert_eq!(f.total, 20);
        assert_eq!(f.active_months, 3);
        assert_eq!(f.months, 5);
        assert_eq!(f.max_month, 10);
        assert!((f.top1_share - 0.5).abs() < 1e-12);
        assert!((f.top2_share - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_activity() {
        let f = HeartbeatFeatures::from_activity(&[0, 0, 0]);
        assert_eq!(f.total, 0);
        assert_eq!(f.top1_share, 0.0);
        assert_eq!(f.top2_share, 0.0);
    }

    #[test]
    fn single_month() {
        let f = HeartbeatFeatures::from_activity(&[7]);
        assert_eq!(f.total, 7);
        assert!((f.top1_share - 1.0).abs() < 1e-12);
        assert!((f.top2_share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn post_birth_subtracts_creation() {
        let hb = Heartbeat::new(YearMonth::new(2020, 1).unwrap(), vec![25, 0, 3]);
        // Initial schema had 20 attributes; 5 more changes landed in month 0.
        let f = HeartbeatFeatures::post_birth(&hb, 20);
        assert_eq!(f.total, 8);
        assert_eq!(f.max_month, 5);
        // Birth larger than first month's total saturates at zero.
        let f = HeartbeatFeatures::post_birth(&hb, 100);
        assert_eq!(f.total, 3);
    }
}
