//! The taxon enumeration.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the six schema-evolution archetypes of \[33\].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Taxon {
    /// Zero change at the logical level after birth.
    Frozen,
    /// Very small change, typically few intra-table tweaks.
    AlmostFrozen,
    /// A single spike of change, almost nothing else.
    FocusedShotAndFrozen,
    /// Small deltas spread throughout the project’s life.
    Moderate,
    /// Moderate-like background plus a pair of spikes.
    FocusedShotAndLow,
    /// Sustained high volume of change.
    Active,
}

impl Taxon {
    /// All taxa, in the paper's customary order from most frozen to most
    /// active.
    pub const ALL: [Taxon; 6] = [
        Taxon::Frozen,
        Taxon::AlmostFrozen,
        Taxon::FocusedShotAndFrozen,
        Taxon::Moderate,
        Taxon::FocusedShotAndLow,
        Taxon::Active,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Taxon::Frozen => "FROZEN",
            Taxon::AlmostFrozen => "ALMOST FROZEN",
            Taxon::FocusedShotAndFrozen => "FOCUSED SHOT & FROZEN",
            Taxon::Moderate => "MODERATE",
            Taxon::FocusedShotAndLow => "FOCUSED SHOT & LOW",
            Taxon::Active => "ACTIVE",
        }
    }

    /// A short machine-friendly identifier.
    pub fn slug(self) -> &'static str {
        match self {
            Taxon::Frozen => "frozen",
            Taxon::AlmostFrozen => "almost_frozen",
            Taxon::FocusedShotAndFrozen => "focused_shot_frozen",
            Taxon::Moderate => "moderate",
            Taxon::FocusedShotAndLow => "focused_shot_low",
            Taxon::Active => "active",
        }
    }

    /// Parse from a slug or display name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        let norm: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        Taxon::ALL.into_iter().find(|t| {
            let slug_norm: String =
                t.slug().chars().filter(|c| c.is_ascii_alphanumeric()).collect();
            let name_norm: String = t
                .name()
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_ascii_lowercase();
            slug_norm == norm || name_norm == norm
        })
    }

    /// The "degree of frozenness" rank used by the paper's observation that
    /// "the more frozen a taxon is, the higher its probability to
    /// demonstrate an early advance": 0 = most frozen … 5 = most active.
    pub fn activity_rank(self) -> u8 {
        match self {
            Taxon::Frozen => 0,
            Taxon::AlmostFrozen => 1,
            Taxon::FocusedShotAndFrozen => 2,
            Taxon::Moderate => 3,
            Taxon::FocusedShotAndLow => 4,
            Taxon::Active => 5,
        }
    }
}

impl fmt::Display for Taxon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_each_once() {
        for t in Taxon::ALL {
            assert_eq!(Taxon::ALL.iter().filter(|&&x| x == t).count(), 1);
        }
    }

    #[test]
    fn parse_round_trips() {
        for t in Taxon::ALL {
            assert_eq!(Taxon::parse(t.slug()), Some(t));
            assert_eq!(Taxon::parse(t.name()), Some(t));
        }
        assert_eq!(Taxon::parse("Focused Shot & Frozen"), Some(Taxon::FocusedShotAndFrozen));
        assert_eq!(Taxon::parse("nonsense"), None);
    }

    #[test]
    fn ranks_are_ordered() {
        let ranks: Vec<u8> = Taxon::ALL.iter().map(|t| t.activity_rank()).collect();
        assert_eq!(ranks, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn display_matches_paper() {
        assert_eq!(Taxon::FocusedShotAndLow.to_string(), "FOCUSED SHOT & LOW");
    }
}
