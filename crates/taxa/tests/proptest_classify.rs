//! Property tests for the taxon classifier.

use coevo_taxa::{classify, HeartbeatFeatures, Taxon, TaxonomyConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn classification_is_total_and_deterministic(
        activity in prop::collection::vec(0u64..200, 0..120)
    ) {
        let cfg = TaxonomyConfig::default();
        let f = HeartbeatFeatures::from_activity(&activity);
        let a = classify(&f, &cfg);
        let b = classify(&f, &cfg);
        prop_assert_eq!(a, b);
        prop_assert!(Taxon::ALL.contains(&a));
    }

    #[test]
    fn zero_activity_is_frozen(months in 0usize..100) {
        let f = HeartbeatFeatures::from_activity(&vec![0; months]);
        prop_assert_eq!(classify(&f, &TaxonomyConfig::default()), Taxon::Frozen);
    }

    #[test]
    fn classification_invariant_under_month_permutation(
        mut activity in prop::collection::vec(0u64..60, 1..60)
    ) {
        let cfg = TaxonomyConfig::default();
        let before = classify(&HeartbeatFeatures::from_activity(&activity), &cfg);
        // Reverse and rotate: the features are order-free statistics.
        activity.reverse();
        let reversed = classify(&HeartbeatFeatures::from_activity(&activity), &cfg);
        prop_assert_eq!(before, reversed);
        let mid = activity.len() / 2;
        activity.rotate_left(mid);
        let rotated = classify(&HeartbeatFeatures::from_activity(&activity), &cfg);
        prop_assert_eq!(before, rotated);
    }

    #[test]
    fn appending_quiet_months_never_changes_the_class(
        activity in prop::collection::vec(0u64..60, 1..40),
        extra_quiet in 1usize..40,
    ) {
        let cfg = TaxonomyConfig::default();
        let before = classify(&HeartbeatFeatures::from_activity(&activity), &cfg);
        let mut padded = activity.clone();
        padded.extend(std::iter::repeat_n(0, extra_quiet));
        let after = classify(&HeartbeatFeatures::from_activity(&padded), &cfg);
        prop_assert_eq!(before, after);
    }

    #[test]
    fn tiny_activity_is_almost_frozen(
        spots in prop::collection::vec((0usize..50, 1u64..3), 1..4)
    ) {
        // Up to 3 events of 1–2 units each → total ≤ 8 (the default
        // almost-frozen cutoff) whenever the sum stays within it.
        let mut activity = vec![0u64; 50];
        for (i, a) in &spots {
            activity[*i] += a;
        }
        let total: u64 = activity.iter().sum();
        prop_assume!(total > 0 && total <= 8);
        let f = HeartbeatFeatures::from_activity(&activity);
        prop_assert_eq!(classify(&f, &TaxonomyConfig::default()), Taxon::AlmostFrozen);
    }

    #[test]
    fn features_are_internally_consistent(
        activity in prop::collection::vec(0u64..500, 0..80)
    ) {
        let f = HeartbeatFeatures::from_activity(&activity);
        prop_assert_eq!(f.months, activity.len());
        prop_assert_eq!(f.total, activity.iter().sum::<u64>());
        prop_assert!(f.active_months <= f.months);
        prop_assert!(f.max_month <= f.total);
        prop_assert!(f.top1_share <= f.top2_share + 1e-12);
        prop_assert!(f.top2_share <= 1.0 + 1e-12);
        if f.total > 0 {
            prop_assert!(f.top1_share > 0.0);
        }
    }
}
