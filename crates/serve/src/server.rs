//! The TCP front: line-delimited JSON over a thread-per-connection accept
//! loop, all connections sharing one [`ServeState`] behind a mutex.
//!
//! The protocol is strictly request/response per line, so the lock is held
//! only while one request computes — never across network reads. A
//! `shutdown` request flushes snapshots, flips the stop flag, and pokes the
//! listener with a loopback connection so the accept loop observes the flag
//! without platform-specific listener teardown.

use crate::state::ServeState;
use crate::ServeConfig;
use coevo_store::StoreError;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// A bound, not-yet-running daemon. Binding and running are split so tests
/// (and the CLI banner) can learn the actual address before serving —
/// binding port 0 picks a free port.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

struct Shared {
    state: Mutex<ServeState>,
    stop: AtomicBool,
    addr: SocketAddr,
}

/// What bringing a daemon up can fail with.
#[derive(Debug)]
pub enum ServeError {
    /// Binding or accepting on the TCP listener failed.
    Io(std::io::Error),
    /// Opening or reading the snapshot store failed.
    Store(StoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "serve: {e}"),
            Self::Store(e) => write!(f, "serve: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}

impl Server {
    /// Bind the listener and restore snapshots. No request is served yet.
    pub fn bind(config: &ServeConfig) -> Result<Self, ServeError> {
        let state = ServeState::open(config.taxonomy, config.store_dir.as_deref())?;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            listener,
            shared: Arc::new(Shared {
                state: Mutex::new(state),
                stop: AtomicBool::new(false),
                addr,
            }),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Projects restored from the snapshot store at bind time.
    pub fn restored_projects(&self) -> usize {
        self.shared.state.lock().expect("serve state lock").projects()
    }

    /// Serve until a `shutdown` request arrives. Accepted connections are
    /// handled on detached threads (a thread blocked on an idle client must
    /// not delay shutdown); the final snapshot flush happens in the
    /// `shutdown` handler itself, before its response is written, so it is
    /// always complete by the time this returns.
    pub fn run(self) -> Result<(), ServeError> {
        for stream in self.listener.incoming() {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || handle_connection(stream, &shared));
        }
        Ok(())
    }
}

/// Serve one connection: read request lines, answer response lines, until
/// EOF, a write failure, or a `shutdown` request.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else {
            return;
        };
        if line.trim().is_empty() {
            continue;
        }
        let shutting_down;
        let response = {
            let mut state = shared.state.lock().expect("serve state lock");
            let response = state.handle_line(&line);
            shutting_down = response.ok && line.contains("\"shutdown\"");
            if shutting_down {
                // Bounded crash-loss is the contract while running; zero
                // loss is the contract on clean shutdown.
                let _ = state.flush_snapshots();
            }
            response
        };
        let json = serde_json::to_string(&response).expect("response serializes");
        if writeln!(writer, "{json}").and_then(|_| writer.flush()).is_err() {
            return;
        }
        if shutting_down {
            shared.stop.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect(shared.addr);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Request, Response, WireEvent};
    use coevo_taxa::TaxonomyConfig;
    use std::io::BufRead;

    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Self {
            let stream = TcpStream::connect(addr).expect("connect");
            let reader = BufReader::new(stream.try_clone().expect("clone"));
            Self { reader, writer: stream }
        }

        fn roundtrip(&mut self, req: &Request) -> Response {
            let line = serde_json::to_string(req).unwrap();
            writeln!(self.writer, "{line}").unwrap();
            self.writer.flush().unwrap();
            let mut answer = String::new();
            self.reader.read_line(&mut answer).unwrap();
            serde_json::from_str(&answer).expect("response json")
        }
    }

    fn spawn_server(
        store_dir: Option<std::path::PathBuf>,
    ) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            store_dir,
            taxonomy: TaxonomyConfig::default(),
        };
        let server = Server::bind(&config).expect("bind");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().expect("run"));
        (addr, handle)
    }

    #[test]
    fn full_protocol_session_over_tcp() {
        let (addr, handle) = spawn_server(None);
        let mut client = Client::connect(addr);

        assert!(client.roundtrip(&Request::bare("ping")).ok);

        let resp = client.roundtrip(&Request {
            cmd: "ingest".into(),
            project: Some("net/socket".into()),
            dialect: Some("mysql".into()),
            taxon: None,
            ddl: None,
            events: Some(vec![
                WireEvent::commit("2020-01-05 00:00:00 +0000", 3),
                WireEvent::ddl("2020-01-10 00:00:00 +0000", "CREATE TABLE t (a INT);"),
                WireEvent::commit("2020-02-05 00:00:00 +0000", 2),
            ]),
        });
        assert!(resp.ok, "{:?}", resp.error);
        assert_eq!(resp.applied, Some(3));

        let resp = client.roundtrip(&Request {
            project: Some("net/socket".into()),
            ..Request::bare("project")
        });
        let measures = resp.measures.expect("measures");
        assert_eq!(measures.months, 2);
        assert_eq!(measures.project_total_activity, 5);

        // A second concurrent client sees the same state.
        let mut other = Client::connect(addr);
        let resp = other.roundtrip(&Request::bare("summary"));
        assert_eq!(resp.projects, Some(1));
        assert!(resp.report.unwrap().contains("Figure 4"));

        // Malformed input keeps the connection alive.
        writeln!(client.writer, "not json").unwrap();
        client.writer.flush().unwrap();
        let mut answer = String::new();
        client.reader.read_line(&mut answer).unwrap();
        assert!(answer.contains("\"ok\":false"));
        assert!(client.roundtrip(&Request::bare("ping")).ok);

        assert!(client.roundtrip(&Request::bare("shutdown")).ok);
        handle.join().expect("server thread");
    }

    #[test]
    fn shutdown_flushes_snapshots_for_warm_restart() {
        let dir = std::env::temp_dir().join(format!(
            "coevo_serve_tcp_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let (addr, handle) = spawn_server(Some(dir.clone()));
        let mut client = Client::connect(addr);
        let resp = client.roundtrip(&Request {
            cmd: "ingest".into(),
            project: Some("warm/restart".into()),
            dialect: None,
            taxon: None,
            ddl: None,
            events: Some(vec![
                WireEvent::commit("2021-03-01 00:00:00 +0000", 4),
                WireEvent::ddl("2021-03-02 00:00:00 +0000", "CREATE TABLE w (a INT);"),
            ]),
        });
        assert!(resp.ok, "{:?}", resp.error);
        assert!(client.roundtrip(&Request::bare("shutdown")).ok);
        handle.join().expect("server thread");

        // A new daemon over the same store resumes with the project warm.
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            store_dir: Some(dir.clone()),
            taxonomy: TaxonomyConfig::default(),
        };
        let server = Server::bind(&config).expect("rebind");
        assert_eq!(server.restored_projects(), 1);
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().expect("run"));
        let mut client = Client::connect(addr);
        let resp = client.roundtrip(&Request {
            project: Some("warm/restart".into()),
            ..Request::bare("project")
        });
        assert!(resp.measures.is_some());
        assert!(client.roundtrip(&Request::bare("shutdown")).ok);
        handle.join().expect("server thread");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
