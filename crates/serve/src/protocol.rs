//! The wire protocol: one JSON object per line, in both directions.
//!
//! Requests name a command in `cmd` plus whatever optional fields that
//! command reads; unknown commands and malformed lines are answered with
//! `{"ok":false,"error":...}` without closing the connection. Responses
//! carry `ok` plus only the fields the command produces (absent fields are
//! omitted from the line entirely).
//!
//! | `cmd`      | reads                                   | answers                         |
//! |------------|-----------------------------------------|---------------------------------|
//! | `ping`     | —                                       | `ok`                            |
//! | `ingest`   | `project`, `dialect?`, `taxon?`, `events` | `applied`, `pending`          |
//! | `project`  | `project`                               | `measures` or `pending`         |
//! | `summary`  | —                                       | `projects`, `pending`, `report` |
//! | `taxa`     | —                                       | `taxa`                          |
//! | `compat`   | `project`, `ddl?`                       | `compat` (level, rules, steps)  |
//! | `snapshot` | —                                       | `written`                       |
//! | `shutdown` | —                                       | `ok` (then the daemon exits)    |

use coevo_core::ProjectMeasures;
use coevo_engine::ProjectEvent;
use coevo_heartbeat::DateTime;
use serde::{Deserialize, Serialize};

/// One request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// The command name.
    pub cmd: String,
    /// The project addressed (`ingest`, `project`).
    #[serde(default)]
    pub project: Option<String>,
    /// Dialect name for `ingest` (defaults to `generic`).
    #[serde(default)]
    pub dialect: Option<String>,
    /// Pre-assigned taxon name for `ingest` (defaults to classification).
    #[serde(default)]
    pub taxon: Option<String>,
    /// The events to ingest.
    #[serde(default)]
    pub events: Option<Vec<WireEvent>>,
    /// Candidate DDL text for `compat` ("is this schema safe to ship?").
    #[serde(default)]
    pub ddl: Option<String>,
}

impl Request {
    /// A bare command with no fields.
    pub fn bare(cmd: &str) -> Self {
        Self {
            cmd: cmd.to_string(),
            project: None,
            dialect: None,
            taxon: None,
            events: None,
            ddl: None,
        }
    }
}

/// One event on the wire. `kind` selects the shape: `"commit"` reads
/// `files`, `"ddl"` reads `ddl`; both read `date` (git `--date=iso`
/// format, e.g. `2015-06-12 14:33:02 +0200`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireEvent {
    /// `"commit"` or `"ddl"`.
    pub kind: String,
    /// The event timestamp.
    pub date: String,
    /// Files updated (commits; defaults to 0).
    #[serde(default)]
    pub files: Option<u64>,
    /// The DDL text (versions).
    #[serde(default)]
    pub ddl: Option<String>,
}

impl WireEvent {
    /// A commit event.
    pub fn commit(date: &str, files: u64) -> Self {
        Self { kind: "commit".into(), date: date.into(), files: Some(files), ddl: None }
    }

    /// A DDL version event.
    pub fn ddl(date: &str, ddl: &str) -> Self {
        Self { kind: "ddl".into(), date: date.into(), files: None, ddl: Some(ddl.into()) }
    }

    /// Decode into a typed engine event.
    pub fn decode(&self) -> Result<ProjectEvent, String> {
        let date = DateTime::parse(&self.date)
            .map_err(|e| format!("bad event date {:?}: {e}", self.date))?;
        match self.kind.as_str() {
            "commit" => {
                Ok(ProjectEvent::Commit { date, files_updated: self.files.unwrap_or(0) })
            }
            "ddl" => match &self.ddl {
                Some(text) => Ok(ProjectEvent::DdlVersion { date, ddl: text.clone() }),
                None => Err("ddl event without a ddl field".to_string()),
            },
            other => Err(format!("unknown event kind {other:?} (expected commit|ddl)")),
        }
    }

    /// Encode a typed engine event for the wire.
    pub fn encode(event: &ProjectEvent) -> Self {
        match event {
            ProjectEvent::Commit { date, files_updated } => {
                Self::commit(&date.to_string(), *files_updated)
            }
            ProjectEvent::DdlVersion { date, ddl } => Self::ddl(&date.to_string(), ddl),
        }
    }
}

/// The `compat` answer: either the classification of one candidate step
/// (project head → submitted DDL) or the compatibility profile of the
/// project's warm history when no DDL is submitted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompatAnswer {
    /// The combined compatibility level (`BACKWARD`, `FORWARD`, `FULL`,
    /// `BREAKING`, `NONE`). In profile mode: the fold over every step.
    pub level: String,
    /// Distinct classification rules that fired, first-hit order.
    pub rules: Vec<String>,
    /// Evolution steps profiled (0 in candidate-DDL mode).
    pub steps: u64,
    /// Steps classified BREAKING (candidate mode: 1 or 0).
    pub breaking_steps: u64,
}

/// One taxon's project count in the `taxa` answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaxonCount {
    /// The taxon slug.
    pub taxon: String,
    /// Measurable projects classified under it.
    pub count: u64,
}

/// One response line. Only the fields the command produces are present.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Whether the request succeeded.
    pub ok: bool,
    /// The failure reason when `ok` is false.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
    /// Events applied by `ingest` (also present on a mid-batch failure:
    /// events before the offending one stay applied).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub applied: Option<u64>,
    /// Projects that cannot be measured yet, with the reason.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub pending: Option<Vec<String>>,
    /// The warm measures of one project.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub measures: Option<ProjectMeasures>,
    /// Number of projects the daemon holds.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub projects: Option<u64>,
    /// The rendered study report (figures + research-question answers).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub report: Option<String>,
    /// Taxon histogram over measurable projects.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub taxa: Option<Vec<TaxonCount>>,
    /// Snapshots written by `snapshot`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub written: Option<u64>,
    /// The compatibility answer of `compat`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub compat: Option<CompatAnswer>,
}

impl Response {
    /// A bare success.
    pub fn ok() -> Self {
        Self {
            ok: true,
            error: None,
            applied: None,
            pending: None,
            measures: None,
            projects: None,
            report: None,
            taxa: None,
            written: None,
            compat: None,
        }
    }

    /// A failure with a reason.
    pub fn err(message: impl Into<String>) -> Self {
        Self { ok: false, error: Some(message.into()), ..Self::ok() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_with_missing_fields() {
        let json = r#"{"cmd":"ping"}"#;
        let req: Request = serde_json::from_str(json).unwrap();
        assert_eq!(req, Request::bare("ping"));
    }

    #[test]
    fn response_omits_absent_fields() {
        let line = serde_json::to_string(&Response::ok()).unwrap();
        assert_eq!(line, r#"{"ok":true}"#);
        let line = serde_json::to_string(&Response::err("nope")).unwrap();
        assert!(line.contains("\"error\":\"nope\""));
        assert!(!line.contains("measures"));
    }

    #[test]
    fn wire_event_decode_commit_and_ddl() {
        let ev = WireEvent::commit("2015-06-12 14:33:02 +0200", 3).decode().unwrap();
        assert!(matches!(ev, ProjectEvent::Commit { files_updated: 3, .. }));
        let ev = WireEvent::ddl("2015-06-13", "CREATE TABLE t (a INT);").decode().unwrap();
        assert!(matches!(ev, ProjectEvent::DdlVersion { .. }));
    }

    #[test]
    fn wire_event_decode_rejects_garbage() {
        assert!(WireEvent::commit("not a date", 1).decode().is_err());
        let mut ev = WireEvent::ddl("2015-06-13", "x");
        ev.ddl = None;
        assert!(ev.decode().is_err());
        ev.kind = "merge".into();
        assert!(ev.decode().is_err());
    }

    #[test]
    fn wire_event_encode_round_trips() {
        let events = [
            ProjectEvent::Commit {
                date: DateTime::parse("2015-06-12 14:33:02 +0200").unwrap(),
                files_updated: 7,
            },
            ProjectEvent::DdlVersion {
                date: DateTime::parse("2016-01-01 00:00:00 +0000").unwrap(),
                ddl: "CREATE TABLE t (a INT);".to_string(),
            },
        ];
        for ev in events {
            assert_eq!(WireEvent::encode(&ev).decode().unwrap(), ev);
        }
    }
}
