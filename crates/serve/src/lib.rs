//! # coevo-serve — the incremental study daemon
//!
//! `coevo serve` keeps an [`coevo_engine::IncrementalStudy`] warm behind a
//! TCP socket speaking line-delimited JSON: clients stream project events
//! (`ingest`), and the daemon answers measure queries (`project`), the
//! full rendered study (`summary`), the taxon census (`taxa`), and
//! persistence commands (`snapshot`, `shutdown`) from the warm fold
//! states — one month of new history costs an O(1)-amortized fold append,
//! not a study re-run.
//!
//! With `--store DIR`, per-project [`coevo_engine::ProjectSnapshot`]s are
//! published to a content-addressed [`coevo_store::ResultStore`] under
//! `DIR/serve` — automatically every [`state::SNAPSHOT_EVERY`] events and
//! on `snapshot`/`shutdown` — so a restarted daemon resumes exactly where
//! it stopped, never replaying the parser or differ.
//!
//! ```text
//! → {"cmd":"ingest","project":"a/b","events":[{"kind":"commit","date":"2020-01-05","files":3}]}
//! ← {"ok":true,"applied":1,"pending":["a/b: no DDL versions ingested"]}
//! → {"cmd":"project","project":"a/b"}
//! ← {"ok":true,"measures":{...}}
//! ```

#![warn(missing_docs)]

pub mod protocol;
pub mod server;
pub mod state;

pub use protocol::{Request, Response, TaxonCount, WireEvent};
pub use server::{ServeError, Server};
pub use state::{ServeState, SnapshotStore, SNAPSHOT_EVERY};

use coevo_taxa::TaxonomyConfig;
use std::path::PathBuf;

/// The daemon's default listen address.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7466";

/// How a daemon is brought up.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// The address to bind (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Root of the snapshot store; `None` serves memory-only.
    pub store_dir: Option<PathBuf>,
    /// The taxonomy configuration measures are computed under.
    pub taxonomy: TaxonomyConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: DEFAULT_ADDR.to_string(),
            store_dir: None,
            taxonomy: TaxonomyConfig::default(),
        }
    }
}
